//! `audit.toml` parsing: rule knobs and the violation baseline.
//!
//! The checker reads a deliberately tiny TOML subset — `[section]`
//! headers, `key = "string"`, and `key = [ "…", "…" ]` arrays (single-
//! or multi-line), with `#` comments — parsed by hand so the audit tool
//! itself depends on nothing outside `std`.

use std::collections::BTreeMap;

/// Parsed contents of `audit.toml`.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    /// Function names that must not allocate **inside loops** even
    /// though their prologue may (rule `no-alloc-in-into` treats
    /// `*_into` suffixed functions as fully alloc-free instead).
    pub no_alloc_functions: Vec<String>,
    /// Metric-recording function names held to the strictest tier:
    /// alloc-free *everywhere*, like `_into` functions. This is the
    /// static guarantee that makes calling them legal inside `_into`
    /// bodies and the serving steady state.
    pub record_fns: Vec<String>,
    /// Path prefixes where `record_fns` is enforced — scoping it to the
    /// metrics crate keeps unrelated functions that happen to share a
    /// short name (`add`, `inc`) out of the rule.
    pub record_paths: Vec<String>,
    /// Substring patterns of paths exempt from the library-code rules
    /// (`no-alloc-in-into`, `typed-errors`): tests, benches, examples,
    /// binaries.
    pub exempt_paths: Vec<String>,
    /// Path prefixes whose code must be deterministic (rule
    /// `determinism`).
    pub determinism_paths: Vec<String>,
    /// Path prefixes where channels must be bounded (rule
    /// `bounded-channels`).
    pub bounded_channel_paths: Vec<String>,
    /// Path prefixes excluded from the walk entirely (vendored shims,
    /// the checker's own violation fixtures).
    pub exclude_paths: Vec<String>,
    /// Baseline: rule id → list of `"path: reason"` entries. A
    /// diagnostic matching an entry's path (exact or prefix) is reported
    /// but does not fail the run.
    pub allow: BTreeMap<String, Vec<AllowEntry>>,
}

/// One baseline entry: a path (exact file or prefix) plus the mandatory
/// human-readable justification.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path the exception applies to.
    pub path: String,
    /// Why the exception is acceptable.
    pub reason: String,
}

impl AuditConfig {
    /// Parses the `audit.toml` text.
    ///
    /// # Errors
    /// A human-readable message naming the offending line.
    pub fn parse(text: &str) -> Result<AuditConfig, String> {
        let raw = parse_toml_subset(text)?;
        let mut config = AuditConfig::default();
        let list = |section: &str, key: &str| -> Vec<String> {
            raw.get(section)
                .and_then(|s| s.get(key))
                .cloned()
                .unwrap_or_default()
        };
        config.no_alloc_functions = list("no_alloc", "functions");
        config.record_fns = list("no_alloc", "record_fns");
        config.record_paths = list("no_alloc", "record_paths");
        config.exempt_paths = list("exempt", "paths");
        config.determinism_paths = list("determinism", "paths");
        config.bounded_channel_paths = list("bounded_channels", "paths");
        config.exclude_paths = list("walk", "exclude");
        if let Some(allows) = raw.get("allow") {
            for (rule, entries) in allows {
                let mut parsed = Vec::new();
                for entry in entries {
                    let Some((path, reason)) = entry.split_once(": ") else {
                        return Err(format!(
                            "allow entry for `{rule}` is missing a `: reason` suffix: `{entry}`"
                        ));
                    };
                    if reason.trim().is_empty() {
                        return Err(format!(
                            "allow entry for `{rule}` has an empty reason: `{entry}`"
                        ));
                    }
                    parsed.push(AllowEntry {
                        path: path.trim().to_owned(),
                        reason: reason.trim().to_owned(),
                    });
                }
                config.allow.insert(rule.clone(), parsed);
            }
        }
        Ok(config)
    }

    /// Whether `rel_path` is exempt from the library-code rules.
    pub fn is_exempt(&self, rel_path: &str) -> bool {
        self.exempt_paths
            .iter()
            .any(|p| rel_path.contains(p.as_str()))
    }

    /// Whether `rel_path` is covered by the `record_fns` contract.
    pub fn is_record_path(&self, rel_path: &str) -> bool {
        self.record_paths
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Whether `rel_path` falls under the determinism contract.
    pub fn is_deterministic_path(&self, rel_path: &str) -> bool {
        self.determinism_paths
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Whether `rel_path` falls under the bounded-channel contract.
    pub fn is_bounded_channel_path(&self, rel_path: &str) -> bool {
        self.bounded_channel_paths
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Whether `rel_path` is excluded from the walk.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude_paths
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }
}

/// section → key → list of string values. Scalar strings parse as
/// one-element lists.
type RawToml = BTreeMap<String, BTreeMap<String, Vec<String>>>;

fn parse_toml_subset(text: &str) -> Result<RawToml, String> {
    let mut out: RawToml = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let line = strip_comment(line).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_owned();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", idx + 1));
        };
        let key = key.trim().to_owned();
        let mut value = value.trim().to_owned();
        if value.starts_with('[') {
            // Accumulate a multi-line array until the closing bracket.
            while !value.trim_end().ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", idx + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            let inner = value
                .trim()
                .strip_prefix('[')
                .and_then(|v| v.strip_suffix(']'))
                .map(str::trim)
                .ok_or_else(|| format!("line {}: malformed array", idx + 1))?
                .to_owned();
            let items = split_string_items(&inner).map_err(|e| format!("line {}: {e}", idx + 1))?;
            out.entry(section.clone()).or_default().insert(key, items);
        } else {
            let item = parse_string(&value).map_err(|e| format!("line {}: {e}", idx + 1))?;
            out.entry(section.clone())
                .or_default()
                .insert(key, vec![item]);
        }
    }
    Ok(out)
}

/// Removes a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Splits `"a", "b", "c"` into its items.
fn split_string_items(inner: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        if !rest.starts_with('"') {
            return Err(format!("expected a quoted string at `{rest}`"));
        }
        let end = rest[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated string in `{rest}`"))?;
        items.push(rest[1..1 + end].to_owned());
        rest = rest[2 + end..].trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected `,` between items at `{rest}`"));
        }
    }
    Ok(items)
}

/// Parses a single `"…"` scalar.
fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("expected a quoted string, found `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[no_alloc]
functions = ["fit_with_workspace"]
record_fns = ["record", "inc"]
record_paths = ["crates/obs/src"]

[exempt]
paths = [
    "tests/",      # trailing comment
    "benches/",
]

[determinism]
paths = ["crates/gen/src"]

[allow]
typed_errors = [
    "crates/data/src/hospital.rs: static dataset literal",
]
"#;

    #[test]
    fn parses_sections_arrays_and_allows() {
        let config = AuditConfig::parse(SAMPLE).unwrap();
        assert_eq!(config.no_alloc_functions, vec!["fit_with_workspace"]);
        assert_eq!(config.record_fns, vec!["record", "inc"]);
        assert!(config.is_record_path("crates/obs/src/metric.rs"));
        assert!(!config.is_record_path("crates/ml/src/linreg.rs"));
        assert_eq!(config.exempt_paths, vec!["tests/", "benches/"]);
        assert!(config.is_exempt("crates/ml/tests/foo.rs"));
        assert!(!config.is_exempt("crates/ml/src/foo.rs"));
        assert!(config.is_deterministic_path("crates/gen/src/diff.rs"));
        let allows = config.allow.get("typed_errors").unwrap();
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].path, "crates/data/src/hospital.rs");
        assert_eq!(allows[0].reason, "static dataset literal");
    }

    #[test]
    fn allow_entries_require_reasons() {
        let bad = "[allow]\ntyped_errors = [\"crates/x.rs\"]\n";
        assert!(AuditConfig::parse(bad).is_err());
        let empty = "[allow]\ntyped_errors = [\"crates/x.rs: \"]\n";
        assert!(AuditConfig::parse(empty).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(AuditConfig::parse("[s]\nnot a kv\n").is_err());
        assert!(AuditConfig::parse("[s]\nk = [\"unterminated\n").is_err());
        assert!(AuditConfig::parse("[s]\nk = bare\n").is_err());
    }

    #[test]
    fn empty_config_is_valid() {
        let config = AuditConfig::parse("").unwrap();
        assert!(config.no_alloc_functions.is_empty());
        assert!(config.allow.is_empty());
    }
}
