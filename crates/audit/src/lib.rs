#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `amalur-audit` — in-house static contract checker for the Amalur
//! workspace.
//!
//! The workspace maintains several invariants that the compiler cannot
//! enforce and that code review keeps missing once the tree grows:
//! hot-path functions that must not allocate, library crates that must
//! report failures through their typed error enums, seeded modules that
//! must replay bit-identically, serving wires that must carry
//! backpressure, and a blanket ban on `unsafe`. This crate walks every
//! non-vendor source file and enforces those contracts with a
//! hand-rolled token-level scanner — no `syn`, no crates.io, `std`
//! only — so the checker builds anywhere the workspace builds.
//!
//! # The five rules
//!
//! | id | contract |
//! |----|----------|
//! | `no-alloc-in-into` | functions ending `_into` never allocate; functions listed in `[no_alloc] functions` never allocate *inside loops* |
//! | `typed-errors` | no `.unwrap()` / `.expect(` / `panic!` in library code (tests, benches, examples, bins exempt via `[exempt] paths`) |
//! | `determinism` | no `Instant::now` / `SystemTime` / `HashMap` / `HashSet` under `[determinism] paths` |
//! | `bounded-channels` | no `unbounded()` under `[bounded_channels] paths` |
//! | `unsafe-forbid` | every crate's `src/lib.rs` carries `#![forbid(unsafe_code)]` |
//!
//! # Scanning model
//!
//! [`scan::mask`] rewrites comments, strings, and char literals to
//! spaces (newlines preserved), so every rule is an honest substring
//! search over code the compiler actually sees. `#[cfg(test)]` items
//! are excluded by brace-matched region tracking, and rule 1 extracts
//! per-function body and loop spans to scope its checks.
//!
//! # Baseline workflow
//!
//! Known-acceptable findings live in `audit.toml` under `[allow]`,
//! keyed by rule, each entry a `"path: reason"` string — the reason is
//! mandatory and the entry fails parsing without it. Baselined findings
//! are reported but do not fail the run; allow entries that match
//! nothing are flagged so the baseline can only shrink. Run with
//! `cargo run -p amalur-audit` from anywhere in the workspace.

pub mod config;
pub mod rules;
pub mod scan;
pub mod walk;

pub use config::{AllowEntry, AuditConfig};
pub use rules::{check_unsafe_forbid, scan_file, Diagnostic, RuleId};

use std::path::Path;

/// Outcome of auditing a workspace tree.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Findings not covered by the baseline — these fail the run.
    pub violations: Vec<Diagnostic>,
    /// Findings matched by an `[allow]` entry, with the entry's reason.
    pub baselined: Vec<(Diagnostic, String)>,
    /// `[allow]` entries that matched no finding (stale baseline).
    pub unused_allows: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Whether the audited tree is clean modulo the baseline.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits the workspace rooted at `root` under `config`.
///
/// # Errors
/// A human-readable message on I/O failure (unreadable directory or
/// source file).
pub fn audit_workspace(root: &Path, config: &AuditConfig) -> Result<AuditReport, String> {
    let sources = walk::workspace_sources(root, config)?;
    let mut findings = Vec::new();
    for rel in &sources {
        let path = root.join(rel);
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(rules::scan_file(rel, &src, config));
        if rel.ends_with("src/lib.rs") {
            findings.extend(rules::check_unsafe_forbid(rel, &src));
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut report = AuditReport {
        files_scanned: sources.len(),
        ..AuditReport::default()
    };
    let mut used = std::collections::BTreeSet::new();
    for diag in findings {
        let entry = config.allow.get(diag.rule.allow_key()).and_then(|entries| {
            entries
                .iter()
                .find(|e| diag.path == e.path || diag.path.starts_with(&e.path))
        });
        match entry {
            Some(e) => {
                used.insert((diag.rule.allow_key(), e.path.clone()));
                report.baselined.push((diag, e.reason.clone()));
            }
            None => report.violations.push(diag),
        }
    }
    for (rule, entries) in &config.allow {
        for e in entries {
            if !used.contains(&(rule.as_str(), e.path.clone())) {
                report
                    .unused_allows
                    .push(format!("[allow] {rule}: `{}` matched nothing", e.path));
            }
        }
    }
    Ok(report)
}

/// Reads and parses `audit.toml` at the workspace root.
///
/// # Errors
/// A message when the file is unreadable or malformed.
pub fn load_config(root: &Path) -> Result<AuditConfig, String> {
    let path = root.join("audit.toml");
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    AuditConfig::parse(&text)
}
