//! CLI entry point: audits the workspace and exits non-zero on
//! unbaselined violations. See the crate docs of `amalur_audit`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("amalur-audit: cannot locate the workspace root (no audit.toml found)");
            return ExitCode::FAILURE;
        }
    };
    let config = match amalur_audit::load_config(&root) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("amalur-audit: bad audit.toml: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match amalur_audit::audit_workspace(&root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("amalur-audit: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (diag, reason) in &report.baselined {
        println!("{diag} [baselined: {reason}]");
    }
    for warning in &report.unused_allows {
        eprintln!("warning: {warning}");
    }
    for diag in &report.violations {
        println!("{diag}");
    }
    println!(
        "amalur-audit: {} files, {} violation(s), {} baselined, {} stale allow(s)",
        report.files_scanned,
        report.violations.len(),
        report.baselined.len(),
        report.unused_allows.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` under `cargo run`,
/// otherwise the nearest ancestor of the current directory holding an
/// `audit.toml`.
fn workspace_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(manifest);
        if let Some(root) = candidate.parent().and_then(|p| p.parent()) {
            if root.join("audit.toml").is_file() {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("audit.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
