//! The five contract rules and the per-file rule driver.

use crate::config::AuditConfig;
use crate::scan::{functions, line_col, mask, test_regions, Region};

/// Identifies one of the five audit rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `*_into` / configured hot functions must not allocate.
    NoAllocInInto,
    /// Library code must use typed errors, not `unwrap`/`expect`/`panic!`.
    TypedErrors,
    /// Seeded/replayable modules must not read ambient time or iterate
    /// hash containers.
    Determinism,
    /// Serving and federated paths must use bounded channels.
    BoundedChannels,
    /// Every crate root must carry `#![forbid(unsafe_code)]`.
    UnsafeForbid,
}

impl RuleId {
    /// Stable kebab-case id used in diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::NoAllocInInto => "no-alloc-in-into",
            RuleId::TypedErrors => "typed-errors",
            RuleId::Determinism => "determinism",
            RuleId::BoundedChannels => "bounded-channels",
            RuleId::UnsafeForbid => "unsafe-forbid",
        }
    }

    /// The `audit.toml` `[allow]` key for this rule.
    pub fn allow_key(self) -> &'static str {
        match self {
            RuleId::NoAllocInInto => "no_alloc_in_into",
            RuleId::TypedErrors => "typed_errors",
            RuleId::Determinism => "determinism",
            RuleId::BoundedChannels => "bounded_channels",
            RuleId::UnsafeForbid => "unsafe_forbid",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, pointing at a specific source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// What went wrong and why it matters.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Constructors recognized as allocating by `no-alloc-in-into`.
const ALLOC_PATTERNS: &[&str] = &[
    "DenseMatrix::zeros",
    "from_vec",
    "Vec::new",
    "vec![",
    "with_capacity",
    "to_vec",
    ".clone()",
];

/// Patterns banned by `typed-errors`.
const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// Patterns banned by `determinism` in seeded paths.
const NONDET_PATTERNS: &[&str] = &["Instant::now", "SystemTime", "HashMap", "HashSet"];

/// Every occurrence of `pattern` in `masked` within `[start, end)`,
/// respecting identifier boundaries for patterns that start or end with
/// identifier characters.
fn find_all(masked: &str, pattern: &str, start: usize, end: usize) -> Vec<usize> {
    let b = masked.as_bytes();
    let mut hits = Vec::new();
    let mut from = start;
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    while let Some(rel) = masked.get(from..end).and_then(|s| s.find(pattern)) {
        let pos = from + rel;
        from = pos + 1;
        let pat = pattern.as_bytes();
        // Only enforce a boundary on sides where the pattern itself is
        // identifier-like (`.clone()` needs no `before` check; `vec![`
        // needs no `after` check).
        let before_ok = !pat.first().is_some_and(|&c| ident(c)) || pos == 0 || !ident(b[pos - 1]);
        let after = pos + pat.len();
        let after_ok =
            !pat.last().is_some_and(|&c| ident(c)) || after >= b.len() || !ident(b[after]);
        if before_ok && after_ok {
            hits.push(pos);
        }
    }
    hits
}

/// Whether `offset` is inside any of `regions`.
fn in_regions(regions: &[Region], offset: usize) -> bool {
    regions.iter().any(|r| r.contains(offset))
}

/// Runs every applicable rule over one file; `rel_path` decides which
/// rules apply (see `audit.toml`).
pub fn scan_file(rel_path: &str, src: &str, config: &AuditConfig) -> Vec<Diagnostic> {
    let masked = mask(src);
    let tests = test_regions(&masked);
    let mut diags = Vec::new();

    let library_code = !config.is_exempt(rel_path);
    if library_code {
        check_no_alloc(rel_path, src, &masked, &tests, config, &mut diags);
        check_typed_errors(rel_path, src, &masked, &tests, &mut diags);
    }
    if config.is_deterministic_path(rel_path) {
        check_determinism(rel_path, src, &masked, &tests, &mut diags);
    }
    if config.is_bounded_channel_path(rel_path) {
        check_bounded_channels(rel_path, src, &masked, &tests, &mut diags);
    }
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

/// Rule 1: functions ending in `_into` write into caller-provided
/// buffers and must not allocate anywhere; configured hot-loop functions
/// (`no_alloc.functions`) may allocate in their prologue but not inside
/// loops. Configured metric-record functions (`no_alloc.record_fns`,
/// scoped to `no_alloc.record_paths`) get the strict `_into` treatment:
/// they are what makes instrumentation legal inside `_into` bodies, so
/// they must never allocate themselves.
fn check_no_alloc(
    rel_path: &str,
    src: &str,
    masked: &str,
    tests: &[Region],
    config: &AuditConfig,
    diags: &mut Vec<Diagnostic>,
) {
    for function in functions(masked) {
        if in_regions(tests, function.body.start) {
            continue;
        }
        let into_fn = function.name.ends_with("_into");
        let record_fn =
            config.is_record_path(rel_path) && config.record_fns.contains(&function.name);
        let strict = into_fn || record_fn;
        let hot_fn = config.no_alloc_functions.contains(&function.name);
        if !strict && !hot_fn {
            continue;
        }
        for &pattern in ALLOC_PATTERNS {
            for pos in find_all(masked, pattern, function.body.start, function.body.end) {
                if in_regions(tests, pos) {
                    continue;
                }
                // Hot functions are only alloc-free inside their loops.
                if !strict && !in_regions(&function.loops, pos) {
                    continue;
                }
                let (line, col) = line_col(src, pos);
                let place = if into_fn {
                    "zero-allocation `_into` function"
                } else if record_fn {
                    "lock-free metric record function"
                } else {
                    "loop of a configured no-alloc function"
                };
                diags.push(Diagnostic {
                    path: rel_path.to_owned(),
                    line,
                    col,
                    rule: RuleId::NoAllocInInto,
                    message: format!("`{pattern}` allocates inside {place} `{}`", function.name),
                });
            }
        }
    }
}

/// Rule 2: library code reports failures through the crate's typed
/// error enum, never by panicking.
fn check_typed_errors(
    rel_path: &str,
    src: &str,
    masked: &str,
    tests: &[Region],
    diags: &mut Vec<Diagnostic>,
) {
    for &pattern in PANIC_PATTERNS {
        for pos in find_all(masked, pattern, 0, masked.len()) {
            if in_regions(tests, pos) {
                continue;
            }
            let (line, col) = line_col(src, pos);
            diags.push(Diagnostic {
                path: rel_path.to_owned(),
                line,
                col,
                rule: RuleId::TypedErrors,
                message: format!(
                    "`{pattern}` in library code — convert to the crate's typed error"
                ),
            });
        }
    }
}

/// Rule 3: seeded modules must be bit-replayable — no ambient clocks,
/// no hash-order iteration.
fn check_determinism(
    rel_path: &str,
    src: &str,
    masked: &str,
    tests: &[Region],
    diags: &mut Vec<Diagnostic>,
) {
    for &pattern in NONDET_PATTERNS {
        for pos in find_all(masked, pattern, 0, masked.len()) {
            if in_regions(tests, pos) {
                continue;
            }
            let (line, col) = line_col(src, pos);
            let hint = if pattern == "HashMap" || pattern == "HashSet" {
                "use BTreeMap/BTreeSet for deterministic iteration"
            } else {
                "thread a seeded clock/value through instead"
            };
            diags.push(Diagnostic {
                path: rel_path.to_owned(),
                line,
                col,
                rule: RuleId::Determinism,
                message: format!("`{pattern}` in a seeded module — {hint}"),
            });
        }
    }
}

/// Rule 4: serving and federated wires carry backpressure — an
/// unbounded channel hides overload until memory runs out.
fn check_bounded_channels(
    rel_path: &str,
    src: &str,
    masked: &str,
    tests: &[Region],
    diags: &mut Vec<Diagnostic>,
) {
    for pos in find_all(masked, "unbounded", 0, masked.len()) {
        if in_regions(tests, pos) {
            continue;
        }
        let (line, col) = line_col(src, pos);
        diags.push(Diagnostic {
            path: rel_path.to_owned(),
            line,
            col,
            rule: RuleId::BoundedChannels,
            message: "unbounded channel on a backpressure path — use `bounded(capacity)`"
                .to_owned(),
        });
    }
}

/// Rule 5: a crate root must forbid `unsafe` outright. Returns a
/// diagnostic when `lib_src` (at `rel_path`) lacks the attribute.
pub fn check_unsafe_forbid(rel_path: &str, lib_src: &str) -> Option<Diagnostic> {
    let masked = mask(lib_src);
    if masked.contains("#![forbid(unsafe_code") {
        return None;
    }
    Some(Diagnostic {
        path: rel_path.to_owned(),
        line: 1,
        col: 1,
        rule: RuleId::UnsafeForbid,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AuditConfig {
        AuditConfig::parse(
            r#"
[no_alloc]
functions = ["fit_with_workspace"]
record_fns = ["record", "inc"]
record_paths = ["crates/obs/src"]
[exempt]
paths = ["tests/", "benches/"]
[determinism]
paths = ["crates/gen/src"]
[bounded_channels]
paths = ["crates/serve/src"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn into_functions_flag_allocs_anywhere() {
        let src = "fn gemm_into(out: &mut M) {\n    let t = x.to_vec();\n    for i in 0..3 { out.set(i, 0.0); }\n}\n";
        let diags = scan_file("crates/matrix/src/gemm.rs", src, &config());
        let allocs: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::NoAllocInInto)
            .collect();
        assert_eq!(allocs.len(), 1);
        assert_eq!((allocs[0].line, allocs[0].col), (2, 15));
    }

    #[test]
    fn hot_functions_flag_allocs_only_in_loops() {
        let src = "fn fit_with_workspace(&mut self) {\n    let theta = DenseMatrix::zeros(3, 1);\n    for _ in 0..5 {\n        let g = vec![0.0; 3];\n    }\n}\n";
        let diags = scan_file("crates/ml/src/linreg.rs", src, &config());
        let allocs: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::NoAllocInInto)
            .collect();
        assert_eq!(allocs.len(), 1, "prologue alloc allowed, loop alloc not");
        assert_eq!(allocs[0].line, 4);
    }

    #[test]
    fn record_fns_are_strict_inside_record_paths_only() {
        let src = "fn record(&self, v: u64) {\n    let spill = v.to_le_bytes().to_vec();\n}\n";
        let in_obs = scan_file("crates/obs/src/metric.rs", src, &config());
        assert_eq!(in_obs.len(), 1);
        assert_eq!(in_obs[0].rule, RuleId::NoAllocInInto);
        assert!(in_obs[0].message.contains("metric record function"));
        // A `record` elsewhere is someone else's function; out of scope.
        assert!(scan_file("crates/ml/src/x.rs", src, &config()).is_empty());
        // An alloc-free record function is the contract being checked.
        let clean = "fn inc(&self) {\n    self.n.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(scan_file("crates/obs/src/metric.rs", clean, &config()).is_empty());
    }

    #[test]
    fn record_calls_are_legal_inside_into_functions() {
        // The point of the record-fn tier: instrumentation calls are not
        // allocation patterns, so `_into` bodies may carry them.
        let src = "fn gemm_into(out: &mut M) {\n    DISPATCHES.inc();\n    LAT.record(7);\n    out.set(0, 0.0);\n}\n";
        assert!(scan_file("crates/matrix/src/gemm.rs", src, &config()).is_empty());
    }

    #[test]
    fn typed_errors_exempts_tests_and_test_regions() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let diags = scan_file("crates/ml/src/lib.rs", src, &config());
        let panics: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::TypedErrors)
            .collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 1);
        assert!(scan_file("crates/ml/tests/it.rs", src, &config()).is_empty());
    }

    #[test]
    fn determinism_only_in_configured_paths() {
        let src = "use std::collections::HashMap;\nfn now() -> Instant { Instant::now() }\n";
        let hits = scan_file("crates/gen/src/x.rs", src, &config());
        assert_eq!(
            hits.iter()
                .filter(|d| d.rule == RuleId::Determinism)
                .count(),
            2
        );
        let elsewhere = scan_file("crates/ml/src/x.rs", src, &config());
        assert!(elsewhere.iter().all(|d| d.rule != RuleId::Determinism));
    }

    #[test]
    fn bounded_channels_flags_unbounded() {
        let src = "fn mk() { let (tx, rx) = unbounded(); }\n";
        let hits = scan_file("crates/serve/src/server.rs", src, &config());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::BoundedChannels);
        assert!(scan_file("crates/ml/src/x.rs", src, &config()).is_empty());
    }

    #[test]
    fn unsafe_forbid_checks_crate_roots() {
        assert!(check_unsafe_forbid("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        let diag = check_unsafe_forbid("crates/x/src/lib.rs", "pub mod a;\n").unwrap();
        assert_eq!(diag.rule, RuleId::UnsafeForbid);
        // The attribute inside a comment does not count.
        assert!(check_unsafe_forbid("x", "// #![forbid(unsafe_code)]\n").is_some());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src =
            "fn f() {\n    // x.unwrap() and HashMap here\n    let s = \"panic! vec![\";\n}\n";
        assert!(scan_file("crates/gen/src/x.rs", src, &config()).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { x.unwrap_or_else(Y::zero); x.unwrap_or(0); x.unwrap_or_default(); }\n";
        assert!(scan_file("crates/ml/src/x.rs", src, &config()).is_empty());
    }
}
