//! Token-level source scanning: masking, region tracking, and intra-file
//! function extraction.
//!
//! The scanner never parses Rust properly — it only needs enough lexical
//! structure to answer three questions honestly:
//!
//! 1. **Is this byte inside a comment, string, or char literal?**
//!    [`mask`] rewrites every such byte to a space (newlines survive so
//!    line numbers stay true), which makes all downstream checks simple
//!    substring searches that cannot be fooled by `"vec![..]"` inside a
//!    doc comment or a format string.
//! 2. **Is this byte inside `#[cfg(test)]` code?** [`test_regions`]
//!    brace-matches the item following each `#[cfg(test)]` attribute.
//! 3. **Which function body am I in, and am I inside one of its
//!    loops?** [`functions`] extracts `fn name … { body }` spans and the
//!    `for`/`while`/`loop` block spans nested in them.
//!
//! Everything operates on byte offsets into the *original* source, so a
//! finding converts to `line:col` with [`line_col`].

/// A half-open byte range `[start, end)` into the scanned source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub start: usize,
    /// One past the last byte of the region.
    pub end: usize,
}

impl Region {
    /// Whether `offset` falls inside the region.
    pub fn contains(&self, offset: usize) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// One extracted function: its name, body span, and loop-block spans.
#[derive(Debug, Clone)]
pub struct Function {
    /// The identifier after `fn`.
    pub name: String,
    /// Byte span of the body, including the outer braces.
    pub body: Region,
    /// Byte spans of every `for`/`while`/`loop` block inside the body
    /// (nested loops produce overlapping spans — harmless for "is this
    /// offset inside a loop" queries).
    pub loops: Vec<Region>,
}

/// Replaces every byte of comments (line, nested block), string literals
/// (plain, raw, byte), and char literals with a space, preserving
/// newlines and total length. Lifetimes (`'a`) are left intact.
pub fn mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = mask_string(b, &mut out, i),
            b'r' | b'b' if !ident_char_before(b, i) => {
                // Possible raw/byte literal prefix: r"…", r#"…"#, b"…",
                // br#"…"#, b'…'.
                let mut j = i + 1;
                if b[i] == b'b' && b.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                let raw = j > i + 1 || b[i] == b'r';
                if b.get(j) == Some(&b'"') && (raw || b[i] == b'b') {
                    for slot in out.iter_mut().take(j + 1).skip(i) {
                        *slot = b' ';
                    }
                    i = if raw || hashes > 0 {
                        mask_raw_string(b, &mut out, j, hashes)
                    } else {
                        mask_string(b, &mut out, j)
                    };
                } else if b[i] == b'b' && b.get(i + 1) == Some(&b'\'') {
                    out[i] = b' ';
                    i = mask_char(b, &mut out, i + 1);
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                if is_char_literal(b, i) {
                    i = mask_char(b, &mut out, i);
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }
    // Masked regions are replaced byte-for-byte with ASCII spaces and
    // unmasked bytes are untouched, so the result stays valid UTF-8; an
    // (unreachable) violation falls back to a lossy conversion.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Whether the byte before `i` can be part of an identifier (which would
/// make `r`/`b` at `i` an identifier tail, not a literal prefix).
fn ident_char_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Masks a `"…"` literal starting at the opening quote; returns the
/// offset just past the closing quote.
fn mask_string(b: &[u8], out: &mut [u8], start: usize) -> usize {
    out[start] = b' ';
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                out[i] = b' ';
                if i + 1 < b.len() {
                    if b[i + 1] != b'\n' {
                        out[i + 1] = b' ';
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Masks a raw string starting at its opening quote (`hashes` `#`s close
/// it); returns the offset just past the closing delimiter.
fn mask_raw_string(b: &[u8], out: &mut [u8], quote: usize, hashes: usize) -> usize {
    out[quote] = b' ';
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            for slot in out.iter_mut().take((i + 1 + hashes).min(b.len())).skip(i) {
                *slot = b' ';
            }
            return i + 1 + hashes;
        }
        if b[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

/// Whether the `'` at `i` opens a char literal (vs a lifetime): escaped
/// contents, or exactly one char followed by a closing `'`.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) => {
            let width = utf8_width(c);
            b.get(i + 1 + width) == Some(&b'\'')
        }
        None => false,
    }
}

/// Masks a `'…'` char literal starting at the opening quote; returns the
/// offset just past the closing quote.
fn mask_char(b: &[u8], out: &mut [u8], start: usize) -> usize {
    out[start] = b' ';
    let mut i = start + 1;
    if b.get(i) == Some(&b'\\') {
        out[i] = b' ';
        i += 1;
        if i < b.len() && b[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
        // Multi-byte escapes: \u{…}, \x7f.
        while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
            out[i] = b' ';
            i += 1;
        }
    } else if i < b.len() {
        let width = utf8_width(b[i]);
        for slot in out.iter_mut().take((i + width).min(b.len())).skip(i) {
            *slot = b' ';
        }
        i += width;
    }
    if b.get(i) == Some(&b'\'') {
        out[i] = b' ';
        i += 1;
    }
    i
}

/// Byte length of the UTF-8 sequence starting with `first`.
fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Converts a byte offset into 1-based `(line, column)`.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..offset.min(src.len())];
    let line = upto.iter().filter(|&&c| c == b'\n').count() + 1;
    let col = upto.iter().rev().take_while(|&&c| c != b'\n').count() + 1;
    (line, col)
}

/// Spans of `#[cfg(test)]`-gated items in masked source: the attribute
/// plus the brace-matched item that follows (or up to the first `;` for
/// brace-less items).
pub fn test_regions(masked: &str) -> Vec<Region> {
    let b = masked.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(masked, "#[cfg(test)]", from) {
        let mut i = pos + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if b.get(i) == Some(&b'#') && b.get(i + 1) == Some(&b'[') {
                i = match_delim(b, i + 1, b'[', b']');
            } else {
                break;
            }
        }
        // The item ends at its matched `{…}` block, or at `;` for
        // brace-less items (`mod tests;`, gated `use`s).
        let mut end = b.len();
        let mut j = i;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    end = match_delim(b, j, b'{', b'}');
                    break;
                }
                b';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        regions.push(Region { start: pos, end });
        from = end.max(pos + 1);
    }
    regions
}

/// Advances past a balanced `open…close` delimiter pair starting at
/// `start` (which must hold `open`); returns the offset just past the
/// matching closer, or the end of input when unbalanced.
fn match_delim(b: &[u8], start: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < b.len() {
        if b[i] == open {
            depth += 1;
        } else if b[i] == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// `str::find` from a starting offset, returning an absolute offset.
fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

/// Whether the identifier-boundary condition holds around
/// `[start, end)`: the adjacent bytes are not identifier chars.
pub fn ident_boundary(b: &[u8], start: usize, end: usize) -> bool {
    let before_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
    let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
    before_ok && after_ok
}

/// Extracts every `fn` definition with a body from masked source,
/// including its loop-block spans.
pub fn functions(masked: &str) -> Vec<Function> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(masked, "fn", from) {
        from = pos + 2;
        if !ident_boundary(b, pos, pos + 2) {
            continue;
        }
        let mut i = pos + 2;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` keyword without a name (e.g. `Fn` trait syntax)
        }
        let name = masked[name_start..i].to_owned();
        // Find the parameter list and skip past it (generics may hold
        // no parens, so the first `(` at this point is the param list).
        while i < b.len() && b[i] != b'(' && b[i] != b'{' && b[i] != b';' {
            i += 1;
        }
        if b.get(i) != Some(&b'(') {
            continue;
        }
        i = match_delim(b, i, b'(', b')');
        // Between params and body: return type / where clause. A `;`
        // first means a body-less declaration (trait method signature).
        let mut body_start = None;
        while i < b.len() {
            match b[i] {
                b'{' => {
                    body_start = Some(i);
                    break;
                }
                b';' => break,
                b'(' => i = match_delim(b, i, b'(', b')'),
                b'[' => i = match_delim(b, i, b'[', b']'),
                _ => i += 1,
            }
        }
        let Some(body_start) = body_start else {
            continue;
        };
        let body_end = match_delim(b, body_start, b'{', b'}');
        out.push(Function {
            name,
            body: Region {
                start: body_start,
                end: body_end,
            },
            loops: loop_regions(masked, body_start, body_end),
        });
        from = body_start + 1; // nested fns are still discovered
    }
    out
}

/// Spans of `for`/`while`/`loop` blocks inside `[start, end)`.
fn loop_regions(masked: &str, start: usize, end: usize) -> Vec<Region> {
    let b = masked.as_bytes();
    let mut regions = Vec::new();
    for kw in ["for", "while", "loop"] {
        let mut from = start;
        while let Some(pos) = find_from(masked, kw, from) {
            if pos >= end {
                break;
            }
            from = pos + kw.len();
            if !ident_boundary(b, pos, pos + kw.len()) {
                continue;
            }
            // The loop body is the first `{` at bracket/paren depth 0
            // after the keyword (closure braces inside the iterator
            // expression sit at paren depth > 0 and are skipped).
            let mut i = pos + kw.len();
            let mut body = None;
            while i < end.min(b.len()) {
                match b[i] {
                    b'(' => i = match_delim(b, i, b'(', b')'),
                    b'[' => i = match_delim(b, i, b'[', b']'),
                    b'{' => {
                        body = Some(i);
                        break;
                    }
                    b';' => break,
                    _ => i += 1,
                }
            }
            if let Some(body_start) = body {
                let body_end = match_delim(b, body_start, b'{', b'}').min(end);
                regions.push(Region {
                    start: body_start,
                    end: body_end,
                });
            }
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_strings_and_chars() {
        let src = r#"let x = "vec![inside]"; // vec![comment]
let c = 'v'; let s = 'static_lt; /* vec![block /* nested */ ] */ let v = vec![1];"#;
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches("vec![").count(), 1, "only the real vec! survives");
        assert!(m.contains("'static_lt"), "lifetimes survive masking");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src =
            r###"let a = r#"unwrap() "quoted" inside"#; let b = br"expect("; a.real_call()"###;
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("expect"));
        assert!(m.contains("real_call"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"b.unwrap()"; keep()"#;
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("keep()"));
    }

    #[test]
    fn finds_test_regions() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap() }\n}\nfn after() {}";
        let m = mask(src);
        let regions = test_regions(&m);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap_or(0);
        assert!(regions[0].contains(unwrap_at));
        let after_at = src.find("after").unwrap_or(0);
        assert!(!regions[0].contains(after_at));
    }

    #[test]
    fn extracts_functions_and_loops() {
        let src = "fn outer(a: usize) -> Vec<u8> {\n  let v = setup();\n  for i in 0..a {\n    inner(i);\n  }\n  v\n}\nfn no_body();\n";
        let fns = functions(&mask(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "outer");
        assert_eq!(fns[0].loops.len(), 1);
        let inner_at = src.find("inner").unwrap_or(0);
        let setup_at = src.find("setup").unwrap_or(0);
        assert!(fns[0].loops[0].contains(inner_at));
        assert!(!fns[0].loops[0].contains(setup_at));
        assert!(fns[0].body.contains(setup_at));
    }

    #[test]
    fn closure_braces_in_loop_header_are_skipped() {
        let src =
            "fn f(xs: &[u8]) {\n  for x in xs.iter().map(|v| { v + 1 }) {\n    body(x);\n  }\n}";
        let fns = functions(&mask(src));
        let body_at = src.find("body").unwrap_or(0);
        assert_eq!(fns[0].loops.len(), 1);
        assert!(fns[0].loops[0].contains(body_at));
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 7), (3, 1));
    }
}
