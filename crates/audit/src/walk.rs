//! Deterministic workspace file discovery.

use crate::config::AuditConfig;
use std::path::Path;

/// All `.rs` files under the workspace root that the audit covers,
/// repo-relative with `/` separators, sorted. Skips `target/`, hidden
/// directories, and every configured exclude prefix (vendored shims,
/// the checker's own violation fixtures).
///
/// # Errors
/// A human-readable message when a directory cannot be read.
pub fn workspace_sources(root: &Path, config: &AuditConfig) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel = relative(root, &path);
            if config.is_excluded(&rel) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Crate roots (each crate's `src/lib.rs`, plus the workspace package's
/// own `src/lib.rs`) among the discovered sources.
pub fn crate_roots(sources: &[String]) -> Vec<String> {
    sources
        .iter()
        .filter(|p| p.ends_with("src/lib.rs"))
        .cloned()
        .collect()
}

/// `path` relative to `root`, with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
