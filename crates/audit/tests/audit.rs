//! Fixture-driven rule tests plus a self-run over the live workspace.
//!
//! The files under `tests/fixtures/` are deliberately full of
//! violations; they are never compiled (Cargo only builds direct
//! children of `tests/`) and the live walk excludes them via
//! `[walk] exclude` in `audit.toml`. Each test feeds a fixture through
//! [`amalur_audit::scan_file`] under a synthetic repo-relative path
//! that puts it in scope for the rule under test, then asserts the
//! exact `(line, rule)` set.

use amalur_audit::{audit_workspace, check_unsafe_forbid, load_config, AuditConfig, Diagnostic};
use std::path::Path;

const FIXTURE_CONFIG: &str = r#"
[no_alloc]
functions = ["fit_with_workspace"]
record_fns = ["record", "inc"]
record_paths = ["crates/obs/src"]

[exempt]
paths = ["tests/", "benches/", "examples/", "src/bin/"]

[determinism]
paths = ["crates/gen/src"]

[bounded_channels]
paths = ["crates/serve/src"]
"#;

fn config() -> AuditConfig {
    AuditConfig::parse(FIXTURE_CONFIG).expect("fixture config parses")
}

/// `(line, rule-id)` pairs in diagnostic order.
fn lines_and_rules(diags: &[Diagnostic]) -> Vec<(usize, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule.id())).collect()
}

#[test]
fn no_alloc_rule_flags_exact_lines() {
    let src = include_str!("fixtures/no_alloc.rs");
    let diags = amalur_audit::scan_file("crates/matrix/src/fixture.rs", src, &config());
    // Line 4 `Vec::new()` and line 5 `DenseMatrix::zeros` sit in
    // `gemm_into` (alloc-free everywhere); line 12 `vec![` is inside the
    // loop of configured `fit_with_workspace`. The prologue alloc on
    // line 10, the allocation in `unrelated`, and the `#[cfg(test)]`
    // `helper_into` must all stay silent.
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (4, "no-alloc-in-into"),
            (5, "no-alloc-in-into"),
            (12, "no-alloc-in-into"),
        ]
    );
    for d in &diags {
        assert_eq!(d.path, "crates/matrix/src/fixture.rs");
    }
}

#[test]
fn record_fns_fixture_flags_exact_lines() {
    let src = include_str!("fixtures/record_fns.rs");
    // Inside the record paths, `record`'s `.to_vec()` on line 5 breaks
    // the alloc-free contract; the clean `inc` and the `_into` function
    // that *calls* record fns stay silent.
    let diags = amalur_audit::scan_file("crates/obs/src/fixture.rs", src, &config());
    assert_eq!(lines_and_rules(&diags), vec![(5, "no-alloc-in-into")]);
    // Outside the record paths, `record`/`inc` are ordinary functions.
    let elsewhere = amalur_audit::scan_file("crates/ml/src/fixture.rs", src, &config());
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn typed_errors_rule_flags_exact_lines() {
    let src = include_str!("fixtures/typed_errors.rs");
    let diags = amalur_audit::scan_file("crates/core/src/fixture.rs", src, &config());
    // `.unwrap()` on 4, `.expect(` on 5, `panic!` on 7. The string
    // decoy on line 14, `.unwrap_or(` on line 15, and the test module
    // must not fire.
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (4, "typed-errors"),
            (5, "typed-errors"),
            (7, "typed-errors")
        ]
    );
}

#[test]
fn typed_errors_rule_skips_exempt_paths() {
    let src = include_str!("fixtures/typed_errors.rs");
    let diags = amalur_audit::scan_file("crates/core/tests/fixture.rs", src, &config());
    assert!(
        diags.is_empty(),
        "exempt test path must not be scanned: {diags:?}"
    );
}

#[test]
fn determinism_rule_flags_exact_lines() {
    let src = include_str!("fixtures/determinism.rs");
    let diags = amalur_audit::scan_file("crates/gen/src/fixture.rs", src, &config());
    // Imports count too: `HashMap` on 3 and `SystemTime` on 4 (bare
    // `Instant` does not match `Instant::now`). Line 9 declares and
    // constructs a `HashMap`, so it fires twice. The `#[cfg(test)]`
    // clock use stays silent.
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (3, "determinism"),
            (4, "determinism"),
            (7, "determinism"),
            (8, "determinism"),
            (9, "determinism"),
            (9, "determinism"),
            (11, "determinism"),
        ]
    );
}

#[test]
fn determinism_rule_ignores_unlisted_paths() {
    let src = include_str!("fixtures/determinism.rs");
    let diags = amalur_audit::scan_file("crates/ml/src/fixture.rs", src, &config());
    assert!(
        diags.iter().all(|d| d.rule.id() != "determinism"),
        "determinism only applies under configured paths: {diags:?}"
    );
}

#[test]
fn bounded_channels_rule_flags_exact_lines() {
    let src = include_str!("fixtures/bounded.rs");
    let diags = amalur_audit::scan_file("crates/serve/src/fixture.rs", src, &config());
    // The import on line 3 and the call on line 7 both fire; the
    // `bounded::<u8>` call on line 6 and the comment mention on line 8
    // must not.
    assert_eq!(
        lines_and_rules(&diags),
        vec![(3, "bounded-channels"), (7, "bounded-channels")]
    );
}

#[test]
fn unsafe_forbid_rule_checks_crate_roots() {
    let good = "#![forbid(unsafe_code)]\n//! Docs.\npub fn f() {}\n";
    assert!(check_unsafe_forbid("crates/x/src/lib.rs", good).is_none());

    let missing = "//! Docs.\npub fn f() {}\n";
    let diag = check_unsafe_forbid("crates/x/src/lib.rs", missing).expect("missing attr flagged");
    assert_eq!((diag.path.as_str(), diag.line), ("crates/x/src/lib.rs", 1));
    assert_eq!(diag.rule.id(), "unsafe-forbid");

    // The attribute inside a comment or string does not count.
    let decoy = "// #![forbid(unsafe_code)]\nconst A: &str = \"#![forbid(unsafe_code)]\";\n";
    assert!(check_unsafe_forbid("crates/x/src/lib.rs", decoy).is_some());
}

#[test]
fn diagnostics_render_as_file_line_col() {
    let src = include_str!("fixtures/typed_errors.rs");
    let diags = amalur_audit::scan_file("crates/core/src/fixture.rs", src, &config());
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/fixture.rs:4:"),
        "diagnostic must lead with file:line:col, got `{rendered}`"
    );
    assert!(rendered.contains("typed-errors"));
}

/// The shipped tree must be clean modulo the checked-in baseline, and
/// the baseline must carry no stale entries — this is the same check CI
/// runs via `cargo run -p amalur-audit`.
#[test]
fn live_workspace_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root above crates/audit");
    let config = load_config(root).expect("audit.toml loads");
    let report = audit_workspace(root, &config).expect("workspace walk succeeds");

    assert!(
        report.is_clean(),
        "unbaselined violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allow entries: {:?}",
        report.unused_allows
    );
    assert!(
        report.files_scanned > 100,
        "walk looks truncated: only {} files scanned",
        report.files_scanned
    );
    // Every baseline entry must still justify itself with a reason.
    for (_, reason) in &report.baselined {
        assert!(!reason.trim().is_empty());
    }
}
