//! Fixture: rule `bounded-channels`. Never compiled — read by tests.

use crossbeam::channel::{bounded, unbounded};

pub fn wires(n: usize) {
    let (_tx_ok, _rx_ok) = bounded::<u8>(n.max(1));
    let (_tx_bad, _rx_bad) = unbounded::<u8>();
    // An unbounded() mention in a comment does not count.
}
