//! Fixture: rule `determinism`. Never compiled — read by tests.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn seeded_but_leaky() -> u64 {
    let started = Instant::now();
    let _stamp = SystemTime::now();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(0, 1);
    let seen: std::collections::HashSet<u64> = counts.keys().copied().collect();
    started.elapsed().as_nanos() as u64 + seen.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_clocks() {
        let _ = std::time::Instant::now();
        let _ = std::collections::HashSet::<u8>::new();
    }
}
