//! Fixture: rule `no-alloc-in-into`. Never compiled — read by tests.

pub fn gemm_into(out: &mut [f64]) {
    let scratch = Vec::new();
    let copy = DenseMatrix::zeros(2, 2);
    out[0] = scratch.len() as f64 + copy.get(0, 0);
}

pub fn fit_with_workspace(n: usize) {
    let theta = DenseMatrix::zeros(n, 1);
    for _ in 0..n {
        let g = vec![0.0; n];
        drop(g);
    }
    drop(theta);
}

pub fn unrelated(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

#[cfg(test)]
mod tests {
    fn helper_into() {
        let v = Vec::new();
        drop(v);
    }
}
