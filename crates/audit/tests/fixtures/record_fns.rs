//! Fixture: the `record_fns` tier of rule `no-alloc-in-into`. Never
//! compiled — read by tests.

pub fn record(&self, v: u64) {
    let spill = v.to_le_bytes().to_vec();
    drop(spill);
}

pub fn inc(&self) {
    self.shards[0].fetch_add(1, Ordering::Relaxed);
}

pub fn lmm_into(out: &mut [f64]) {
    LATENCY.record(out.len() as u64);
    DISPATCHES.inc();
    out[0] = 1.0;
}
