//! Fixture: rule `typed-errors`. Never compiled — read by tests.

pub fn bad(x: Option<u8>, y: Result<u8, ()>) -> u8 {
    let a = x.unwrap();
    let b = y.expect("should have worked");
    if a + b > 200 {
        panic!("overflow");
    }
    a + b
}

pub fn fine(x: Option<u8>) -> u8 {
    // x.unwrap() in a comment, "panic!" in a string: neither counts.
    let s = "panic! .unwrap() .expect(";
    x.unwrap_or(s.len() as u8)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        super::fine(None);
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
