//! Criterion micro-benchmark: the privacy substrate — Paillier across
//! key sizes, secret sharing, DP noise — and §V-B's open question made
//! measurable: *"The DI metadata is generally smaller, compared to data
//! instances. However, it is unclear how much overhead the encryption of
//! DI metadata will bring."* The `encrypt_metadata_vs_data` group
//! answers it: encrypting a compressed indicator vector (one i64 per
//! target row) versus encrypting the data matrix it describes.

use amalur_crypto::dp::LaplaceMechanism;
use amalur_crypto::sharing::{additive, shamir, FixedPoint};
use amalur_crypto::{BigUint, KeyPair};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);
    for &bits in &[128usize, 256, 512] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(bits, &mut rng).expect("key generation");
        let m = BigUint::from_u64(123_456);
        let c1 = kp.public.encrypt_int(&m, &mut rng).expect("in range");
        let c2 = kp.public.encrypt_int(&m, &mut rng).expect("in range");

        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| black_box(kp.public.encrypt_int(&m, &mut rng).expect("in range")))
        });
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.private.decrypt_int(&c1).expect("own key")))
        });
        group.bench_with_input(BenchmarkId::new("homomorphic_add", bits), &bits, |b, _| {
            b.iter(|| black_box(kp.public.add(&c1, &c2).expect("same key")))
        });
    }
    group.finish();
}

fn bench_sharing_and_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharing");
    group.sample_size(20);
    let fp = FixedPoint::default();
    let secret = fp.encode(std::f64::consts::PI).expect("in range");
    group.bench_function("additive/share4", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| black_box(additive::share(secret, 4, &mut rng).expect("n > 0")))
    });
    group.bench_function("additive/reconstruct4", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let shares = additive::share(secret, 4, &mut rng).expect("n > 0");
        b.iter(|| black_box(additive::reconstruct(&shares)))
    });
    group.bench_function("shamir/share_3of5", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        b.iter(|| black_box(shamir::share(secret, 3, 5, &mut rng).expect("valid params")))
    });
    group.bench_function("shamir/reconstruct_3of5", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let shares = shamir::share(secret, 3, 5, &mut rng).expect("valid params");
        b.iter(|| black_box(shamir::reconstruct(&shares[..3], 3).expect("enough shares")))
    });
    group.bench_function("laplace/privatize_1k", |b| {
        let mechanism = LaplaceMechanism::new(1.0, 1.0).expect("valid params");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut v = vec![0.5f64; 1000];
            mechanism.privatize(&mut v, &mut rng);
            black_box(v)
        })
    });
    group.finish();
}

/// §V-B: encrypting the metadata vs encrypting the data it describes.
fn bench_metadata_vs_data_encryption(c: &mut Criterion) {
    let mut group = c.benchmark_group("encrypt_metadata_vs_data");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let kp = KeyPair::generate(128, &mut rng).expect("key generation");

    let rows = 64usize;
    let cols = 16usize;
    // Metadata: one compressed indicator entry per target row.
    let metadata: Vec<u64> = (0..rows as u64).collect();
    // Data: the rows × cols matrix the indicator aligns.
    let data: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 0.5).collect();

    group.bench_function("metadata(CI_vector)", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        b.iter(|| {
            let out: Vec<_> = metadata
                .iter()
                .map(|&v| {
                    kp.public
                        .encrypt_int(&BigUint::from_u64(v), &mut rng)
                        .expect("in range")
                })
                .collect();
            black_box(out)
        })
    });
    group.bench_function("data(D_matrix)", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        b.iter(|| {
            let out: Vec<_> = data
                .iter()
                .map(|&v| kp.public.encrypt_f64(v, &mut rng).expect("in range"))
                .collect();
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paillier,
    bench_sharing_and_dp,
    bench_metadata_vs_data_encryption
);
criterion_main!(benches);
