//! Criterion micro-benchmark: the LMM rewrite (`T·X`) across execution
//! strategies and tuple ratios — the §IV-A operator the paper's
//! Equation (2) targets.
//!
//! Series reported per tuple ratio (fan-out of the dimension table):
//! * `materialized` — `T` already exists; one dense GEMM (the lower
//!   bound materialization can ever reach, ignoring its assembly cost);
//! * `factorized/compressed` — Amalur's gather/scatter plan;
//! * `factorized/sparse` — the literal Eq. 2 with expanded matrices;
//! * `materialize+mul` — what the materialization strategy actually
//!   pays on first use (assembly + GEMM).

use amalur_bench::footnote3_table;
use amalur_factorize::Strategy;
use amalur_matrix::DenseMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lmm");
    group.sample_size(10);
    for &rows in &[20_000usize] {
        for &target_redundancy in &[true, false] {
            let label = if target_redundancy {
                "fanout5"
            } else {
                "inner1to1"
            };
            let ft = footnote3_table(rows, target_redundancy, false, 7);
            let (_, cols) = ft.target_shape();
            let x = DenseMatrix::filled(cols, 1, 0.5);
            let t = ft.materialize();

            group.bench_with_input(BenchmarkId::new("materialized", label), &rows, |b, _| {
                b.iter(|| black_box(t.matmul(&x).expect("shapes")))
            });
            group.bench_with_input(
                BenchmarkId::new("factorized-compressed", label),
                &rows,
                |b, _| b.iter(|| black_box(ft.lmm(&x, Strategy::Compressed).expect("shapes"))),
            );
            group.bench_with_input(
                BenchmarkId::new("factorized-sparse", label),
                &rows,
                |b, _| b.iter(|| black_box(ft.lmm(&x, Strategy::Sparse).expect("shapes"))),
            );
            group.bench_with_input(BenchmarkId::new("materialize+mul", label), &rows, |b, _| {
                b.iter(|| {
                    let t = ft.materialize();
                    black_box(t.matmul(&x).expect("shapes"))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lmm);
criterion_main!(benches);
