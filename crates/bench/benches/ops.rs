//! Criterion micro-benchmark: the remaining factorized operators
//! (transpose-LMM, Gram, column sums, materialization) and the
//! compressed-vs-expanded metadata ablation of DESIGN.md §7.2.

use amalur_bench::footnote3_table;
use amalur_factorize::Strategy;
use amalur_matrix::{CsrMatrix, DenseMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_operators(c: &mut Criterion) {
    let ft = footnote3_table(10_000, true, false, 11);
    let (rows, cols) = ft.target_shape();
    let t = ft.materialize();
    let y = DenseMatrix::filled(rows, 1, 0.25);

    let mut group = c.benchmark_group("ops");
    group.sample_size(10);
    group.bench_function("transpose_lmm/factorized", |b| {
        b.iter(|| black_box(ft.lmm_transpose(&y, Strategy::Compressed).expect("shapes")))
    });
    group.bench_function("transpose_lmm/materialized", |b| {
        b.iter(|| black_box(t.transpose_matmul(&y).expect("shapes")))
    });
    group.bench_function("gram/factorized", |b| b.iter(|| black_box(ft.gram())));
    group.bench_function("gram/materialized", |b| b.iter(|| black_box(t.gram())));
    group.bench_function("col_sums/factorized", |b| {
        b.iter(|| black_box(ft.col_sums()))
    });
    group.bench_function("col_sums/materialized", |b| {
        b.iter(|| black_box(t.col_sums()))
    });
    group.bench_function("materialize", |b| b.iter(|| black_box(ft.materialize())));
    let _ = cols;
    group.finish();
}

/// DESIGN.md §7.2: applying the indicator matrix as a compressed
/// gather versus as an expanded CSR multiplication.
fn bench_metadata_application(c: &mut Criterion) {
    let ft = footnote3_table(10_000, true, false, 13);
    let s2 = &ft.metadata().sources[1];
    let d2 = &ft.source_data()[1];
    // The local result Dₖ (rSk × cSk) lifted to target rows.
    let ci = s2.indicator.compressed().to_vec();
    let i2_csr: CsrMatrix = s2.indicator.to_csr();

    let mut group = c.benchmark_group("metadata_application");
    group.sample_size(10);
    group.bench_function("indicator/compressed-gather", |b| {
        b.iter(|| black_box(d2.gather_rows(&ci).expect("validated")))
    });
    group.bench_function("indicator/expanded-csr", |b| {
        b.iter(|| black_box(i2_csr.matmul_dense(d2).expect("validated")))
    });
    group.finish();
}

criterion_group!(benches, bench_operators, bench_metadata_application);
criterion_main!(benches);
