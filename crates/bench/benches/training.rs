//! Criterion micro-benchmark: end-to-end model training, factorized vs
//! materialized (materialization cost included — the paper's Fig. 2
//! pipeline pays it before training can start).

use amalur_bench::footnote3_table;
use amalur_factorize::LinOps;
use amalur_matrix::DenseMatrix;
use amalur_ml::{
    KMeans, KMeansConfig, LinRegConfig, LinearRegression, LogRegConfig, LogisticRegression,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn labels(rows: usize, binary: bool) -> DenseMatrix {
    let y: Vec<f64> = (0..rows)
        .map(|i| {
            let v = (i % 7) as f64 / 7.0 - 0.5;
            if binary {
                f64::from(v > 0.0)
            } else {
                v
            }
        })
        .collect();
    DenseMatrix::column_vector(&y)
}

fn bench_training(c: &mut Criterion) {
    let ft = footnote3_table(10_000, true, false, 17);
    let (rows, _) = ft.target_shape();
    let y = labels(rows, false);
    let y_bin = labels(rows, true);

    let linreg = || {
        LinearRegression::new(LinRegConfig {
            epochs: 10,
            learning_rate: 1e-3,
            l2: 0.1,
            tolerance: 0.0,
        })
    };
    let logreg = || {
        LogisticRegression::new(LogRegConfig {
            epochs: 10,
            learning_rate: 1e-2,
            l2: 0.0,
        })
    };

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("linreg/factorized", |b| {
        b.iter(|| {
            let mut m = linreg();
            m.fit(&ft, &y).expect("trains");
            black_box(m.coefficients().cloned())
        })
    });
    group.bench_function("linreg/materialize+train", |b| {
        b.iter(|| {
            let t = ft.materialize();
            let mut m = linreg();
            m.fit(&t, &y).expect("trains");
            black_box(m.coefficients().cloned())
        })
    });
    group.bench_function("logreg/factorized", |b| {
        b.iter(|| {
            let mut m = logreg();
            m.fit(&ft, &y_bin).expect("trains");
            black_box(m.coefficients().cloned())
        })
    });
    group.bench_function("logreg/materialize+train", |b| {
        b.iter(|| {
            let t = ft.materialize();
            let mut m = logreg();
            m.fit(&t, &y_bin).expect("trains");
            black_box(m.coefficients().cloned())
        })
    });
    group.bench_function("kmeans/factorized", |b| {
        b.iter(|| {
            let mut m = KMeans::new(KMeansConfig {
                k: 4,
                max_iters: 5,
                tolerance: 0.0,
                seed: 3,
            });
            black_box(m.fit(&ft).expect("clusters"))
        })
    });
    group.bench_function("kmeans/materialize+train", |b| {
        b.iter(|| {
            let t = ft.materialize();
            let mut m = KMeans::new(KMeansConfig {
                k: 4,
                max_iters: 5,
                tolerance: 0.0,
                seed: 3,
            });
            black_box(m.fit(&t).expect("clusters"))
        })
    });
    // Closed-form ridge through the factorized Gram matrix.
    group.bench_function("ridge_normal_eq/factorized", |b| {
        b.iter(|| {
            let mut m = LinearRegression::new(LinRegConfig {
                l2: 1.0,
                ..LinRegConfig::default()
            });
            m.fit_normal_equations(&ft, &y).expect("solves");
            black_box(m.coefficients().cloned())
        })
    });
    let _ = LinOps::n_rows(&ft);
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
