//! Re-fits the cost model's [`HardwareProfile`] from micro-probes and
//! writes `COST_PROFILE.json` (workspace root, next to
//! `BENCH_kernels.json`).
//!
//! Run this after any kernel change (CI does, before the `table3
//! --quick` smoke) so the factorize-vs-materialize crossover tracks the
//! machine instead of rotting with stale constants. `--quick` shrinks
//! the probe ladder for smoke testing.
//!
//! Run with: `cargo run --release -p amalur-bench --bin calibrate`

use amalur_cost::{calibrate, CalibrationConfig, HardwareProfile, COST_PROFILE_FILE};
use std::path::Path;

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("warning: calibrate built without --release; the fitted profile is meaningless");
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        CalibrationConfig::quick()
    } else {
        CalibrationConfig::default()
    };
    println!(
        "calibrating cost model: ladder {:?}, {} reps/probe (min taken, 1 warm-up)\n",
        config.ladder, config.reps
    );
    let report = calibrate(&config);

    println!(
        "{:<32} {:>12} {:>12} {:>8}",
        "probe", "measured ms", "predicted ms", "rel err"
    );
    println!("{}", "-".repeat(68));
    for p in &report.probes {
        println!(
            "{:<32} {:>12.3} {:>12.3} {:>7.1}%",
            p.name,
            p.measured_ns / 1e6,
            p.predicted_ns(&report.profile) / 1e6,
            p.relative_error(&report.profile) * 100.0,
        );
    }

    let uncal = HardwareProfile::uncalibrated();
    println!("\nfitted profile (ns per abstract unit):");
    println!(
        "  flop_cost       {:>10.4}   (uncalibrated default {:.1})",
        report.profile.flop_cost, uncal.flop_cost
    );
    println!(
        "  traffic_cost    {:>10.4}   (uncalibrated default {:.1})",
        report.profile.traffic_cost, uncal.traffic_cost
    );
    println!(
        "  correction_cost {:>10.4}   (uncalibrated default {:.1})",
        report.profile.correction_cost, uncal.correction_cost
    );
    println!(
        "  assembly_cost   {:>10.4}   (uncalibrated default {:.1})",
        report.profile.assembly_cost, uncal.assembly_cost
    );
    println!(
        "fit quality over {} probes: rms rel err {:.1}%, max {:.1}%",
        report.probes.len(),
        report.rms_rel_err * 100.0,
        report.max_rel_err * 100.0
    );

    report
        .save(Path::new(COST_PROFILE_FILE))
        .expect("writable working directory");
    println!("wrote {COST_PROFILE_FILE}");

    assert!(
        report.profile.is_valid(),
        "acceptance: fitted profile must be valid (finite, non-negative, non-zero)"
    );
}
