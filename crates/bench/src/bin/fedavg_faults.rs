//! Fault-grid benchmark for the FedAvg orchestrator.
//!
//! Writes `BENCH_federated.json` (in the current directory — run from
//! the workspace root) with rounds-to-converge and communication
//! overhead for a seeded drop × straggler fault grid, all against the
//! fault-free baseline on the same data. Every cell is deterministic:
//! the whole fault schedule hangs off the plan seed, so the JSON is
//! stable across reruns and comparable across PRs.
//!
//! `--quick` runs only the acceptance cell (20% drops, 10% stragglers,
//! quorum 2/3) and exits non-zero unless it converges within 1% of the
//! fault-free loss — the CI fault-injection smoke test.

use amalur_federated::hfl::{train_fedavg_with_transport, PartySamples};
use amalur_federated::{FaultPlan, FaultyTransport, HflConfig};
use amalur_matrix::DenseMatrix;
use amalur_obs::MetricsRegistry;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0xFED5;
const ROUNDS: usize = 200;

/// Splits a common linear dataset across `k` equally sized silos.
fn silos(k: usize, rows_each: usize, seed: u64) -> Vec<PartySamples> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let truth = [2.0, -1.0, 0.5];
    (0..k)
        .map(|i| {
            let x = DenseMatrix::random_uniform(rows_each, 3, -1.0, 1.0, &mut rng);
            let y: Vec<f64> = (0..rows_each)
                .map(|r| {
                    (0..3).map(|c| x.get(r, c) * truth[c]).sum::<f64>() + rng.gen_range(-0.01..0.01)
                })
                .collect();
            PartySamples {
                name: format!("silo{i}"),
                x,
                y: DenseMatrix::column_vector(&y),
            }
        })
        .collect()
}

fn config() -> HflConfig {
    HflConfig {
        rounds: ROUNDS,
        learning_rate: 0.3,
        ..HflConfig::default()
    }
}

struct Cell {
    drop: f64,
    straggler: f64,
    converged: bool,
    rounds_to_converge: Option<usize>,
    final_loss: f64,
    wire_bytes: usize,
    retries: usize,
    rounds_degraded: usize,
    rounds_skipped: usize,
    quorum_lost: bool,
    /// `amalur-obs/v1` registry dump, populated for the acceptance cell
    /// only, so the federated bench and the serving bench emit the same
    /// metrics format.
    metrics_json: Option<String>,
}

/// First round whose loss is within 1% of the fault-free final loss.
fn rounds_to(losses: &[f64], target: f64) -> Option<usize> {
    losses.iter().position(|&l| l <= target * 1.01)
}

fn run_cell(parties: &[PartySamples], drop: f64, straggler: f64, clean_final: f64) -> Cell {
    let mut t = FaultyTransport::new(FaultPlan::grid(SEED, drop, straggler)).expect("valid grid");
    match train_fedavg_with_transport(parties, &config(), &mut t) {
        Ok(r) => {
            let final_loss = r.loss_history.last().copied().unwrap_or(f64::NAN);
            // The acceptance cell doubles as the metrics-format probe:
            // bridge CommStats + the virtual-time round histogram into
            // a registry and embed its dump.
            let metrics_json =
                ((drop - 0.2).abs() < 1e-9 && (straggler - 0.1).abs() < 1e-9).then(|| {
                    let reg = MetricsRegistry::new();
                    r.to_metrics(&reg);
                    reg.snapshot().to_json(2)
                });
            Cell {
                drop,
                straggler,
                converged: final_loss <= clean_final * 1.01,
                rounds_to_converge: rounds_to(&r.loss_history, clean_final),
                final_loss,
                wire_bytes: r.comm.total_bytes(),
                retries: r.comm.retries,
                rounds_degraded: r.comm.rounds_degraded,
                rounds_skipped: r.comm.rounds_skipped,
                quorum_lost: false,
                metrics_json,
            }
        }
        Err(e) => {
            eprintln!("cell drop={drop} straggler={straggler}: {e}");
            Cell {
                drop,
                straggler,
                converged: false,
                rounds_to_converge: None,
                final_loss: f64::NAN,
                wire_bytes: 0,
                retries: 0,
                rounds_degraded: 0,
                rounds_skipped: 0,
                quorum_lost: true,
                metrics_json: None,
            }
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let parties = silos(3, 30, 1);

    let mut clean_t = FaultyTransport::new(FaultPlan::reliable(SEED)).expect("valid plan");
    let clean =
        train_fedavg_with_transport(&parties, &config(), &mut clean_t).expect("fault-free run");
    let clean_final = *clean.loss_history.last().expect("non-empty history");
    println!(
        "baseline (no faults): final loss {clean_final:.6}, {} bytes",
        clean.comm.total_bytes()
    );

    let grid: Vec<(f64, f64)> = if quick {
        vec![(0.2, 0.1)]
    } else {
        let mut g = Vec::new();
        for &drop in &[0.0, 0.1, 0.2, 0.3] {
            for &straggler in &[0.0, 0.1, 0.2] {
                g.push((drop, straggler));
            }
        }
        g
    };

    let cells: Vec<Cell> = grid
        .iter()
        .map(|&(d, s)| run_cell(&parties, d, s, clean_final))
        .collect();
    for c in &cells {
        println!(
            "drop={:.1} straggler={:.1}: loss {:.6} ({}), rounds-to-converge {}, \
             {} bytes ({:+.1}% vs clean), retries {}, degraded {}, skipped {}",
            c.drop,
            c.straggler,
            c.final_loss,
            if c.quorum_lost {
                "quorum lost"
            } else if c.converged {
                "converged"
            } else {
                "NOT within 1%"
            },
            c.rounds_to_converge
                .map_or("never".to_owned(), |r| r.to_string()),
            c.wire_bytes,
            100.0 * (c.wire_bytes as f64 - clean.comm.total_bytes() as f64)
                / clean.comm.total_bytes() as f64,
            c.retries,
            c.rounds_degraded,
            c.rounds_skipped,
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"amalur-bench-federated/v1\",\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"silos\": 3, \"rows_each\": 30, \"features\": 3, \"rounds\": {ROUNDS}, \"quorum\": \"2/3\", \"seed\": {SEED} }},\n"
    ));
    json.push_str(&format!(
        "  \"baseline\": {{ \"final_loss\": {clean_final:.9}, \"wire_bytes\": {} }},\n",
        clean.comm.total_bytes()
    ));
    json.push_str("  \"grid\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"drop\": {:.2}, \"straggler\": {:.2}, \"converged\": {}, \
             \"rounds_to_converge\": {}, \"final_loss\": {:.9}, \"wire_bytes\": {}, \
             \"retries\": {}, \"rounds_degraded\": {}, \"rounds_skipped\": {}, \
             \"quorum_lost\": {} }}{}\n",
            c.drop,
            c.straggler,
            c.converged,
            c.rounds_to_converge
                .map_or("null".to_owned(), |r| r.to_string()),
            c.final_loss,
            c.wire_bytes,
            c.retries,
            c.rounds_degraded,
            c.rounds_skipped,
            c.quorum_lost,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    match cells.iter().find_map(|c| c.metrics_json.as_ref()) {
        Some(m) => json.push_str(&format!("  \"metrics\": {m}\n")),
        None => json.push_str("  \"metrics\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_federated.json", &json).expect("writable working directory");
    println!("wrote BENCH_federated.json");

    if quick {
        let cell = &cells[0];
        assert!(
            cell.converged,
            "acceptance: 20% drop / 10% straggler with quorum 2/3 must converge within 1% \
             of the fault-free loss (got {} vs {clean_final})",
            cell.final_loss
        );
        println!("quick acceptance cell passed");
    }
}
