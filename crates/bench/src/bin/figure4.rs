//! **Figure 4**: prints the mapping, indicator and redundancy matrices
//! of the running example, and the LMM-rewrite verification — the exact
//! artifacts of the paper's Figure 4a-c.
//!
//! Run with: `cargo run -p amalur-bench --bin figure4`

use amalur_data::hospital;
use amalur_factorize::{FactorizedTable, Strategy};
use amalur_integration::{integrate_pair, IntegrationOptions, ScenarioKind};
use amalur_matrix::DenseMatrix;

fn show(name: &str, m: &DenseMatrix) {
    println!("{name} ({}x{}):", m.rows(), m.cols());
    for i in 0..m.rows() {
        let cells: Vec<String> = m.row(i).iter().map(|v| format!("{v:>5.0}")).collect();
        println!("  [{}]", cells.join(" "));
    }
}

fn main() {
    let result = integrate_pair(
        &hospital::s1(),
        &hospital::s2(),
        ScenarioKind::FullOuterJoin,
        &IntegrationOptions::with_key("n", "n"),
    )
    .expect("the running example integrates");
    let tgds: Vec<String> = result.tgds.iter().map(ToString::to_string).collect();
    let ft = FactorizedTable::from_integration(result).expect("consistent metadata");
    let md = ft.metadata();

    println!("Figure 4 reproduction — the running example's DI metadata\n");
    println!("schema mappings:");
    for t in &tgds {
        println!("  {t}");
    }
    println!("\ntarget schema: T({})", md.target_columns.join(", "));

    println!("\n(a) mapping matrices");
    for s in &md.sources {
        println!("  CM_{} = {:?}", s.name, s.mapping.compressed());
    }
    for s in &md.sources {
        show(&format!("M_{}", s.name), &s.mapping.to_dense());
    }

    println!("\n(b) indicator matrices (compressed) and data matrices");
    for s in &md.sources {
        println!("  CI_{} = {:?}", s.name, s.indicator.compressed());
    }
    for (s, d) in md.sources.iter().zip(ft.source_data()) {
        show(&format!("D_{} [{}]", s.name, s.mapped_columns.join(",")), d);
    }

    println!("\n(c) redundancy matrix and LMM rewrite");
    show("R_S2", &md.sources[1].redundancy.to_dense());
    show("T1 = I1·D1·M1ᵀ", &ft.intermediate(0).expect("in range"));
    show(
        "T2 = I2·D2·M2ᵀ  (note Jane's duplicated m, a)",
        &ft.intermediate(1).expect("in range"),
    );
    show("T  = T1 + T2∘R2  (Figure 2d)", &ft.materialize());

    let x = DenseMatrix::from_rows(&[
        vec![6.0, 5.0],
        vec![3.0, 2.0],
        vec![2.0, 2.0],
        vec![4.0, 2.0],
    ])
    .expect("static operand");
    show("X", &x);
    show(
        "T·X via Eq. 2 (factorized)",
        &ft.lmm(&x, Strategy::Compressed).expect("shapes agree"),
    );
    show(
        "T·X materialized (reference)",
        &ft.materialize().matmul(&x).expect("shapes agree"),
    );
    let equal = ft
        .lmm(&x, Strategy::Compressed)
        .expect("shapes agree")
        .approx_eq(&ft.materialize().matmul(&x).expect("shapes agree"), 1e-9);
    println!(
        "\nEq. 2 rewrite matches materialized product: {}",
        if equal { "✓" } else { "✗" }
    );
}
