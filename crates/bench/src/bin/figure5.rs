//! **Figure 5**: the factorize/materialize decision areas.
//!
//! The paper sketches three areas in the (tuple ratio × feature ratio)
//! plane: area I where factorization clearly wins (Morpheus' heuristic
//! covers it), area II where materialization wins, and the hard area III
//! around the "curvy borderline". This binary measures the plane and
//! prints (a) the empirical decision map, (b) the speedup values, and
//! (c) where each cost model draws its boundary.
//!
//! Run with: `cargo run --release -p amalur-bench --bin figure5`
//! (`--quick` shrinks the base table.)

use amalur_bench::{decision_char, figure5_sweep};
use amalur_cost::{
    load_or_calibrate, AmalurCostModel, CalibrationConfig, TrainingWorkload, COST_PROFILE_FILE,
};
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows_s1 = if quick { 4_000 } else { 40_000 };
    let tuple_ratios = [1usize, 2, 4, 8, 16, 32];
    let feature_ratios = [1usize, 2, 4, 8, 16, 32, 64];
    let workload = TrainingWorkload {
        epochs: 20,
        x_cols: 1,
    };
    // Full-ladder fallback calibration even under --quick: profiles
    // fitted on the tiny quick ladder mispredict at the sweep's scale
    // (see the note in table3.rs).
    let (profile, source) =
        load_or_calibrate(Path::new(COST_PROFILE_FILE), &CalibrationConfig::default());
    let amalur = AmalurCostModel::with_profile(profile);
    println!(
        "Figure 5 reproduction — decision areas over tuple ratio × feature ratio \
         (r_S1 = {rows_s1}, {} GD epochs, {source} cost profile)\n",
        workload.epochs
    );
    let grid = figure5_sweep(rows_s1, &tuple_ratios, &feature_ratios, &workload, &amalur);

    let at = |tr: usize, fr: usize| {
        grid.iter()
            .find(|g| g.tuple_ratio == tr && g.feature_ratio == fr as f64)
            .expect("grid point computed")
    };

    // (a) Empirical decision map ('F' = factorize measured faster).
    println!("measured winner (F = factorize, m = materialize):");
    print!("{:>6} |", "TR\\FR");
    for fr in feature_ratios {
        print!("{fr:>5}");
    }
    println!();
    println!("{}", "-".repeat(8 + 5 * feature_ratios.len()));
    for tr in tuple_ratios {
        print!("{tr:>6} |");
        for fr in feature_ratios {
            print!("{:>5}", decision_char(at(tr, fr).truth));
        }
        println!();
    }

    // (b) Speedups.
    println!("\nfactorization speedup (materialized time / factorized time):");
    print!("{:>6} |", "TR\\FR");
    for fr in feature_ratios {
        print!("{fr:>7}");
    }
    println!();
    println!("{}", "-".repeat(8 + 7 * feature_ratios.len()));
    for tr in tuple_ratios {
        print!("{tr:>6} |");
        for fr in feature_ratios {
            print!("{:>6.2}x", at(tr, fr).speedup);
        }
        println!();
    }

    // (c) Model boundaries.
    for (name, pick) in [
        ("Morpheus heuristic", 0usize),
        ("Amalur cost model", 1usize),
    ] {
        println!("\n{name} decisions:");
        print!("{:>6} |", "TR\\FR");
        for fr in feature_ratios {
            print!("{fr:>5}");
        }
        println!();
        println!("{}", "-".repeat(8 + 5 * feature_ratios.len()));
        for tr in tuple_ratios {
            print!("{tr:>6} |");
            for fr in feature_ratios {
                let g = at(tr, fr);
                let d = if pick == 0 { g.morpheus } else { g.amalur };
                print!("{:>5}", decision_char(d));
            }
            println!();
        }
    }

    // Accuracy per model over the whole plane.
    let total = grid.len();
    let m_ok = grid.iter().filter(|g| g.morpheus == g.truth).count();
    let a_ok = grid.iter().filter(|g| g.amalur == g.truth).count();
    println!(
        "\nagreement with the measured boundary: Morpheus {m_ok}/{total}, Amalur {a_ok}/{total}"
    );
    println!("expected shape: factorize region grows toward high TR × high FR (area I),");
    println!("materialize holds the low/low corner (area II), disagreements cluster near");
    println!("the boundary (area III).");
}
