//! Machine-readable kernel performance snapshot.
//!
//! Writes `BENCH_kernels.json` (in the current directory — run from the
//! workspace root) with median ns/op for the kernels every experiment
//! in the reproduction bottoms out in: dense matmul (packed kernel vs.
//! a naive triple loop), Gram, the LMM rewrite across strategies, and
//! one linear-regression GD epoch over the factorized footnote-3 table,
//! plus the steady-state allocation count of the workspace-backed
//! training loop. Also re-fits the cost model's `HardwareProfile`
//! (written to `COST_PROFILE.json` and echoed into the snapshot) so the
//! factorize-vs-materialize crossover tracks every kernel change. The
//! kernel-layer dispatch counters and calibration-probe histograms are
//! embedded as an `amalur-obs/v1` registry dump under `"metrics"`. Run
//! with `--release`; the perf trajectory is tracked across PRs by
//! committing the refreshed JSON.

use amalur_bench::footnote3_table;
use amalur_cost::{calibrate, CalibrationConfig, COST_PROFILE_FILE};
use amalur_factorize::Strategy;
use amalur_matrix::{kernel_blocking, kernel_threads, DenseMatrix, Workspace};
use amalur_ml::{LinRegConfig, LinearRegression};
use amalur_obs::MetricsRegistry;
use rand::SeedableRng;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Median ns/op over `reps` timed runs of `f` (after one warm-up run).
fn measure<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Naive triple-loop reference GEMM (the baseline the packed kernel is
/// required to beat by ≥ 2× at 512³).
fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a.get(i, l) * b.get(l, j);
            }
            out.set(i, j, s);
        }
    }
    out
}

fn json_entry(out: &mut String, name: &str, ns: f64) {
    out.push_str(&format!("    \"{name}\": {:.1},\n", ns));
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("warning: perf_snapshot built without --release; numbers are meaningless");
    }
    // Mount the kernel-layer statics up front so every dispatch below
    // lands in the snapshot embedded at the end.
    let registry = MetricsRegistry::new();
    amalur_matrix::mount_metrics(&registry);
    amalur_factorize::mount_metrics(&registry);
    amalur_cost::mount_metrics(&registry);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBE7C);

    // --- dense kernels at 512×512×512 -----------------------------------
    let size = 512;
    let a = DenseMatrix::random_uniform(size, size, -1.0, 1.0, &mut rng);
    let b = DenseMatrix::random_uniform(size, size, -1.0, 1.0, &mut rng);
    let matmul_packed_ns = measure(5, || a.matmul(&b).expect("square shapes"));
    let matmul_naive_ns = measure(3, || matmul_naive(&a, &b));
    let gram_ns = measure(5, || a.gram());
    let speedup = matmul_naive_ns / matmul_packed_ns;
    let gflops = 2.0 * (size as f64).powi(3) / matmul_packed_ns;
    println!(
        "matmul {size}³: packed {:.2} ms ({gflops:.2} GFLOP/s), naive {:.2} ms — {speedup:.1}×",
        matmul_packed_ns / 1e6,
        matmul_naive_ns / 1e6,
    );

    // --- factorized operators (footnote-3 workload) ----------------------
    let ft = footnote3_table(20_000, true, false, 7);
    let (rows, cols) = ft.target_shape();
    let x = DenseMatrix::filled(cols, 1, 0.5);
    let lmm_compressed_ns = measure(7, || ft.lmm(&x, Strategy::Compressed).expect("shapes"));
    let lmm_sparse_ns = measure(7, || ft.lmm(&x, Strategy::Sparse).expect("shapes"));
    // Morpheus rule (1) needs disjoint sources: the inner-1:1 config.
    let ft_disjoint = footnote3_table(20_000, false, false, 7);
    let x_disjoint = DenseMatrix::filled(ft_disjoint.target_shape().1, 1, 0.5);
    let lmm_morpheus_ns = measure(7, || {
        ft_disjoint
            .lmm(&x_disjoint, Strategy::Morpheus)
            .expect("disjoint config satisfies rule (1)")
    });
    let fact_gram_ns = measure(3, || ft.gram());
    println!(
        "lmm {rows}×{cols}: compressed {:.2} ms, sparse {:.2} ms, morpheus {:.2} ms",
        lmm_compressed_ns / 1e6,
        lmm_sparse_ns / 1e6,
        lmm_morpheus_ns / 1e6,
    );

    // --- linreg GD epoch over the factorized table -----------------------
    let y = DenseMatrix::filled(rows, 1, 1.0);
    let epochs = 10;
    let mut ws = Workspace::new();
    // Warm the pool, then count steady-state allocations across a
    // second full fit (must be zero: the zero-allocation pipeline).
    let mut model = LinearRegression::new(LinRegConfig {
        epochs,
        learning_rate: 1e-4,
        ..LinRegConfig::default()
    });
    model.fit_with_workspace(&ft, &y, &mut ws).expect("trains");
    let warm_allocs = ws.fresh_allocations();
    model.fit_with_workspace(&ft, &y, &mut ws).expect("trains");
    let steady_state_allocs = ws.fresh_allocations() - warm_allocs;
    let linreg_epoch_ns = measure(5, || {
        model.fit_with_workspace(&ft, &y, &mut ws).expect("trains")
    }) / epochs as f64;
    println!(
        "linreg GD epoch ({rows}×{cols} factorized): {:.2} ms, steady-state allocs {steady_state_allocs}",
        linreg_epoch_ns / 1e6,
    );

    // --- cost-model calibration ------------------------------------------
    // Kernel speedups move the factorize-vs-materialize crossover; every
    // snapshot re-fits the hardware profile so the cost model keeps up.
    let report = calibrate(&CalibrationConfig::default());
    report
        .save(Path::new(COST_PROFILE_FILE))
        .expect("writable working directory");
    let hp = report.profile;
    println!(
        "cost profile: flop={:.4} traffic={:.4} correction={:.4} assembly={:.4} ns/unit \
         dispatch={:.0} ns/call (rms rel err {:.1}% over {} probes) -> {COST_PROFILE_FILE}",
        hp.flop_cost,
        hp.traffic_cost,
        hp.correction_cost,
        hp.assembly_cost,
        hp.dispatch_cost,
        report.rms_rel_err * 100.0,
        report.probes.len(),
    );

    // --- emit JSON --------------------------------------------------------
    let (mr, nr, mc, kc, nc) = kernel_blocking();
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"amalur-bench-kernels/v2\",\n");
    json.push_str("  \"unit\": \"ns_per_op\",\n");
    json.push_str(&format!(
        "  \"kernel\": {{ \"MR\": {mr}, \"NR\": {nr}, \"MC\": {mc}, \"KC\": {kc}, \"NC\": {nc}, \"threads\": {} }},\n",
        kernel_threads()
    ));
    json.push_str("  \"benchmarks\": {\n");
    json_entry(&mut json, "matmul_512_packed", matmul_packed_ns);
    json_entry(&mut json, "matmul_512_naive", matmul_naive_ns);
    json_entry(&mut json, "gram_512", gram_ns);
    json_entry(&mut json, "lmm_compressed", lmm_compressed_ns);
    json_entry(&mut json, "lmm_sparse", lmm_sparse_ns);
    json_entry(&mut json, "lmm_morpheus", lmm_morpheus_ns);
    json_entry(&mut json, "gram_factorized", fact_gram_ns);
    json_entry(&mut json, "linreg_gd_epoch_factorized", linreg_epoch_ns);
    json.push_str(&format!(
        "    \"matmul_512_speedup_vs_naive\": {speedup:.2}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"cost_profile\": {{ \"flop_cost\": {:.6}, \"traffic_cost\": {:.6}, \"correction_cost\": {:.6}, \"assembly_cost\": {:.6}, \"dispatch_cost\": {:.1}, \"rms_rel_err\": {:.4} }},\n",
        hp.flop_cost, hp.traffic_cost, hp.correction_cost, hp.assembly_cost, hp.dispatch_cost, report.rms_rel_err
    ));
    json.push_str(&format!(
        "  \"linreg_steady_state_fresh_allocations\": {steady_state_allocs},\n"
    ));
    json.push_str(&format!(
        "  \"metrics\": {}\n",
        registry.snapshot().to_json(2)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("writable working directory");
    println!("wrote BENCH_kernels.json");

    assert!(
        speedup >= 2.0,
        "acceptance: packed kernel must be ≥ 2× the naive triple loop (got {speedup:.2}×)"
    );
    assert_eq!(
        steady_state_allocs, 0,
        "acceptance: steady-state linreg epochs must not allocate"
    );
}
