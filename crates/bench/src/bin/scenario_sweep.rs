//! **Scenario sweep**: the generated-scenario correctness and
//! cost-model-coverage gate.
//!
//! Replaces the fixed footnote-3 ladder as the project's correctness
//! backbone: instead of checking a handful of hand-wired two-source
//! points, this bin
//!
//! 1. replays the regression corpus (`crates/gen/corpus/regressions.json`
//!    — previously shrunk failing scenarios) through the differential
//!    harness;
//! 2. sweeps ≥ 100 freshly sampled scenarios — star, snowflake,
//!    multi-hop chain and M:N topologies; skewed fan-outs; shared-column
//!    redundancy grids; mixed sparse/dense sources — and demands
//!    factorized == materialized on every ML workload (violations are
//!    shrunk to a minimal spec and reported as corpus-ready JSON);
//! 3. scores the cost model on the large scenarios: predicted
//!    factorize-vs-materialize decision against the measured oracle,
//!    bucketed by `topology/skew`, near-ties excluded as timing noise —
//!    showing *where* in the scenario space the model breaks down.
//!
//! Writes `BENCH_coverage.json`. Exits non-zero on any equivalence
//! violation (corpus or fresh) or, with enough clear-cut measurements,
//! when the cost model scores below coin-flip overall — the
//! `--quick` form of both gates runs in CI on every push.
//!
//! Run with: `cargo run --release -p amalur-bench --bin scenario_sweep`
//! (`--quick` for the CI smoke; `--seed N` to explore another slice).

use amalur_cost::{
    load_or_calibrate, AmalurCostModel, CalibrationConfig, CostFeatures, CostModel,
    MorpheusHeuristic, TrainingWorkload, COST_PROFILE_FILE,
};
use amalur_factorize::FactorizedTable;
use amalur_gen::sample::SizeClass;
use amalur_gen::{check_and_shrink, sample_spec, Corpus, ScenarioSpec, ALL_WORKLOADS};
use std::collections::BTreeMap;
use std::path::Path;

/// Default sweep seed; `--seed N` overrides. Pinned so a red CI run
/// reproduces locally with no arguments.
const SWEEP_SEED: u64 = 0xC0FFEE;

/// Gap below which the measured factorized/materialized timings count
/// as a near-tie and are excluded from accuracy scoring (generated
/// scenarios are small; 20% keeps timing noise out of the denominator).
const NEAR_TIE: f64 = 0.20;

#[derive(Default)]
struct Bucket {
    scenarios: usize,
    clear_cut: usize,
    excluded: usize,
    amalur_correct: usize,
    morpheus_correct: usize,
}

struct CostScore {
    buckets: BTreeMap<String, Bucket>,
}

impl CostScore {
    fn totals(&self) -> (usize, usize) {
        let clear: usize = self.buckets.values().map(|b| b.clear_cut).sum();
        let correct: usize = self.buckets.values().map(|b| b.amalur_correct).sum();
        (clear, correct)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(SWEEP_SEED);

    // Scenario budget: the acceptance bar is ≥ 100 swept scenarios in
    // the full run; quick keeps CI under a minute while still touching
    // all four topology families in both size classes.
    let (n_small, n_large) = if quick { (8u64, 4u64) } else { (72u64, 32u64) };

    let mut failures: Vec<String> = Vec::new();

    // --- 1. regression corpus ------------------------------------------------
    let corpus = Corpus::builtin();
    let corpus_violations = corpus.replay(&ALL_WORKLOADS);
    println!(
        "corpus: {} pinned scenarios, {} violations",
        corpus.entries.len(),
        corpus_violations.len()
    );
    for (entry, message) in &corpus_violations {
        failures.push(format!("corpus [{}]: {message}", entry.note));
    }

    // --- 2. differential sweep over fresh scenarios --------------------------
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    specs.extend((0..n_small).map(|i| sample_spec(seed, i, SizeClass::Small)));
    specs.extend((0..n_large).map(|i| sample_spec(seed ^ 0xB16, i, SizeClass::Large)));
    let n_equivalence_checked = corpus.entries.len() + specs.len();
    println!(
        "sweep: seed {seed:#x}, {} small + {} large scenarios, workloads linreg/logreg/kmeans/gnmf",
        n_small, n_large
    );
    let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, spec) in specs.iter().enumerate() {
        *by_kind.entry(spec.topology.kind()).or_default() += 1;
        if let Err(message) = check_and_shrink(spec, &ALL_WORKLOADS) {
            println!("  FAIL scenario #{i}: {message}");
            failures.push(format!("scenario #{i}: {message}"));
        }
    }
    println!(
        "equivalence: {}/{} scenarios agree on every workload ({})",
        n_equivalence_checked - failures.len(),
        n_equivalence_checked,
        by_kind
            .iter()
            .map(|(k, n)| format!("{k}×{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- 3. cost-model coverage on the large scenarios -----------------------
    let (profile, source) =
        load_or_calibrate(Path::new(COST_PROFILE_FILE), &CalibrationConfig::default());
    let amalur = AmalurCostModel::with_profile(profile);
    let morpheus = MorpheusHeuristic::default();
    let workload = TrainingWorkload {
        epochs: 60,
        x_cols: 1,
    };
    println!(
        "\ncost-model coverage (profile: {source}, near-tie tolerance {:.0}%):",
        NEAR_TIE * 100.0
    );
    let mut score = CostScore {
        buckets: BTreeMap::new(),
    };
    for spec in specs.iter().skip(n_small as usize) {
        let (md, data) = amalur_gen::generate(spec).expect("swept spec generates");
        let ft = FactorizedTable::new(md, data).expect("swept spec factorizes");
        let features = CostFeatures::from_table(&ft);
        let predicted_amalur = amalur.decide(&features, &workload);
        let predicted_morpheus = morpheus.decide(&features, &workload);
        let measurement = amalur_cost::measure_strategies(&ft, &workload);
        let bucket = score.buckets.entry(spec.bucket()).or_default();
        bucket.scenarios += 1;
        if measurement.is_near_tie(NEAR_TIE) {
            bucket.excluded += 1;
            continue;
        }
        let truth = measurement.ground_truth();
        bucket.clear_cut += 1;
        bucket.amalur_correct += usize::from(predicted_amalur == truth);
        bucket.morpheus_correct += usize::from(predicted_morpheus == truth);
    }
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>8} {:>9}",
        "bucket", "n", "clear-cut", "excluded", "amalur", "morpheus"
    );
    for (name, b) in &score.buckets {
        let pct = |correct: usize| {
            if b.clear_cut == 0 {
                "-".to_owned()
            } else {
                format!("{:.0}%", 100.0 * correct as f64 / b.clear_cut as f64)
            }
        };
        println!(
            "{:<22} {:>5} {:>9} {:>9} {:>8} {:>9}",
            name,
            b.scenarios,
            b.clear_cut,
            b.excluded,
            pct(b.amalur_correct),
            pct(b.morpheus_correct)
        );
    }

    // --- report --------------------------------------------------------------
    write_report(
        seed,
        quick,
        n_equivalence_checked,
        &failures,
        &score,
        &workload,
    );
    println!("\nwrote BENCH_coverage.json");

    // --- gates ---------------------------------------------------------------
    if !failures.is_empty() {
        eprintln!(
            "\n{} equivalence violation(s) — shrunk specs above are corpus-ready JSON \
             (append to crates/gen/corpus/regressions.json with the fix)",
            failures.len()
        );
        std::process::exit(1);
    }
    let (clear, correct) = score.totals();
    // Quadrant-regression gate: with a meaningful number of clear-cut
    // measurements, the calibrated model must beat a coin flip across
    // the generated space (table3 enforces the stronger footnote-3
    // quadrant bar; this one catches topology-specific collapse).
    if clear >= 4 && correct * 2 < clear {
        eprintln!("\ncost-model regression: {correct}/{clear} clear-cut decisions correct (< 50%)");
        std::process::exit(1);
    }
    println!("scenario sweep green: equivalence holds, cost model {correct}/{clear} clear-cut");
}

fn write_report(
    seed: u64,
    quick: bool,
    checked: usize,
    failures: &[String],
    score: &CostScore,
    workload: &TrainingWorkload,
) {
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"amalur-bench-coverage/v1\",\n");
    json.push_str(&format!(
        "  \"sweep\": {{ \"seed\": {seed}, \"quick\": {quick}, \"workloads\": [\"linreg\", \"logreg\", \"kmeans\", \"gnmf\"] }},\n"
    ));
    json.push_str(&format!(
        "  \"equivalence\": {{ \"scenarios\": {checked}, \"violations\": {} }},\n",
        failures.len()
    ));
    json.push_str(&format!(
        "  \"cost_model\": {{ \"oracle_epochs\": {}, \"near_tie_tolerance\": {NEAR_TIE}, \"buckets\": [\n",
        workload.epochs
    ));
    let n_buckets = score.buckets.len();
    for (i, (name, b)) in score.buckets.iter().enumerate() {
        let acc = |correct: usize| {
            if b.clear_cut == 0 {
                "null".to_owned()
            } else {
                format!("{:.4}", correct as f64 / b.clear_cut as f64)
            }
        };
        json.push_str(&format!(
            "    {{ \"bucket\": \"{name}\", \"scenarios\": {}, \"clear_cut\": {}, \"excluded\": {}, \
             \"amalur_accuracy\": {}, \"morpheus_accuracy\": {} }}{}\n",
            b.scenarios,
            b.clear_cut,
            b.excluded,
            acc(b.amalur_correct),
            acc(b.morpheus_correct),
            if i + 1 < n_buckets { "," } else { "" }
        ));
    }
    json.push_str("  ] }\n}\n");
    std::fs::write("BENCH_coverage.json", &json).expect("writable working directory");
}
