//! **Serving load**: throughput/latency characterization and the CI
//! smoke gate for the `amalur-serve` concurrent serving layer.
//!
//! Boots a [`Server`] over catalog-registered factorized datasets, then
//! unleashes a fleet of synthetic client threads issuing blocking
//! predict requests (with an occasional retrain mixed in). Reports
//! sustained throughput and p50/p95/p99 predict latency, plus how much
//! work the batching dispatcher actually coalesced, into
//! `BENCH_serving.json`.
//!
//! The `--quick` form is the CI gate; it fails (non-zero exit) when
//!
//! * any request is rejected under nominal load (the admission queue is
//!   sized to absorb the whole fleet, so a rejection means lost
//!   capacity, not overload);
//! * a batched prediction is not *bit-identical* to the same request
//!   served alone (the column-stable GEMM contract);
//! * p99 predict latency blows past a deliberately generous floor —
//!   a smoke detector for pathological queueing, not a perf target.
//!
//! Independently of `--quick`, the client-side percentiles are
//! cross-checked against the server's own `serve.predict.latency_us`
//! histogram (from [`ServerHandle::metrics`]): both views time the same
//! requests, so they must agree within the histogram's bucket
//! resolution plus client-side submit/wake-up overhead. Divergence
//! means the metrics layer is lying and fails the bench. The full
//! registry dump is embedded in `BENCH_serving.json` under `"metrics"`.
//!
//! Run with: `cargo run --release -p amalur-bench --bin serving_load`
//! (`--quick` for the CI smoke; `--clients N`, `--requests N`,
//! `--workers N` to reshape the fleet).

use amalur_catalog::DatasetRegistry;
use amalur_data::{generate_two_source, TwoSourceSpec};
use amalur_factorize::FactorizedTable;
use amalur_matrix::{DenseMatrix, Workspace};
use amalur_ml::LinRegConfig;
use amalur_obs::Histogram;
use amalur_serve::{
    HistogramSnapshot, PredictRequest, Server, ServerConfig, ServerHandle, TrainRequest,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Nominal-load p99 ceiling for the `--quick` gate. Generous on
/// purpose: single-core CI boxes share the machine with the build.
const QUICK_P99_CEILING: Duration = Duration::from_millis(500);

/// One client in this many opens with a retrain, keeping the train
/// path exercised without dominating the predict latency distribution.
const TRAIN_EVERY: u64 = 25;

struct Args {
    quick: bool,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let flag = |name: &str| argv.iter().any(|a| a == name);
    let opt = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let quick = flag("--quick");
    Args {
        quick,
        // Full mode: a thousand-client fleet; quick keeps CI snappy.
        clients: opt("--clients").unwrap_or(if quick { 64 } else { 1000 }),
        requests_per_client: opt("--requests").unwrap_or(if quick { 8 } else { 4 }),
        workers: opt("--workers").unwrap_or(2),
    }
}

fn dataset(seed: u64) -> FactorizedTable {
    let spec = TwoSourceSpec {
        rows_s1: 2000,
        cols_s1: 3,
        rows_s2: 400,
        cols_s2: 40,
        seed,
        ..TwoSourceSpec::default()
    };
    let (md, data) = generate_two_source(&spec).expect("valid spec");
    FactorizedTable::new(md, data).expect("valid factorized table")
}

fn feature_col(c_t: usize, tag: u64) -> DenseMatrix {
    let vals: Vec<f64> = (0..c_t)
        .map(|i| ((i as f64) * 0.61 + tag as f64 * 0.937).cos())
        .collect();
    DenseMatrix::from_vec(c_t, 1, vals).expect("column vector")
}

/// One synthetic client: a stream of blocking predicts with a periodic
/// retrain, returning predict latencies in microseconds.
fn run_client(
    handle: &ServerHandle,
    dataset_name: &str,
    c_t: usize,
    r_t: usize,
    client: u64,
    requests: usize,
) -> (Vec<u64>, u64, u64) {
    let mut latencies = Vec::with_capacity(requests);
    let mut rejected = 0u64;
    let mut trains = 0u64;
    for r in 0..requests as u64 {
        let tag = client * 10_000 + r;
        if r == 0 && client.is_multiple_of(TRAIN_EVERY) {
            let req = TrainRequest {
                dataset: dataset_name.to_owned(),
                version: None,
                labels: DenseMatrix::from_vec(r_t, 1, (0..r_t).map(|i| (i % 5) as f64).collect())
                    .expect("label column"),
                config: LinRegConfig {
                    epochs: 5,
                    learning_rate: 1e-4,
                    ..LinRegConfig::default()
                },
            };
            match handle.train(req) {
                Ok(_) => trains += 1,
                Err(amalur_serve::ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("train failed: {e}"),
            }
            continue;
        }
        let req = PredictRequest {
            dataset: dataset_name.to_owned(),
            version: None,
            features: feature_col(c_t, tag),
        };
        let start = Instant::now();
        match handle.predict(req) {
            Ok(_) => latencies.push(start.elapsed().as_micros() as u64),
            Err(amalur_serve::ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("predict failed: {e}"),
        }
    }
    (latencies, rejected, trains)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Client-side wall clocks start before `submit` and stop after the
/// ticket wake-up; the server histogram times admission→reply. The gap
/// is submit bookkeeping plus thread wake-up latency, bounded here.
const CROSS_CHECK_SLOP_US: f64 = 500.0;

/// Checks that client-observed percentiles agree with the server's
/// `serve.predict.latency_us` histogram. Both sides saw exactly the
/// same requests, so each client percentile must land inside the
/// server's bucket-resolution quantile band, widened by one extra
/// [`Histogram::RESOLUTION`] factor per side (the client sample and
/// the bucket edges quantize independently) plus absolute slop for
/// the submit/wake-up overhead only the client measures.
fn percentile_divergences(client_sorted: &[u64], server: &HistogramSnapshot) -> Vec<String> {
    let mut out = Vec::new();
    if server.count() != client_sorted.len() as u64 {
        out.push(format!(
            "server histogram holds {} samples, clients measured {}",
            server.count(),
            client_sorted.len()
        ));
        return out;
    }
    let res = Histogram::RESOLUTION;
    for (p, name) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let client = percentile(client_sorted, p) as f64;
        let hi = server.quantile(p) as f64 * res * res + CROSS_CHECK_SLOP_US;
        let lo = (server.quantile_lower(p) as f64 / (res * res) - CROSS_CHECK_SLOP_US).max(0.0);
        if client < lo || client > hi {
            out.push(format!(
                "{name}: client {client:.0}µs outside server band [{lo:.0}, {hi:.0}]µs \
                 (server bucket [{}, {}]µs)",
                server.quantile_lower(p),
                server.quantile(p)
            ));
        }
    }
    out
}

/// Re-submits a handful of concurrent predicts and checks every answer
/// bit-for-bit against a locally computed single-column `lmm_into` —
/// whatever the dispatcher coalesced, the bits must not move.
fn check_batched_equivalence(
    handle: &ServerHandle,
    table: &Arc<FactorizedTable>,
    dataset_name: &str,
) -> (bool, u64) {
    let (r_t, c_t) = table.target_shape();
    let n = 12;
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            handle
                .submit_predict(PredictRequest {
                    dataset: dataset_name.to_owned(),
                    version: None,
                    features: feature_col(c_t, 777_000 + i),
                })
                .expect("admission under nominal load")
        })
        .collect();
    let mut ws = Workspace::new();
    let mut reference = DenseMatrix::zeros(r_t, 1);
    let mut coalesced = 0u64;
    let mut ok = true;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let resp = ticket.wait().expect("predict during equivalence check");
        if resp.batched_with > 1 {
            coalesced += 1;
        }
        let x = feature_col(c_t, 777_000 + i as u64);
        table
            .lmm_into(&x, &mut reference, &mut ws)
            .expect("reference LMM");
        let same = resp
            .predictions
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        ok &= same;
    }
    (ok, coalesced)
}

fn main() {
    let args = parse_args();
    let total_requests = args.clients * args.requests_per_client;
    println!(
        "serving_load: {} clients × {} requests ({} total), {} workers{}",
        args.clients,
        args.requests_per_client,
        total_requests,
        args.workers,
        if args.quick { " [quick]" } else { "" }
    );

    let registry = Arc::new(DatasetRegistry::new());
    registry
        .register("bench-main", dataset(101))
        .expect("register");
    registry
        .register("bench-side", dataset(202))
        .expect("register");
    let table = registry.fetch("bench-main").expect("fetch").data;
    let (r_t, c_t) = table.target_shape();

    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: args.workers,
            // Nominal load: every in-flight client fits in the queue.
            queue_capacity: (args.clients * 2).max(1024),
            batch_window: Duration::from_micros(200),
            max_batch_cols: 32,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();

    let wall = Instant::now();
    let mut clients = Vec::with_capacity(args.clients);
    for c in 0..args.clients as u64 {
        let handle = handle.clone();
        let requests = args.requests_per_client;
        clients.push(
            std::thread::Builder::new()
                .stack_size(256 * 1024) // a thousand clients: keep stacks lean
                .spawn(move || run_client(&handle, "bench-main", c_t, r_t, c, requests))
                .expect("spawn client"),
        );
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(total_requests);
    let mut rejected = 0u64;
    let mut trains = 0u64;
    for c in clients {
        let (lat, rej, trn) = c.join().expect("client thread");
        latencies.extend(lat);
        rejected += rej;
        trains += trn;
    }
    let elapsed = wall.elapsed();

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    let throughput = total_requests as f64 / elapsed.as_secs_f64();

    // Cross-check before the equivalence probes add more samples to the
    // server histogram: at this point both views cover the same set.
    let fleet_snapshot = handle.metrics();
    let divergences = match fleet_snapshot.histogram("serve.predict.latency_us") {
        Some(h) => percentile_divergences(&latencies, h),
        None => vec!["serve.predict.latency_us missing from server metrics".into()],
    };

    let (equiv_ok, equiv_coalesced) = check_batched_equivalence(&handle, &table, "bench-main");
    let stats = handle.stats();
    let metrics = handle.metrics();
    server.shutdown();

    let mean_batch = if stats.predict_batches > 0 {
        stats.predicts_done as f64 / stats.predict_batches as f64
    } else {
        0.0
    };
    println!(
        "  {throughput:.0} req/s over {:.2}s | predict latency µs: p50={p50} p95={p95} p99={p99}",
        elapsed.as_secs_f64()
    );
    println!(
        "  batches={} coalesced={} (mean width {mean_batch:.2}) trains={trains} rejected={rejected} equivalence={}",
        stats.predict_batches,
        stats.coalesced_predicts,
        if equiv_ok { "ok" } else { "VIOLATED" }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"amalur-bench-serving/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"clients\": {}, \"requests_per_client\": {}, \"workers\": {}, \"quick\": {} }},\n",
        args.clients, args.requests_per_client, args.workers, args.quick
    ));
    json.push_str(&format!(
        "  \"throughput_req_per_s\": {throughput:.1},\n  \"elapsed_s\": {:.3},\n",
        elapsed.as_secs_f64()
    ));
    json.push_str(&format!(
        "  \"predict_latency_us\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"count\": {} }},\n",
        latencies.len()
    ));
    json.push_str(&format!(
        "  \"admission\": {{ \"accepted\": {}, \"rejected\": {} }},\n",
        stats.accepted, stats.rejected
    ));
    json.push_str(&format!(
        "  \"batching\": {{ \"predict_batches\": {}, \"coalesced_predicts\": {}, \"mean_batch_width\": {mean_batch:.3}, \"equivalence_probe_coalesced\": {equiv_coalesced} }},\n",
        stats.predict_batches, stats.coalesced_predicts
    ));
    json.push_str(&format!(
        "  \"trains_done\": {},\n  \"batched_equivalence_ok\": {equiv_ok},\n",
        stats.trains_done
    ));
    json.push_str(&format!(
        "  \"percentile_cross_check_ok\": {},\n",
        divergences.is_empty()
    ));
    json.push_str(&format!("  \"metrics\": {}\n}}\n", metrics.to_json(2)));
    std::fs::write("BENCH_serving.json", &json).expect("writable working directory");
    println!("wrote BENCH_serving.json");

    // The metrics layer lying about latency is a bug at any fleet size,
    // so the cross-check gates full runs too, not just --quick.
    let mut failures = Vec::new();
    for d in &divergences {
        failures.push(format!("client/server percentile divergence: {d}"));
    }
    if failures.is_empty() {
        println!("  client/server percentile cross-check: ok");
    }
    if args.quick {
        if rejected > 0 || stats.rejected > 0 {
            failures.push(format!(
                "{} requests rejected under nominal load",
                rejected.max(stats.rejected)
            ));
        }
        if !equiv_ok {
            failures.push("batched predictions diverged from unbatched bits".into());
        }
        if Duration::from_micros(p99) > QUICK_P99_CEILING {
            failures.push(format!(
                "p99 predict latency {p99}µs exceeds the {}ms smoke ceiling",
                QUICK_P99_CEILING.as_millis()
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("serving_load FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if args.quick {
        println!("serving_load --quick: all gates passed");
    }
}
