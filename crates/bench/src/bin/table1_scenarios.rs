//! **Table I**: the four dataset relationships as training workloads.
//!
//! For each scenario (full outer join, inner join, left join, union) on
//! scaled hospital silos: verify factorized ≡ materialized training,
//! and report the per-epoch times plus the one-off materialization cost
//! the factorized path avoids.
//!
//! Run with: `cargo run --release -p amalur-bench --bin table1_scenarios`

use amalur_data::hospital;
use amalur_factorize::{FactorizedTable, Strategy};
use amalur_integration::{integrate_pair, IntegrationOptions, ScenarioKind};
use amalur_matrix::DenseMatrix;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_er, n_pulm, overlap) = if quick {
        (5_000, 3_000, 2_000)
    } else {
        (50_000, 30_000, 20_000)
    };
    let (er, pulm) = hospital::scaled_silos(n_er, n_pulm, overlap, 5);
    let opts = IntegrationOptions::with_exact_key("n", "n");
    let epochs = 20;

    println!(
        "Table I scenarios on scaled hospital silos (S1: {n_er} rows, S2: {n_pulm} rows, \
         {overlap} shared entities, {epochs} GD epochs)\n"
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "scenario", "target", "fact/epoch", "mat/epoch", "mat assembly", "speedup", "equal"
    );
    println!("{}", "-".repeat(88));

    for kind in [
        ScenarioKind::FullOuterJoin,
        ScenarioKind::InnerJoin,
        ScenarioKind::LeftJoin,
        ScenarioKind::Union,
    ] {
        let result = integrate_pair(&er, &pulm, kind, &opts).expect("hospital integrates");
        let ft = FactorizedTable::from_integration(result).expect("consistent metadata");
        let (rows, cols) = ft.target_shape();

        let theta = DenseMatrix::filled(cols, 1, 0.1);
        let resid = DenseMatrix::filled(rows, 1, 0.1);

        // Correctness first.
        let assembly_start = Instant::now();
        let t = ft.materialize();
        let assembly = assembly_start.elapsed();
        let fact_result = ft.lmm(&theta, Strategy::Compressed).expect("shapes");
        let mat_result = t.matmul(&theta).expect("shapes");
        let equal = fact_result.approx_eq(&mat_result, 1e-9);

        // Factorized epochs.
        let start = Instant::now();
        for _ in 0..epochs {
            let _ = ft.lmm(&theta, Strategy::Compressed).expect("shapes");
            let _ = ft
                .lmm_transpose(&resid, Strategy::Compressed)
                .expect("shapes");
        }
        let fact_epoch = start.elapsed() / epochs as u32;

        // Materialized epochs.
        let start = Instant::now();
        for _ in 0..epochs {
            let _ = t.matmul(&theta).expect("shapes");
            let _ = t.transpose_matmul(&resid).expect("shapes");
        }
        let mat_epoch = start.elapsed() / epochs as u32;

        let total_fact = fact_epoch * epochs as u32;
        let total_mat = assembly + mat_epoch * epochs as u32;
        let speedup = total_mat.as_secs_f64() / total_fact.as_secs_f64().max(1e-12);

        println!(
            "{:<16} {:>7}x{:<4} {:>10.2?} {:>12.2?} {:>12.2?} {:>9.2}x {:>8}",
            kind.to_string(),
            rows,
            cols,
            fact_epoch,
            mat_epoch,
            assembly,
            speedup,
            if equal { "✓" } else { "✗" },
        );
    }
    println!("\n(speedup = total materialized (assembly + epochs) / total factorized.");
    println!(" These 1:1-matched feature-augmentation scenarios build NO target");
    println!(" redundancy, so materialization wins — exactly Example IV.1's pruning");
    println!(" rule. Contrast with `table3`/`figure5`, where PK-FK fan-out gives");
    println!(" factorization multi-x wins. Correctness holds everywhere: equal ✓.)");
}
