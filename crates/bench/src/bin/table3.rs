//! **Table III**: percentage of correct factorization decisions,
//! Amalur vs Morpheus, across the four redundancy quadrants.
//!
//! Paper setting (footnote 3): `c_S1 = 1`, `c_S2 = 100`,
//! `r_S2 = 0.2 · r_S1`, `r_S1` swept over a ladder, ten scenarios per
//! quadrant; the correct decision is whichever strategy *measures*
//! faster on a GD-shaped workload (min over repetitions; near-ties are
//! excluded from scoring as timing noise). The paper's ladder tops out
//! at 5M rows; ours at 500k (same decision structure, laptop-scale
//! memory) — see DESIGN.md §4.
//!
//! Amalur's model runs with the machine's measured [`HardwareProfile`]:
//! `COST_PROFILE.json` is loaded when present, otherwise a fresh
//! calibration runs first (and saves it). This is what keeps the
//! accuracy check honest across kernel speedups — the crossover is
//! re-fit, not hardcoded.
//!
//! Run with: `cargo run --release -p amalur-bench --bin table3`
//! (`--quick` caps the ladder at 10k rows.) Exits non-zero when Amalur
//! scores below Morpheus in any quadrant or mispredicts a clear-cut
//! scenario at the top of the ladder, so CI catches cost-model rot.

use amalur_bench::{run_quadrant, QuadrantResult};
use amalur_cost::{
    load_or_calibrate, AmalurCostModel, CalibrationConfig, HardwareProfile, TrainingWorkload,
    COST_PROFILE_FILE,
};
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full_ladder: Vec<usize> = vec![
        10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
    ];
    let ladder: Vec<usize> = if quick {
        full_ladder.into_iter().filter(|&r| r <= 10_000).collect()
    } else {
        full_ladder
    };
    // 100 GD epochs: enough training for the one-off materialization
    // cost to amortize, so the ground truth reflects the per-epoch
    // economics the cost models reason about (Example IV.1).
    let workload = TrainingWorkload {
        epochs: 100,
        x_cols: 1,
    };

    // Fallback calibration (no saved profile) deliberately uses the full
    // probe ladder even under --quick: the quick ladder (≤ 2k rows) fits
    // the dispatch-overhead-dominated regime and extrapolates a traffic
    // cost that flips the 10k-row decisions — measured here to fail this
    // very acceptance gate. The default ladder costs seconds.
    let (profile, source) =
        load_or_calibrate(Path::new(COST_PROFILE_FILE), &CalibrationConfig::default());
    let amalur = AmalurCostModel::with_profile(profile);
    println!("Table III reproduction — % correct factorize-vs-materialize decisions");
    println!(
        "cost profile ({source}): flop={:.4} traffic={:.4} correction={:.4} assembly={:.4} ns/unit",
        profile.flop_cost, profile.traffic_cost, profile.correction_cost, profile.assembly_cost
    );
    println!(
        "setting: c_S1=1, c_S2=100, r_S2=0.2·r_S1, r_S1 ∈ {ladder:?}, {} scenarios/quadrant, {} GD epochs\n",
        ladder.len(),
        workload.epochs
    );

    let mut results = Vec::new();
    for target_red in [true, false] {
        for source_red in [true, false] {
            results.push(run_quadrant(
                &ladder, target_red, source_red, &workload, &amalur,
            ));
        }
    }

    println!(
        "{:<38} {:>10} {:>10} {:>10}",
        "quadrant", "Morpheus", "Amalur", "excluded"
    );
    println!("{}", "-".repeat(72));
    for q in &results {
        println!(
            "target redundancy: {:<3} source: {:<3}      {:>9.0}% {:>9.0}% {:>10}",
            if q.target_redundancy { "yes" } else { "no" },
            if q.source_redundancy { "yes" } else { "no" },
            q.morpheus_correct * 100.0,
            q.amalur_correct * 100.0,
            q.excluded,
        );
    }

    println!("\npaper's Table III for comparison:");
    println!("  target yes:  Morpheus 70% / Amalur 70%   (both source columns)");
    println!("  target no :  Morpheus 20-30% / Amalur 70-80%");

    println!("\nper-scenario detail (truth / morpheus / amalur):");
    for q in &results {
        println!(
            "-- target_red={} source_red={}",
            q.target_redundancy, q.source_redundancy
        );
        for s in &q.scenarios {
            let note = if s.near_tie {
                "  (near-tie, excluded)"
            } else if s.amalur != s.truth {
                "  <- amalur miss"
            } else {
                ""
            };
            println!(
                "   r_S1={:<8} truth={:<11} morpheus={:<11} amalur={:<11} speedup={:>6.2}x{note}",
                s.rows_s1,
                s.truth.to_string(),
                s.morpheus.to_string(),
                s.amalur.to_string(),
                s.speedup,
            );
        }
    }

    // Shape assertions (the reproduction criteria of DESIGN.md §3).
    let target_yes: Vec<_> = results.iter().filter(|q| q.target_redundancy).collect();
    let target_no: Vec<_> = results.iter().filter(|q| !q.target_redundancy).collect();
    let avg = |qs: &[&QuadrantResult], f: fn(&QuadrantResult) -> f64| {
        qs.iter().map(|q| f(q)).sum::<f64>() / qs.len() as f64
    };
    let amalur_no = avg(&target_no, |q| q.amalur_correct);
    let morpheus_no = avg(&target_no, |q| q.morpheus_correct);
    println!(
        "\nshape check: no-target-redundancy quadrants — Amalur {:.0}% vs Morpheus {:.0}% (expect Amalur ≫ Morpheus)",
        amalur_no * 100.0,
        morpheus_no * 100.0
    );
    let amalur_yes = avg(&target_yes, |q| q.amalur_correct);
    println!(
        "shape check: target-redundancy quadrants — Amalur {:.0}% (expect ≥ 70%)",
        amalur_yes * 100.0
    );
    if amalur_no > morpheus_no && amalur_yes >= 0.6 {
        println!("=> Table III shape REPRODUCED");
    } else if quick {
        println!(
            "=> Table III shape check skipped conclusions: --quick omits the large-r_S1 \
             rungs the ≥ 70% criterion depends on (run the full ladder)"
        );
    } else {
        println!("=> Table III shape NOT reproduced on this machine (noisy timings?)");
    }

    // CI gate: the calibrated model must not lose to the shape-only
    // heuristic anywhere, and the top of the ladder (where the stale
    // pre-calibration constants used to mispredict) must be clean.
    let failures = acceptance_failures(&results, &profile);
    if failures.is_empty() {
        println!("=> acceptance: Amalur ≥ Morpheus in all quadrants, top-of-ladder clean");
    } else {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}

/// The conditions CI enforces; returned as messages so failures are
/// actionable in the log.
fn acceptance_failures(results: &[QuadrantResult], profile: &HardwareProfile) -> Vec<String> {
    let mut failures = Vec::new();
    if !profile.is_valid() {
        failures.push("cost profile is invalid".to_owned());
    }
    for q in results {
        let quadrant = format!(
            "quadrant target_red={} source_red={}",
            q.target_redundancy, q.source_redundancy
        );
        if q.amalur_correct < q.morpheus_correct {
            failures.push(format!(
                "{quadrant}: Amalur {:.0}% below Morpheus {:.0}%",
                q.amalur_correct * 100.0,
                q.morpheus_correct * 100.0
            ));
        }
        if let Some(top) = q.scenarios.iter().rev().find(|s| !s.near_tie) {
            if top.amalur != top.truth {
                failures.push(format!(
                    "{quadrant}: top-of-ladder miss at r_S1={} (truth {}, amalur {}, speedup {:.2}x)",
                    top.rows_s1, top.truth, top.amalur, top.speedup
                ));
            }
        }
    }
    failures
}
