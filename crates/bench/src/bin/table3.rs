//! **Table III**: percentage of correct factorization decisions,
//! Amalur vs Morpheus, across the four redundancy quadrants.
//!
//! Paper setting (footnote 3): `c_S1 = 1`, `c_S2 = 100`,
//! `r_S2 = 0.2 · r_S1`, `r_S1` swept over a ladder, ten scenarios per
//! quadrant; the correct decision is whichever strategy *measures*
//! faster on a GD-shaped workload. The paper's ladder tops out at 5M
//! rows; ours at 500k (same decision structure, laptop-scale memory) —
//! see DESIGN.md §4.
//!
//! Run with: `cargo run --release -p amalur-bench --bin table3`
//! (`--quick` caps the ladder at 10k rows.)

use amalur_bench::run_quadrant;
use amalur_cost::TrainingWorkload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full_ladder: Vec<usize> = vec![
        10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
    ];
    let ladder: Vec<usize> = if quick {
        full_ladder.into_iter().filter(|&r| r <= 10_000).collect()
    } else {
        full_ladder
    };
    // 100 GD epochs: enough training for the one-off materialization
    // cost to amortize, so the ground truth reflects the per-epoch
    // economics the cost models reason about (Example IV.1).
    let workload = TrainingWorkload {
        epochs: 100,
        x_cols: 1,
    };
    println!("Table III reproduction — % correct factorize-vs-materialize decisions");
    println!(
        "setting: c_S1=1, c_S2=100, r_S2=0.2·r_S1, r_S1 ∈ {ladder:?}, {} scenarios/quadrant, {} GD epochs\n",
        ladder.len(),
        workload.epochs
    );

    let mut results = Vec::new();
    for target_red in [true, false] {
        for source_red in [true, false] {
            results.push(run_quadrant(&ladder, target_red, source_red, &workload));
        }
    }

    println!("{:<38} {:>10} {:>10}", "quadrant", "Morpheus", "Amalur");
    println!("{}", "-".repeat(60));
    for q in &results {
        println!(
            "target redundancy: {:<3} source: {:<3}      {:>9.0}% {:>9.0}%",
            if q.target_redundancy { "yes" } else { "no" },
            if q.source_redundancy { "yes" } else { "no" },
            q.morpheus_correct * 100.0,
            q.amalur_correct * 100.0,
        );
    }

    println!("\npaper's Table III for comparison:");
    println!("  target yes:  Morpheus 70% / Amalur 70%   (both source columns)");
    println!("  target no :  Morpheus 20-30% / Amalur 70-80%");

    println!("\nper-scenario detail (truth / morpheus / amalur):");
    for q in &results {
        println!(
            "-- target_red={} source_red={}",
            q.target_redundancy, q.source_redundancy
        );
        for (rows, truth, m, a) in &q.scenarios {
            println!(
                "   r_S1={rows:<8} truth={truth:<11} morpheus={m:<11} amalur={a:<11}{}",
                if a == truth { "" } else { "  <- amalur miss" }
            );
        }
    }

    // Shape assertions (the reproduction criteria of DESIGN.md §3).
    let target_yes: Vec<_> = results.iter().filter(|q| q.target_redundancy).collect();
    let target_no: Vec<_> = results.iter().filter(|q| !q.target_redundancy).collect();
    let avg = |qs: &[&amalur_bench::QuadrantResult],
               f: fn(&amalur_bench::QuadrantResult) -> f64| {
        qs.iter().map(|q| f(q)).sum::<f64>() / qs.len() as f64
    };
    let amalur_no = avg(&target_no, |q| q.amalur_correct);
    let morpheus_no = avg(&target_no, |q| q.morpheus_correct);
    println!(
        "\nshape check: no-target-redundancy quadrants — Amalur {:.0}% vs Morpheus {:.0}% (expect Amalur ≫ Morpheus)",
        amalur_no * 100.0,
        morpheus_no * 100.0
    );
    let amalur_yes = avg(&target_yes, |q| q.amalur_correct);
    println!(
        "shape check: target-redundancy quadrants — Amalur {:.0}% (expect ≥ 70%)",
        amalur_yes * 100.0
    );
    if amalur_no > morpheus_no && amalur_yes >= 0.6 {
        println!("=> Table III shape REPRODUCED");
    } else {
        println!("=> Table III shape NOT reproduced on this machine (noisy timings?)");
    }
}
