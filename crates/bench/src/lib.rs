//! Shared harness pieces for the table/figure report binaries and the
//! criterion micro-benchmarks.
//!
//! The experiment index (which binary regenerates which table/figure of
//! the paper) lives in `DESIGN.md` §3; results are recorded in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amalur_cost::{
    measure_strategies, AmalurCostModel, CostFeatures, CostModel, Decision, Measurement,
    MorpheusHeuristic, TrainingWorkload,
};
use amalur_data::{generate_two_source, TwoSourceSpec};
use amalur_factorize::FactorizedTable;

/// Builds the footnote-3 configuration as a factorized table.
///
/// # Panics
/// Panics on generator inconsistencies (programming error in the spec).
pub fn footnote3_table(
    rows_s1: usize,
    target_redundancy: bool,
    source_redundancy: bool,
    seed: u64,
) -> FactorizedTable {
    let spec = TwoSourceSpec::footnote3(rows_s1, target_redundancy, source_redundancy, seed);
    let (md, data) = generate_two_source(&spec).expect("footnote-3 spec is valid");
    FactorizedTable::new(md, data).expect("generator produces consistent metadata")
}

/// Relative timing gap below which a scenario counts as a near-tie: the
/// measured "ground truth" is a coin flip, so accuracy scoring excludes
/// it from the denominator instead of charging models for noise.
pub const NEAR_TIE_TOLERANCE: f64 = 0.02;

/// One measured Table III scenario with both models' calls.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// `r_S1` of the configuration.
    pub rows_s1: usize,
    /// Measured ground truth (whichever strategy timed faster).
    pub truth: Decision,
    /// Morpheus' call.
    pub morpheus: Decision,
    /// Amalur's call.
    pub amalur: Decision,
    /// Measured factorization speedup (> 1 ⇒ factorize won).
    pub speedup: f64,
    /// Timings within [`NEAR_TIE_TOLERANCE`] of each other — excluded
    /// from the accuracy denominator.
    pub near_tie: bool,
}

/// One Table III cell: % of correct decisions per model over a ladder of
/// `r_S1` values.
#[derive(Debug, Clone)]
pub struct QuadrantResult {
    /// Redundancy present in the source tables?
    pub source_redundancy: bool,
    /// Redundancy present in the target table?
    pub target_redundancy: bool,
    /// Fraction of correct Morpheus decisions (0..=1) over the scored
    /// (non-near-tie) scenarios.
    pub morpheus_correct: f64,
    /// Fraction of correct Amalur decisions (0..=1) over the scored
    /// (non-near-tie) scenarios.
    pub amalur_correct: f64,
    /// Scenarios excluded from scoring as near-ties.
    pub excluded: usize,
    /// Per-scenario details.
    pub scenarios: Vec<Scenario>,
}

/// Runs one quadrant of the Table III experiment: for every `r_S1` in
/// `ladder`, generate the configuration, measure the ground truth (min
/// over repetitions), ask both models, and score them over the
/// non-near-tie scenarios. `amalur` carries the (ideally calibrated)
/// [`HardwareProfile`](amalur_cost::HardwareProfile).
pub fn run_quadrant(
    ladder: &[usize],
    target_redundancy: bool,
    source_redundancy: bool,
    workload: &TrainingWorkload,
    amalur: &AmalurCostModel,
) -> QuadrantResult {
    let morpheus = MorpheusHeuristic::default();
    let mut scenarios = Vec::with_capacity(ladder.len());
    let mut m_ok = 0usize;
    let mut a_ok = 0usize;
    let mut excluded = 0usize;
    for (i, &rows) in ladder.iter().enumerate() {
        let ft = footnote3_table(rows, target_redundancy, source_redundancy, 1000 + i as u64);
        let features = CostFeatures::from_table(&ft);
        let measured = measure_strategies(&ft, workload);
        let truth = measured.ground_truth();
        let near_tie = measured.is_near_tie(NEAR_TIE_TOLERANCE);
        let m = morpheus.decide(&features, workload);
        let a = amalur.decide(&features, workload);
        if near_tie {
            excluded += 1;
        } else {
            m_ok += usize::from(m == truth);
            a_ok += usize::from(a == truth);
        }
        scenarios.push(Scenario {
            rows_s1: rows,
            truth,
            morpheus: m,
            amalur: a,
            speedup: measured.speedup(),
            near_tie,
        });
    }
    let scored = ladder.len() - excluded;
    // With every scenario inside the noise band there is no evidence of
    // error against either model.
    let frac = |ok: usize| {
        if scored == 0 {
            1.0
        } else {
            ok as f64 / scored as f64
        }
    };
    QuadrantResult {
        source_redundancy,
        target_redundancy,
        morpheus_correct: frac(m_ok),
        amalur_correct: frac(a_ok),
        excluded,
        scenarios,
    }
}

/// One Figure 5 grid point: a configuration at the given tuple and
/// feature ratios, with its measured speedup and the models' calls.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Tuple ratio (r_S1 / r_S2; fan-out of the dimension table).
    pub tuple_ratio: usize,
    /// Feature ratio (c_S2 / c_S1).
    pub feature_ratio: f64,
    /// Measured factorization speedup (>1 ⇒ factorize wins).
    pub speedup: f64,
    /// Measured ground truth.
    pub truth: Decision,
    /// Morpheus' call.
    pub morpheus: Decision,
    /// Amalur's call.
    pub amalur: Decision,
}

/// Sweeps the (tuple ratio × feature ratio) plane of Figure 5. `amalur`
/// carries the (ideally calibrated) profile.
pub fn figure5_sweep(
    rows_s1: usize,
    tuple_ratios: &[usize],
    feature_ratios: &[usize],
    workload: &TrainingWorkload,
    amalur: &AmalurCostModel,
) -> Vec<GridPoint> {
    let morpheus = MorpheusHeuristic::default();
    let cols_s1 = 2usize;
    let mut out = Vec::with_capacity(tuple_ratios.len() * feature_ratios.len());
    for &tr in tuple_ratios {
        for &fr in feature_ratios {
            let spec = TwoSourceSpec {
                rows_s1,
                cols_s1,
                rows_s2: (rows_s1 / tr).max(1),
                cols_s2: (cols_s1 * fr).max(1),
                shared_cols: 0,
                target_redundancy: tr > 1,
                row_coverage: 1.0,
                source_redundancy: false,
                seed: (tr * 1000 + fr) as u64,
            };
            let (md, data) = generate_two_source(&spec).expect("valid sweep spec");
            let ft =
                FactorizedTable::new(md, data).expect("generator produces consistent metadata");
            let features = CostFeatures::from_table(&ft);
            let measured: Measurement = measure_strategies(&ft, workload);
            out.push(GridPoint {
                tuple_ratio: tr,
                feature_ratio: fr as f64,
                speedup: measured.speedup(),
                truth: measured.ground_truth(),
                morpheus: morpheus.decide(&features, workload),
                amalur: amalur.decide(&features, workload),
            });
        }
    }
    out
}

/// Formats a decision as a single map character: `F` = factorize wins,
/// `m` = materialize wins.
pub fn decision_char(d: Decision) -> char {
    match d {
        Decision::Factorize => 'F',
        Decision::Materialize => 'm',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote3_table_shapes() {
        let ft = footnote3_table(500, true, false, 1);
        assert_eq!(ft.target_shape(), (500, 101));
        let ft = footnote3_table(500, false, false, 1);
        assert_eq!(ft.target_shape(), (100, 101)); // inner 1:1 shrinks
    }

    #[test]
    fn quadrant_runner_scores_models() {
        let workload = TrainingWorkload {
            epochs: 4,
            x_cols: 1,
        };
        let amalur = AmalurCostModel::default();
        let q = run_quadrant(&[100, 1000], true, false, &workload, &amalur);
        assert_eq!(q.scenarios.len(), 2);
        assert!(q.excluded <= 2);
        assert!((0.0..=1.0).contains(&q.morpheus_correct));
        assert!((0.0..=1.0).contains(&q.amalur_correct));
        // Excluded scenarios are exactly the near-tie-flagged ones.
        assert_eq!(
            q.scenarios.iter().filter(|s| s.near_tie).count(),
            q.excluded
        );
    }

    #[test]
    fn fully_excluded_quadrant_scores_perfect() {
        // Degenerate 1-row configurations time as near-ties or not — but
        // the accounting identity must hold either way: scored + excluded
        // = scenarios, and an all-excluded quadrant scores 1.0.
        let workload = TrainingWorkload {
            epochs: 1,
            x_cols: 1,
        };
        let amalur = AmalurCostModel::default();
        let q = run_quadrant(&[10], true, false, &workload, &amalur);
        if q.excluded == 1 {
            assert_eq!(q.morpheus_correct, 1.0);
            assert_eq!(q.amalur_correct, 1.0);
        }
    }

    #[test]
    fn figure5_sweep_covers_grid() {
        let workload = TrainingWorkload {
            epochs: 2,
            x_cols: 1,
        };
        let amalur = AmalurCostModel::default();
        let grid = figure5_sweep(500, &[1, 8], &[1, 8], &workload, &amalur);
        assert_eq!(grid.len(), 4);
        assert!(grid.iter().all(|g| g.speedup > 0.0));
    }

    #[test]
    fn decision_chars() {
        assert_eq!(decision_char(Decision::Factorize), 'F');
        assert_eq!(decision_char(Decision::Materialize), 'm');
    }
}
