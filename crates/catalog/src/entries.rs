//! Catalog entry types.

use amalur_integration::{DiMetadata, ScenarioKind, Tgd};
use amalur_relational::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Basic metadata of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldMeta {
    /// Column name.
    pub name: String,
    /// Data type name (`Int64`, `Float64`, `Utf8`, `Bool`).
    pub dtype: String,
    /// Whether NULLs are permitted.
    pub nullable: bool,
    /// Observed NULL ratio in the registered data.
    pub null_ratio: f64,
}

/// Basic metadata of a registered source (§II-A: "source table schema,
/// data types, integrity constraints, data provenance information such
/// as silo location").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceEntry {
    /// Source table name (catalog key).
    pub name: String,
    /// Where the silo lives (URI, department name, …).
    pub silo_location: String,
    /// Column descriptors.
    pub schema: Vec<FieldMeta>,
    /// Number of rows at registration time.
    pub num_rows: usize,
    /// Declared integrity constraints, free-form.
    pub integrity_constraints: Vec<String>,
}

impl SourceEntry {
    /// Extracts the catalog entry from a table.
    pub fn from_table(table: &Table, silo_location: impl Into<String>) -> Self {
        let schema = table
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| FieldMeta {
                name: f.name.clone(),
                dtype: f.dtype.name().to_owned(),
                nullable: f.nullable,
                null_ratio: table.column(i).null_ratio(),
            })
            .collect();
        Self {
            name: table.name().to_owned(),
            silo_location: silo_location.into(),
            schema,
            num_rows: table.num_rows(),
            integrity_constraints: Vec::new(),
        }
    }
}

/// DI metadata of one integration task: which sources, which scenario,
/// the mediated schema, the compressed mapping/indicator vectors and the
/// defining tgds (§II-A: "column relationships from schema matching and
/// row matching from entity resolution").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiEntry {
    /// Integration id (catalog key).
    pub id: String,
    /// Scenario name (`full outer join`, `inner join`, …).
    pub scenario: String,
    /// Participating source names, base table first.
    pub sources: Vec<String>,
    /// Mediated schema columns.
    pub target_columns: Vec<String>,
    /// Target row count.
    pub target_rows: usize,
    /// Per-source compressed mapping vectors `CMₖ`.
    pub mappings: Vec<Vec<i64>>,
    /// Per-source compressed indicator vectors `CIₖ`.
    pub indicators: Vec<Vec<i64>>,
    /// Per-source redundant-cell counts (`Rₖ` zero counts).
    pub redundant_cells: Vec<usize>,
    /// The schema mappings in the paper's textual tgd notation.
    pub tgds: Vec<String>,
}

impl DiEntry {
    /// Builds the entry from planner output.
    pub fn from_metadata(
        id: impl Into<String>,
        scenario: ScenarioKind,
        metadata: &DiMetadata,
        tgds: &[Tgd],
    ) -> Self {
        Self {
            id: id.into(),
            scenario: scenario.to_string(),
            sources: metadata.sources.iter().map(|s| s.name.clone()).collect(),
            target_columns: metadata.target_columns.clone(),
            target_rows: metadata.target_rows,
            mappings: metadata
                .sources
                .iter()
                .map(|s| s.mapping.compressed().to_vec())
                .collect(),
            indicators: metadata
                .sources
                .iter()
                .map(|s| s.indicator.compressed().to_vec())
                .collect(),
            redundant_cells: metadata
                .sources
                .iter()
                .map(|s| s.redundancy.zero_count())
                .collect(),
            tgds: tgds.iter().map(ToString::to_string).collect(),
        }
    }
}

/// Model metadata (§II-A: "model execution environment, configurations
/// (e.g., hyper-parameters), input/output, evaluation performance").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Model name (catalog key).
    pub name: String,
    /// Model family (`linear_regression`, `logistic_regression`, …).
    pub model_type: String,
    /// Execution environment descriptor (e.g. `amalur-native`).
    pub environment: String,
    /// Execution strategy used (`factorized`, `materialized`, `federated`).
    pub strategy: String,
    /// Hyper-parameters (rendered as strings for uniformity).
    pub hyperparameters: BTreeMap<String, String>,
    /// Evaluation metrics (accuracy, mse, …).
    pub metrics: BTreeMap<String, f64>,
    /// Lineage: ids of the datasets/integrations this model trained on.
    pub trained_on: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_relational::{DataType, TableBuilder, Value};

    #[test]
    fn source_entry_from_table() {
        let t = TableBuilder::new(
            "patients",
            &[("id", DataType::Int64), ("name", DataType::Utf8)],
        )
        .unwrap()
        .row(vec![1.into(), Value::Null])
        .unwrap()
        .build();
        let e = SourceEntry::from_table(&t, "er-department");
        assert_eq!(e.name, "patients");
        assert_eq!(e.silo_location, "er-department");
        assert_eq!(e.num_rows, 1);
        assert_eq!(e.schema.len(), 2);
        assert_eq!(e.schema[0].dtype, "Int64");
        assert_eq!(e.schema[1].null_ratio, 1.0);
    }

    #[test]
    fn source_entry_json_roundtrip() {
        let t = TableBuilder::new("t", &[("x", DataType::Float64)])
            .unwrap()
            .build();
        let e = SourceEntry::from_table(&t, "lab");
        let json = serde_json::to_string(&e).unwrap();
        let back: SourceEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn model_entry_json_roundtrip() {
        let mut hp = BTreeMap::new();
        hp.insert("learning_rate".to_owned(), "0.1".to_owned());
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".to_owned(), 0.93);
        let e = ModelEntry {
            name: "mortality-clf".into(),
            model_type: "logistic_regression".into(),
            environment: "amalur-native".into(),
            strategy: "factorized".into(),
            hyperparameters: hp,
            metrics,
            trained_on: vec!["hospital-join".into()],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: ModelEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
