//! Error type for catalog operations.

use std::fmt;

/// Convenience alias for catalog results.
pub type Result<T> = std::result::Result<T, CatalogError>;

/// Errors produced by the metadata catalog.
#[derive(Debug)]
pub enum CatalogError {
    /// An entry with this key already exists.
    AlreadyExists(String),
    /// No entry with this key.
    NotFound(String),
    /// Persistence I/O failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::AlreadyExists(k) => write!(f, "entry already exists: {k}"),
            CatalogError::NotFound(k) => write!(f, "entry not found: {k}"),
            CatalogError::Io(e) => write!(f, "io error: {e}"),
            CatalogError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

impl From<serde_json::Error> for CatalogError {
    fn from(e: serde_json::Error) -> Self {
        CatalogError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CatalogError::NotFound("x".into()).to_string().contains("x"));
        assert!(CatalogError::AlreadyExists("y".into())
            .to_string()
            .contains("already"));
    }
}
