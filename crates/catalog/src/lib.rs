//! The hybrid metadata catalog (§II-A).
//!
//! "One of the fundamental components of Amalur is the metadata catalog.
//! It stores the metadata of data and ML models": basic source metadata
//! (schema, types, provenance, silo location), DI metadata (column and
//! row relationships discovered by schema matching and entity
//! resolution), model metadata (hyper-parameters, metrics, environment)
//! and the lineage between models and the datasets they were trained on.
//!
//! The catalog is thread-safe (`parking_lot::RwLock` — many readers, the
//! optimizer and executors query it concurrently) and persists to JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entries;
mod error;
mod registry;
mod store;

pub use entries::{DiEntry, FieldMeta, ModelEntry, SourceEntry};
pub use error::{CatalogError, Result};
pub use registry::{DatasetRegistry, DatasetStatus, DatasetVersion};
pub use store::MetadataCatalog;
