//! Versioned, shared-ownership dataset registry for the serving layer.
//!
//! The metadata catalog ([`crate::MetadataCatalog`]) stores *metadata*
//! and persists to JSON. A long-lived server additionally needs to own
//! the *data itself* — factorized tables workers read concurrently — so
//! [`DatasetRegistry`] keeps each published version behind an
//! `Arc<T>`:
//!
//! * fetching never clones the data, only bumps a reference count;
//! * publishing a new version never disturbs in-flight requests that
//!   hold the previous `Arc` (readers keep the exact version they
//!   started with);
//! * `Arc` identity is stable: two fetches of the same version return
//!   pointers to the same allocation, which the concurrency stress
//!   tests assert via [`std::sync::Arc::ptr_eq`].
//!
//! The registry is generic over the payload so this crate stays free of
//! a dependency on `amalur-factorize`; `amalur-serve` instantiates it
//! as `DatasetRegistry<FactorizedTable>`.

use crate::{CatalogError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lifecycle state of a registered dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetStatus {
    /// Accepting requests.
    Active,
    /// Unpublished: fetches fail, existing `Arc` holders are unaffected.
    Retired,
}

/// One published version of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetVersion<T> {
    /// 1-based version number (monotonically increasing per name).
    pub version: u64,
    /// Shared handle to the immutable payload.
    pub data: Arc<T>,
}

struct Entry<T> {
    status: DatasetStatus,
    versions: Vec<Arc<T>>, // index i holds version i+1
}

/// Thread-safe name → versioned `Arc<T>` map (see module docs).
pub struct DatasetRegistry<T> {
    entries: RwLock<BTreeMap<String, Entry<T>>>,
}

impl<T> Default for DatasetRegistry<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DatasetRegistry<T> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    /// Registers a new dataset under `name` as version 1.
    ///
    /// # Errors
    /// [`CatalogError::AlreadyExists`] when the name is taken (use
    /// [`Self::publish`] to add a version to an existing dataset).
    pub fn register(&self, name: &str, data: T) -> Result<DatasetVersion<T>> {
        let mut entries = self.entries.write();
        if entries.contains_key(name) {
            return Err(CatalogError::AlreadyExists(name.to_owned()));
        }
        let data = Arc::new(data);
        entries.insert(
            name.to_owned(),
            Entry {
                status: DatasetStatus::Active,
                versions: vec![Arc::clone(&data)],
            },
        );
        Ok(DatasetVersion { version: 1, data })
    }

    /// Publishes a new version of an existing dataset and returns it.
    /// Holders of older versions are unaffected. Publishing to a retired
    /// dataset re-activates it.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`] when the name was never registered.
    pub fn publish(&self, name: &str, data: T) -> Result<DatasetVersion<T>> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))?;
        let data = Arc::new(data);
        entry.versions.push(Arc::clone(&data));
        entry.status = DatasetStatus::Active;
        Ok(DatasetVersion {
            version: entry.versions.len() as u64,
            data,
        })
    }

    /// Fetches the latest version of an active dataset without cloning
    /// the payload.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`] when the name is unknown **or** the
    /// dataset is retired.
    pub fn fetch(&self, name: &str) -> Result<DatasetVersion<T>> {
        let entries = self.entries.read();
        let entry = entries
            .get(name)
            .filter(|e| e.status == DatasetStatus::Active)
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))?;
        // Entries always hold >= 1 version (enforced at registration);
        // treat a violated invariant as the dataset being unavailable.
        let data = entry
            .versions
            .last()
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))?;
        Ok(DatasetVersion {
            version: entry.versions.len() as u64,
            data: Arc::clone(data),
        })
    }

    /// Fetches a specific historical version (1-based). Works on retired
    /// datasets too — in-flight work pinned to a version must be able to
    /// re-resolve it.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`] for unknown names or versions.
    pub fn fetch_version(&self, name: &str, version: u64) -> Result<DatasetVersion<T>> {
        let entries = self.entries.read();
        let entry = entries
            .get(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))?;
        let data = version
            .checked_sub(1)
            .and_then(|i| entry.versions.get(i as usize))
            .ok_or_else(|| CatalogError::NotFound(format!("{name}@v{version}")))?;
        Ok(DatasetVersion {
            version,
            data: Arc::clone(data),
        })
    }

    /// Retires a dataset: subsequent [`Self::fetch`]es fail, existing
    /// `Arc` holders and [`Self::fetch_version`] keep working.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`] for unknown names.
    pub fn retire(&self, name: &str) -> Result<()> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))?;
        entry.status = DatasetStatus::Retired;
        Ok(())
    }

    /// Lifecycle status of a dataset.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`] for unknown names.
    pub fn status(&self, name: &str) -> Result<DatasetStatus> {
        let entries = self.entries.read();
        entries
            .get(name)
            .map(|e| e.status)
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))
    }

    /// Latest version number of a dataset (independent of status).
    ///
    /// # Errors
    /// [`CatalogError::NotFound`] for unknown names.
    pub fn latest_version(&self, name: &str) -> Result<u64> {
        let entries = self.entries.read();
        entries
            .get(name)
            .map(|e| e.versions.len() as u64)
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))
    }

    /// Sorted names of all datasets, active and retired.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_fetch_roundtrip_shares_the_allocation() {
        let reg = DatasetRegistry::new();
        let v1 = reg.register("hospital", vec![1.0, 2.0]).unwrap();
        assert_eq!(v1.version, 1);
        let fetched = reg.fetch("hospital").unwrap();
        assert_eq!(fetched.version, 1);
        assert!(Arc::ptr_eq(&v1.data, &fetched.data));
        assert!(matches!(
            reg.register("hospital", vec![]),
            Err(CatalogError::AlreadyExists(_))
        ));
    }

    #[test]
    fn publish_bumps_version_and_keeps_old_arcs_alive() {
        let reg = DatasetRegistry::new();
        reg.register("d", 10u32).unwrap();
        let old = reg.fetch("d").unwrap();
        let v2 = reg.publish("d", 20u32).unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(*old.data, 10); // in-flight holder unaffected
        assert_eq!(*reg.fetch("d").unwrap().data, 20);
        // Historical fetch returns the same allocation the holder has.
        let hist = reg.fetch_version("d", 1).unwrap();
        assert!(Arc::ptr_eq(&old.data, &hist.data));
        assert_eq!(reg.latest_version("d").unwrap(), 2);
        assert!(matches!(
            reg.fetch_version("d", 3),
            Err(CatalogError::NotFound(_))
        ));
        assert!(matches!(
            reg.fetch_version("d", 0),
            Err(CatalogError::NotFound(_))
        ));
    }

    #[test]
    fn retire_blocks_fetch_but_not_pinned_versions() {
        let reg = DatasetRegistry::new();
        reg.register("d", 1u8).unwrap();
        reg.retire("d").unwrap();
        assert_eq!(reg.status("d").unwrap(), DatasetStatus::Retired);
        assert!(reg.fetch("d").is_err());
        assert!(reg.fetch_version("d", 1).is_ok());
        // Publishing re-activates.
        reg.publish("d", 2u8).unwrap();
        assert_eq!(reg.status("d").unwrap(), DatasetStatus::Active);
        assert_eq!(*reg.fetch("d").unwrap().data, 2);
    }

    #[test]
    fn unknown_names_error() {
        let reg: DatasetRegistry<()> = DatasetRegistry::new();
        assert!(reg.fetch("nope").is_err());
        assert!(reg.publish("nope", ()).is_err());
        assert!(reg.retire("nope").is_err());
        assert!(reg.status("nope").is_err());
        assert!(reg.latest_version("nope").is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn names_are_sorted() {
        let reg = DatasetRegistry::new();
        for n in ["zeta", "alpha", "mid"] {
            reg.register(n, 0u8).unwrap();
        }
        assert_eq!(reg.names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(reg.len(), 3);
    }
}
