//! The thread-safe catalog store with JSON persistence.

use crate::entries::{DiEntry, ModelEntry, SourceEntry};
use crate::{CatalogError, Result};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;

/// The serializable catalog state.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct State {
    sources: BTreeMap<String, SourceEntry>,
    integrations: BTreeMap<String, DiEntry>,
    models: BTreeMap<String, ModelEntry>,
}

/// Amalur's hybrid metadata catalog (§II-A). All operations are
/// thread-safe; reads never block each other.
#[derive(Debug, Default)]
pub struct MetadataCatalog {
    state: RwLock<State>,
}

impl MetadataCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    // --- sources -----------------------------------------------------------

    /// Registers a source; errors if the name is taken.
    ///
    /// # Errors
    /// [`CatalogError::AlreadyExists`].
    pub fn register_source(&self, entry: SourceEntry) -> Result<()> {
        let mut s = self.state.write();
        if s.sources.contains_key(&entry.name) {
            return Err(CatalogError::AlreadyExists(entry.name));
        }
        s.sources.insert(entry.name.clone(), entry);
        Ok(())
    }

    /// Fetches a source entry.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`].
    pub fn source(&self, name: &str) -> Result<SourceEntry> {
        self.state
            .read()
            .sources
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))
    }

    /// All registered source names.
    pub fn source_names(&self) -> Vec<String> {
        self.state.read().sources.keys().cloned().collect()
    }

    /// Removes a source.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`].
    pub fn remove_source(&self, name: &str) -> Result<()> {
        self.state
            .write()
            .sources
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))
    }

    // --- integrations --------------------------------------------------------

    /// Registers DI metadata for an integration task.
    ///
    /// # Errors
    /// [`CatalogError::AlreadyExists`].
    pub fn register_integration(&self, entry: DiEntry) -> Result<()> {
        let mut s = self.state.write();
        if s.integrations.contains_key(&entry.id) {
            return Err(CatalogError::AlreadyExists(entry.id));
        }
        s.integrations.insert(entry.id.clone(), entry);
        Ok(())
    }

    /// Fetches an integration entry.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`].
    pub fn integration(&self, id: &str) -> Result<DiEntry> {
        self.state
            .read()
            .integrations
            .get(id)
            .cloned()
            .ok_or_else(|| CatalogError::NotFound(id.to_owned()))
    }

    /// All integration ids.
    pub fn integration_ids(&self) -> Vec<String> {
        self.state.read().integrations.keys().cloned().collect()
    }

    // --- models --------------------------------------------------------------

    /// Registers a trained model.
    ///
    /// # Errors
    /// [`CatalogError::AlreadyExists`].
    pub fn register_model(&self, entry: ModelEntry) -> Result<()> {
        let mut s = self.state.write();
        if s.models.contains_key(&entry.name) {
            return Err(CatalogError::AlreadyExists(entry.name));
        }
        s.models.insert(entry.name.clone(), entry);
        Ok(())
    }

    /// Fetches a model entry.
    ///
    /// # Errors
    /// [`CatalogError::NotFound`].
    pub fn model(&self, name: &str) -> Result<ModelEntry> {
        self.state
            .read()
            .models
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))
    }

    /// All model names.
    pub fn model_names(&self) -> Vec<String> {
        self.state.read().models.keys().cloned().collect()
    }

    /// Lineage query: the models trained on the given dataset or
    /// integration id ("the metadata catalog also keeps track of the
    /// connections between the model and its training datasets").
    pub fn models_trained_on(&self, dataset_id: &str) -> Vec<String> {
        self.state
            .read()
            .models
            .values()
            .filter(|m| m.trained_on.iter().any(|d| d == dataset_id))
            .map(|m| m.name.clone())
            .collect()
    }

    // --- persistence ----------------------------------------------------------

    /// Serializes the catalog to pretty JSON.
    ///
    /// # Errors
    /// [`CatalogError::Serde`].
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(&*self.state.read())?)
    }

    /// Loads a catalog from JSON.
    ///
    /// # Errors
    /// [`CatalogError::Serde`].
    pub fn from_json(json: &str) -> Result<Self> {
        let state: State = serde_json::from_str(json)?;
        Ok(Self {
            state: RwLock::new(state),
        })
    }

    /// Saves to a file.
    ///
    /// # Errors
    /// [`CatalogError::Io`] / [`CatalogError::Serde`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        w.write_all(self.to_json()?.as_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// [`CatalogError::Io`] / [`CatalogError::Serde`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_source(name: &str) -> SourceEntry {
        SourceEntry {
            name: name.to_owned(),
            silo_location: "er".into(),
            schema: Vec::new(),
            num_rows: 4,
            integrity_constraints: vec!["PRIMARY KEY (n)".into()],
        }
    }

    fn sample_model(name: &str, trained_on: &str) -> ModelEntry {
        ModelEntry {
            name: name.to_owned(),
            model_type: "linreg".into(),
            environment: "native".into(),
            strategy: "factorized".into(),
            hyperparameters: BTreeMap::new(),
            metrics: BTreeMap::new(),
            trained_on: vec![trained_on.to_owned()],
        }
    }

    #[test]
    fn source_crud() {
        let c = MetadataCatalog::new();
        c.register_source(sample_source("S1")).unwrap();
        assert!(matches!(
            c.register_source(sample_source("S1")).unwrap_err(),
            CatalogError::AlreadyExists(_)
        ));
        assert_eq!(c.source("S1").unwrap().num_rows, 4);
        assert!(c.source("S2").is_err());
        assert_eq!(c.source_names(), vec!["S1"]);
        c.remove_source("S1").unwrap();
        assert!(c.remove_source("S1").is_err());
    }

    #[test]
    fn lineage_queries() {
        let c = MetadataCatalog::new();
        c.register_model(sample_model("m1", "hospital-join"))
            .unwrap();
        c.register_model(sample_model("m2", "hospital-join"))
            .unwrap();
        c.register_model(sample_model("m3", "other")).unwrap();
        let mut models = c.models_trained_on("hospital-join");
        models.sort();
        assert_eq!(models, vec!["m1", "m2"]);
        assert!(c.models_trained_on("nothing").is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let c = MetadataCatalog::new();
        c.register_source(sample_source("S1")).unwrap();
        c.register_model(sample_model("m1", "S1")).unwrap();
        let json = c.to_json().unwrap();
        let back = MetadataCatalog::from_json(&json).unwrap();
        assert_eq!(back.source("S1").unwrap().integrity_constraints.len(), 1);
        assert_eq!(back.model("m1").unwrap().model_type, "linreg");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("amalur_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        let c = MetadataCatalog::new();
        c.register_source(sample_source("S1")).unwrap();
        c.save(&path).unwrap();
        let back = MetadataCatalog::load(&path).unwrap();
        assert_eq!(back.source_names(), vec!["S1"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(MetadataCatalog::from_json("not json").is_err());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let c = std::sync::Arc::new(MetadataCatalog::new());
        std::thread::scope(|s| {
            for i in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    c.register_source(sample_source(&format!("S{i}"))).unwrap();
                    for _ in 0..100 {
                        let _ = c.source_names();
                    }
                });
            }
        });
        assert_eq!(c.source_names().len(), 8);
    }
}
