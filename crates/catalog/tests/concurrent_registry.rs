//! Concurrency stress tests for [`DatasetRegistry`]: many threads
//! registering, publishing and fetching must never lose an update, and
//! `Arc` identity for a given (name, version) must stay stable.

use amalur_catalog::{CatalogError, DatasetRegistry};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_registration_admits_exactly_one_winner_per_name() {
    let reg = Arc::new(DatasetRegistry::new());
    let threads = 8;
    let names = 16;
    let mut handles = Vec::new();
    for t in 0..threads {
        let reg = Arc::clone(&reg);
        handles.push(thread::spawn(move || {
            let mut wins = 0usize;
            for n in 0..names {
                match reg.register(&format!("ds-{n}"), t) {
                    Ok(v) => {
                        assert_eq!(v.version, 1);
                        wins += 1;
                    }
                    Err(CatalogError::AlreadyExists(_)) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            wins
        }));
    }
    let total_wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // Every name registered exactly once across all racing threads.
    assert_eq!(total_wins, names);
    assert_eq!(reg.len(), names);
    for n in 0..names {
        assert_eq!(reg.latest_version(&format!("ds-{n}")).unwrap(), 1);
    }
}

#[test]
fn concurrent_publishes_lose_no_updates() {
    let reg = Arc::new(DatasetRegistry::new());
    reg.register("shared", 0usize).unwrap();
    let threads = 8;
    let publishes_per_thread = 50;
    let mut handles = Vec::new();
    for t in 0..threads {
        let reg = Arc::clone(&reg);
        handles.push(thread::spawn(move || {
            let mut seen_versions = Vec::with_capacity(publishes_per_thread);
            for i in 0..publishes_per_thread {
                let v = reg.publish("shared", t * publishes_per_thread + i).unwrap();
                seen_versions.push(v.version);
                // A fetch between publishes must observe a version at
                // least as new as the one we just created.
                let fetched = reg.fetch("shared").unwrap();
                assert!(fetched.version >= v.version);
            }
            seen_versions
        }));
    }
    let mut all_versions: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all_versions.sort_unstable();
    // No lost updates: N threads × M publishes on top of v1 yields
    // exactly versions 2..=N*M+1, each observed by exactly one publisher.
    let expected: Vec<u64> = (2..=(threads * publishes_per_thread) as u64 + 1).collect();
    assert_eq!(all_versions, expected);
    assert_eq!(
        reg.latest_version("shared").unwrap(),
        (threads * publishes_per_thread) as u64 + 1
    );
}

#[test]
fn fetched_arcs_are_identity_stable_under_concurrent_readers() {
    let reg = Arc::new(DatasetRegistry::new());
    let reference = reg.register("pinned", vec![42.0f64; 64]).unwrap();
    let threads = 8;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let reg = Arc::clone(&reg);
        let reference = Arc::clone(&reference.data);
        handles.push(thread::spawn(move || {
            for _ in 0..200 {
                let fetched = reg.fetch("pinned").unwrap();
                // Same allocation every time — fetch shares, never clones.
                assert!(Arc::ptr_eq(&fetched.data, &reference));
                let pinned = reg.fetch_version("pinned", 1).unwrap();
                assert!(Arc::ptr_eq(&pinned.data, &reference));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn readers_race_with_publishers_and_always_see_a_consistent_version() {
    let reg = Arc::new(DatasetRegistry::new());
    reg.register("hot", vec![1u64]).unwrap();
    let writer = {
        let reg = Arc::clone(&reg);
        thread::spawn(move || {
            for i in 2..=100u64 {
                // Payload records its own version so readers can check
                // that version number and payload never tear.
                reg.publish("hot", vec![i]).unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let reg = Arc::clone(&reg);
        readers.push(thread::spawn(move || {
            let mut last_seen = 0u64;
            for _ in 0..500 {
                let v = reg.fetch("hot").unwrap();
                assert_eq!(v.data[0], v.version, "version/payload tear");
                assert!(v.version >= last_seen, "version went backwards");
                last_seen = v.version;
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(reg.latest_version("hot").unwrap(), 100);
    assert_eq!(reg.fetch("hot").unwrap().data[0], 100);
}
