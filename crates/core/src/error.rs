//! Error type for the system facade.

use std::fmt;

/// Convenience alias for facade results.
pub type Result<T> = std::result::Result<T, AmalurError>;

/// Errors produced by the Amalur facade (wrapping every subsystem).
#[derive(Debug)]
pub enum AmalurError {
    /// A referenced silo is not registered.
    UnknownSilo(String),
    /// A referenced integration handle is stale or unknown.
    UnknownIntegration(String),
    /// Invalid request (e.g. label column not in the target schema).
    Invalid(String),
    /// Integration subsystem error.
    Integration(amalur_integration::IntegrationError),
    /// Factorized computation error.
    Factorize(amalur_factorize::FactorizeError),
    /// ML training error.
    Ml(amalur_ml::MlError),
    /// Federated training error.
    Federated(amalur_federated::FederatedError),
    /// Catalog error.
    Catalog(amalur_catalog::CatalogError),
    /// Relational error.
    Relational(amalur_relational::RelationalError),
}

impl fmt::Display for AmalurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmalurError::UnknownSilo(n) => write!(f, "unknown silo: {n}"),
            AmalurError::UnknownIntegration(n) => write!(f, "unknown integration: {n}"),
            AmalurError::Invalid(m) => write!(f, "invalid request: {m}"),
            AmalurError::Integration(e) => write!(f, "integration: {e}"),
            AmalurError::Factorize(e) => write!(f, "factorize: {e}"),
            AmalurError::Ml(e) => write!(f, "ml: {e}"),
            AmalurError::Federated(e) => write!(f, "federated: {e}"),
            AmalurError::Catalog(e) => write!(f, "catalog: {e}"),
            AmalurError::Relational(e) => write!(f, "relational: {e}"),
        }
    }
}

impl std::error::Error for AmalurError {}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for AmalurError {
            fn from(e: $ty) -> Self {
                AmalurError::$variant(e)
            }
        }
    };
}

impl_from!(Integration, amalur_integration::IntegrationError);
impl_from!(Factorize, amalur_factorize::FactorizeError);
impl_from!(Ml, amalur_ml::MlError);
impl_from!(Federated, amalur_federated::FederatedError);
impl_from!(Catalog, amalur_catalog::CatalogError);
impl_from!(Relational, amalur_relational::RelationalError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AmalurError = amalur_ml::MlError::NotFitted.into();
        assert!(e.to_string().contains("ml"));
        let e: AmalurError = amalur_relational::RelationalError::UnknownColumn("c".into()).into();
        assert!(matches!(e, AmalurError::Relational(_)));
        assert!(AmalurError::UnknownSilo("s".into())
            .to_string()
            .contains("s"));
    }
}
