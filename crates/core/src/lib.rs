//! The Amalur system facade — Figure 3 as an API.
//!
//! ```text
//! user inputs (model, constraints)          data sources S1 … Sn
//!          │                                        │
//!          ▼                                        ▼
//!   ┌─────────────────────────  Amalur  ─────────────────────────┐
//!   │ metadata management: schema matching, entity resolution,   │
//!   │ DI metadata → hybrid metadata catalog                      │
//!   │ optimization: factorization / materialization / federated  │
//!   │ execution: factorized rewrites, joins, FL orchestration    │
//!   └─────────────────────────────────────────────────────────────┘
//!                                │
//!                                ▼
//!                        trained ML model
//! ```
//!
//! [`Amalur`] owns the registered silos and the [`MetadataCatalog`];
//! [`Amalur::integrate`] runs the DI pipeline of
//! [`amalur_integration::integrate_pair`] and records the resulting
//! metadata; [`Amalur::plan`] is the optimizer (§II-A: privacy
//! constraints force federated learning, otherwise the cost model picks
//! factorization or materialization); `Amalur::train_*` execute the
//! plan and register the trained model with its lineage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod system;

pub use error::{AmalurError, Result};
pub use system::{
    Amalur, Constraints, ExecutionPlan, FederatedModel, IntegrationHandle, TrainedModel,
    TrainingConfig,
};

pub use amalur_catalog::MetadataCatalog;
pub use amalur_cost::{Decision, TrainingWorkload};
pub use amalur_factorize::{FactorizedTable, LinOps, Strategy};
pub use amalur_federated::{CommStats, FaultPlan, FederatedError, PrivacyMode};
pub use amalur_integration::{IntegrationOptions, ScenarioKind};
