//! The `Amalur` system type: registration → integration → optimization →
//! execution → catalog bookkeeping.

use crate::{AmalurError, Result};
use amalur_catalog::{DiEntry, MetadataCatalog, ModelEntry, SourceEntry};
use amalur_cost::{
    AmalurCostModel, CostFeatures, CostModel, Decision, HardwareProfile, TrainingWorkload,
};
use amalur_factorize::FactorizedTable;
use amalur_federated::hfl::PartySamples;
use amalur_federated::{
    party_views, train_vfl, CommStats, FaultPlan, FaultyTransport, HflConfig, PrivacyMode,
    VflConfig,
};
use amalur_integration::{integrate_pair, IntegrationOptions, ScenarioKind};
use amalur_matrix::DenseMatrix;
use amalur_ml::{LinRegConfig, LinearRegression, LogRegConfig, LogisticRegression};
use amalur_relational::Table;
use std::collections::BTreeMap;

/// User constraints attached to a training request (§II-A "there might
/// also be constraints specific to a user and silos, e.g., data privacy
/// regulations such as GDPR").
#[derive(Debug, Clone, Copy, Default)]
pub struct Constraints {
    /// Data may not leave its silo — forces the federated path.
    pub privacy_required: bool,
    /// Wire protection when the federated path is taken.
    pub privacy_mode: Option<PrivacyMode>,
}

/// The optimizer's chosen execution plan (§II-A, "Optimization and
/// coordination": factorization, materialization, or federated learning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPlan {
    /// Push the model down to the silos via the Eq. 2 rewrites.
    Factorize,
    /// Join the silos and train on the materialized target table.
    Materialize,
    /// Split the learning process across silos.
    Federated(PrivacyMode),
}

impl std::fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionPlan::Factorize => write!(f, "factorized"),
            ExecutionPlan::Materialize => write!(f, "materialized"),
            ExecutionPlan::Federated(m) => write!(f, "federated({m})"),
        }
    }
}

/// Handle to a completed integration: the factorized table plus its
/// catalog id.
#[derive(Debug, Clone)]
pub struct IntegrationHandle {
    /// Catalog id of the DI metadata entry.
    pub id: String,
    /// The integrated data, kept factorized.
    pub table: FactorizedTable,
    /// The scenario that produced it.
    pub scenario: ScenarioKind,
}

/// Hyper-parameters for facade-level training.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub l2: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.1,
            l2: 0.0,
        }
    }
}

/// A trained model with its provenance.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// Catalog name of the model.
    pub name: String,
    /// Flat coefficient vector over the feature columns (concatenated
    /// per-party for federated runs).
    pub coefficients: DenseMatrix,
    /// The plan that was executed.
    pub plan: ExecutionPlan,
    /// Final training loss.
    pub final_loss: f64,
    /// Evaluation metrics recorded in the catalog.
    pub metrics: BTreeMap<String, f64>,
}

/// A model trained horizontally (FedAvg) across registered silos, with
/// the communication/fault accounting of the run.
#[derive(Debug, Clone)]
pub struct FederatedModel {
    /// Catalog name of the model.
    pub name: String,
    /// Global coefficient vector over the shared feature columns.
    pub coefficients: DenseMatrix,
    /// Final global training loss over the union of silo rows.
    pub final_loss: f64,
    /// Wire and fault accounting (retries, drops, degraded rounds, …).
    pub comm: CommStats,
    /// Evaluation metrics recorded in the catalog.
    pub metrics: BTreeMap<String, f64>,
}

/// The Amalur system: silos + catalog + optimizer + executors.
pub struct Amalur {
    catalog: MetadataCatalog,
    silos: BTreeMap<String, Table>,
    cost_model: AmalurCostModel,
    integration_counter: usize,
    model_counter: usize,
}

impl Default for Amalur {
    fn default() -> Self {
        Self::new()
    }
}

impl Amalur {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self {
            catalog: MetadataCatalog::new(),
            silos: BTreeMap::new(),
            cost_model: AmalurCostModel::default(),
            integration_counter: 0,
            model_counter: 0,
        }
    }

    /// The metadata catalog (read access for inspection and persistence).
    pub fn catalog(&self) -> &MetadataCatalog {
        &self.catalog
    }

    /// Installs a measured [`HardwareProfile`] (e.g. loaded from
    /// `COST_PROFILE.json` or freshly calibrated) into the optimizer, so
    /// [`Self::plan`] decides with this machine's real operation costs
    /// instead of the uncalibrated defaults.
    pub fn set_cost_profile(&mut self, profile: HardwareProfile) {
        self.cost_model = AmalurCostModel::with_profile(profile);
    }

    /// The optimizer's current per-operation cost profile.
    pub fn cost_profile(&self) -> HardwareProfile {
        self.cost_model.profile
    }

    /// Registers a silo's table, recording its basic metadata.
    ///
    /// # Errors
    /// [`AmalurError::Catalog`] when the name is already registered.
    pub fn register_silo(&mut self, table: Table, location: impl Into<String>) -> Result<()> {
        let entry = SourceEntry::from_table(&table, location);
        self.catalog.register_source(entry)?;
        self.silos.insert(table.name().to_owned(), table);
        Ok(())
    }

    /// A registered silo's table.
    ///
    /// # Errors
    /// [`AmalurError::UnknownSilo`].
    pub fn silo(&self, name: &str) -> Result<&Table> {
        self.silos
            .get(name)
            .ok_or_else(|| AmalurError::UnknownSilo(name.to_owned()))
    }

    /// Runs the DI pipeline over two registered silos: schema matching,
    /// entity resolution, metadata-matrix generation — and records the
    /// DI metadata in the catalog.
    ///
    /// # Errors
    /// Unknown silos or integration failures.
    pub fn integrate(
        &mut self,
        left: &str,
        right: &str,
        kind: ScenarioKind,
        opts: &IntegrationOptions,
    ) -> Result<IntegrationHandle> {
        let lt = self.silo(left)?.clone();
        let rt = self.silo(right)?.clone();
        let result = integrate_pair(&lt, &rt, kind, opts)?;
        self.integration_counter += 1;
        let id = format!("integration-{}", self.integration_counter);
        self.catalog.register_integration(DiEntry::from_metadata(
            id.clone(),
            kind,
            &result.metadata,
            &result.tgds,
        ))?;
        let table = FactorizedTable::from_integration(result)?;
        Ok(IntegrationHandle {
            id,
            table,
            scenario: kind,
        })
    }

    /// Runs the n-ary star DI pipeline: one base silo aligned with many
    /// satellites on a shared key (the §I drug-risk shape). Records the
    /// DI metadata like [`Self::integrate`].
    ///
    /// # Errors
    /// Unknown silos or integration failures.
    pub fn integrate_star(
        &mut self,
        base: &str,
        satellites: &[&str],
        kind: amalur_integration::StarKind,
        opts: &IntegrationOptions,
    ) -> Result<IntegrationHandle> {
        let base_table = self.silo(base)?.clone();
        let sat_tables: Vec<Table> = satellites
            .iter()
            .map(|s| self.silo(s).cloned())
            .collect::<Result<_>>()?;
        let sat_refs: Vec<&Table> = sat_tables.iter().collect();
        let result = amalur_integration::integrate_star(&base_table, &sat_refs, kind, opts)?;
        let scenario = result.kind;
        self.integration_counter += 1;
        let id = format!("integration-{}", self.integration_counter);
        self.catalog.register_integration(DiEntry::from_metadata(
            id.clone(),
            scenario,
            &result.metadata,
            &result.tgds,
        ))?;
        let table = FactorizedTable::from_integration(result)?;
        Ok(IntegrationHandle {
            id,
            table,
            scenario,
        })
    }

    /// The optimizer (§II-A): privacy constraints force the federated
    /// plan; otherwise the metadata-aware cost model decides between
    /// factorization and materialization.
    pub fn plan(
        &self,
        handle: &IntegrationHandle,
        workload: &TrainingWorkload,
        constraints: &Constraints,
    ) -> ExecutionPlan {
        if constraints.privacy_required {
            return ExecutionPlan::Federated(
                constraints
                    .privacy_mode
                    .unwrap_or(PrivacyMode::SecretShared),
            );
        }
        let features = CostFeatures::from_table(&handle.table);
        match self.cost_model.decide(&features, workload) {
            Decision::Factorize => ExecutionPlan::Factorize,
            Decision::Materialize => ExecutionPlan::Materialize,
        }
    }

    /// Trains a linear regression on the integrated data, executing the
    /// given plan and recording the model (with lineage) in the catalog.
    ///
    /// `label_col` indexes the target schema of the integration.
    ///
    /// # Errors
    /// Invalid label column, training failures, federated protocol
    /// failures.
    pub fn train_linear_regression(
        &mut self,
        handle: &IntegrationHandle,
        label_col: usize,
        config: &TrainingConfig,
        plan: ExecutionPlan,
    ) -> Result<TrainedModel> {
        let (features, y) = handle.table.split_label(label_col)?;
        let (coefficients, final_loss) = match plan {
            ExecutionPlan::Factorize => {
                let mut model = LinearRegression::new(self.linreg_config(config));
                model.fit(&features, &y)?;
                (
                    model
                        .coefficients()
                        .cloned()
                        .ok_or(AmalurError::Ml(amalur_ml::MlError::NotFitted))?,
                    model.loss_history().last().copied().unwrap_or(f64::NAN),
                )
            }
            ExecutionPlan::Materialize => {
                let t = features.materialize();
                let mut model = LinearRegression::new(self.linreg_config(config));
                model.fit(&t, &y)?;
                (
                    model
                        .coefficients()
                        .cloned()
                        .ok_or(AmalurError::Ml(amalur_ml::MlError::NotFitted))?,
                    model.loss_history().last().copied().unwrap_or(f64::NAN),
                )
            }
            ExecutionPlan::Federated(mode) => {
                let views = party_views(&features)?;
                let xs: Vec<DenseMatrix> = views.iter().map(|v| v.features.clone()).collect();
                let result = train_vfl(
                    &xs,
                    &y,
                    &VflConfig {
                        epochs: config.epochs,
                        learning_rate: config.learning_rate,
                        l2: config.l2,
                        privacy: mode,
                        ..VflConfig::default()
                    },
                )?;
                let mut stacked = result.coefficients[0].clone();
                for c in &result.coefficients[1..] {
                    stacked = stacked
                        .vstack(c)
                        .map_err(amalur_factorize::FactorizeError::from)?;
                }
                (
                    stacked,
                    result.loss_history.last().copied().unwrap_or(f64::NAN),
                )
            }
        };
        let mut metrics = BTreeMap::new();
        metrics.insert("final_loss".to_owned(), final_loss);
        let name =
            self.register_trained("linear_regression", handle, config, plan, metrics.clone())?;
        Ok(TrainedModel {
            name,
            coefficients,
            plan,
            final_loss,
            metrics,
        })
    }

    /// Trains a logistic regression (binary labels required), same
    /// plan-execution semantics as
    /// [`Self::train_linear_regression`]. Federated logistic regression
    /// is approximated by its linear surrogate only in the VFL protocol
    /// literature — here it is executed factorized/materialized only.
    ///
    /// # Errors
    /// Invalid labels/plan or training failure.
    pub fn train_logistic_regression(
        &mut self,
        handle: &IntegrationHandle,
        label_col: usize,
        config: &TrainingConfig,
        plan: ExecutionPlan,
    ) -> Result<TrainedModel> {
        if matches!(plan, ExecutionPlan::Federated(_)) {
            return Err(AmalurError::Invalid(
                "federated logistic regression is not part of the reproduced protocol; \
                 use linear regression or a central plan"
                    .into(),
            ));
        }
        let (features, y) = handle.table.split_label(label_col)?;
        let cfg = LogRegConfig {
            epochs: config.epochs,
            learning_rate: config.learning_rate,
            l2: config.l2,
        };
        let mut model = LogisticRegression::new(cfg);
        let (coefficients, final_loss, accuracy) = match plan {
            ExecutionPlan::Factorize => {
                model.fit(&features, &y)?;
                let pred = model.predict(&features)?;
                let acc = amalur_ml::metrics::accuracy(&pred, y.as_slice());
                (
                    model
                        .coefficients()
                        .cloned()
                        .ok_or(AmalurError::Ml(amalur_ml::MlError::NotFitted))?,
                    model.loss_history().last().copied().unwrap_or(f64::NAN),
                    acc,
                )
            }
            _ => {
                let t = features.materialize();
                model.fit(&t, &y)?;
                let pred = model.predict(&t)?;
                let acc = amalur_ml::metrics::accuracy(&pred, y.as_slice());
                (
                    model
                        .coefficients()
                        .cloned()
                        .ok_or(AmalurError::Ml(amalur_ml::MlError::NotFitted))?,
                    model.loss_history().last().copied().unwrap_or(f64::NAN),
                    acc,
                )
            }
        };
        let mut metrics = BTreeMap::new();
        metrics.insert("final_loss".to_owned(), final_loss);
        metrics.insert("train_accuracy".to_owned(), accuracy);
        let name =
            self.register_trained("logistic_regression", handle, config, plan, metrics.clone())?;
        Ok(TrainedModel {
            name,
            coefficients,
            plan,
            final_loss,
            metrics,
        })
    }

    /// Trains a linear regression *horizontally* across registered
    /// silos with FedAvg: every silo holds complete rows of the same
    /// schema (same feature columns, same label), and only model
    /// deltas cross the wire. Pass a [`FaultPlan`] to run the exchange
    /// over the deterministic unreliable transport — retries, quorum
    /// aggregation and fault accounting included; `None` uses the
    /// reliable in-process transport.
    ///
    /// `config.epochs` maps to communication rounds. The feature set
    /// is the first silo's numeric columns minus the label; every silo
    /// must provide them.
    ///
    /// # Errors
    /// Unknown silos, missing columns, non-zero `l2` (not part of the
    /// FedAvg objective here), or federated failures such as
    /// [`amalur_federated::FederatedError::QuorumLost`].
    pub fn train_fedavg(
        &mut self,
        silos: &[&str],
        label: &str,
        config: &TrainingConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<FederatedModel> {
        if config.l2 != 0.0 {
            return Err(AmalurError::Invalid(
                "l2 regularization is not part of the FedAvg objective; use l2 = 0".into(),
            ));
        }
        let mut parties = Vec::with_capacity(silos.len());
        let mut features: Vec<String> = Vec::new();
        for (i, name) in silos.iter().enumerate() {
            let table = self.silo(name)?;
            if i == 0 {
                let numeric = table.numeric_column_names();
                if !numeric.contains(&label) {
                    return Err(AmalurError::Invalid(format!(
                        "silo {name} has no numeric label column {label:?}"
                    )));
                }
                features = numeric
                    .into_iter()
                    .filter(|c| *c != label)
                    .map(str::to_owned)
                    .collect();
                if features.is_empty() {
                    return Err(AmalurError::Invalid(format!(
                        "silo {name} has no numeric feature columns besides the label"
                    )));
                }
            }
            let refs: Vec<&str> = features.iter().map(String::as_str).collect();
            let x = table.to_matrix(&refs, 0.0)?;
            let y = table.to_matrix(&[label], 0.0)?;
            parties.push(PartySamples {
                name: (*name).to_owned(),
                x,
                y,
            });
        }
        let hfl = HflConfig {
            rounds: config.epochs,
            learning_rate: config.learning_rate,
            ..HflConfig::default()
        };
        let result = match faults {
            None => amalur_federated::hfl::train_fedavg(&parties, &hfl)?,
            Some(plan) => {
                let mut transport = FaultyTransport::new(plan.clone())?;
                amalur_federated::train_fedavg_with_transport(&parties, &hfl, &mut transport)?
            }
        };
        let final_loss = result.loss_history.last().copied().unwrap_or(f64::NAN);
        let mut metrics = BTreeMap::new();
        metrics.insert("final_loss".to_owned(), final_loss);
        metrics.insert("wire_bytes".to_owned(), result.comm.total_bytes() as f64);
        metrics.insert("retries".to_owned(), result.comm.retries as f64);
        metrics.insert(
            "rounds_degraded".to_owned(),
            result.comm.rounds_degraded as f64,
        );
        metrics.insert(
            "rounds_skipped".to_owned(),
            result.comm.rounds_skipped as f64,
        );
        let strategy = if faults.is_some() {
            "fedavg(faulty-transport)"
        } else {
            "fedavg"
        };
        let trained_on = silos.iter().map(|s| (*s).to_owned()).collect();
        let name = self.register_model_entry(
            "linear_regression",
            strategy.to_owned(),
            trained_on,
            config,
            metrics.clone(),
        )?;
        Ok(FederatedModel {
            name,
            coefficients: result.global,
            final_loss,
            comm: result.comm,
            metrics,
        })
    }

    fn linreg_config(&self, config: &TrainingConfig) -> LinRegConfig {
        LinRegConfig {
            epochs: config.epochs,
            learning_rate: config.learning_rate,
            l2: config.l2,
            tolerance: 0.0,
        }
    }

    fn register_trained(
        &mut self,
        model_type: &str,
        handle: &IntegrationHandle,
        config: &TrainingConfig,
        plan: ExecutionPlan,
        metrics: BTreeMap<String, f64>,
    ) -> Result<String> {
        self.register_model_entry(
            model_type,
            plan.to_string(),
            vec![handle.id.clone()],
            config,
            metrics,
        )
    }

    fn register_model_entry(
        &mut self,
        model_type: &str,
        strategy: String,
        trained_on: Vec<String>,
        config: &TrainingConfig,
        metrics: BTreeMap<String, f64>,
    ) -> Result<String> {
        self.model_counter += 1;
        let name = format!("{model_type}-{}", self.model_counter);
        let mut hp = BTreeMap::new();
        hp.insert("epochs".to_owned(), config.epochs.to_string());
        hp.insert("learning_rate".to_owned(), config.learning_rate.to_string());
        hp.insert("l2".to_owned(), config.l2.to_string());
        self.catalog.register_model(ModelEntry {
            name: name.clone(),
            model_type: model_type.to_owned(),
            environment: "amalur-native".to_owned(),
            strategy,
            hyperparameters: hp,
            metrics,
            trained_on,
        })?;
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_data::hospital;

    fn system_with_hospital() -> (Amalur, IntegrationHandle) {
        let mut amalur = Amalur::new();
        let (er, pulm) = hospital::scaled_silos(300, 200, 150, 11);
        amalur.register_silo(er, "er-department").unwrap();
        amalur.register_silo(pulm, "pulmonary-department").unwrap();
        let handle = amalur
            .integrate(
                "S1",
                "S2",
                ScenarioKind::FullOuterJoin,
                &IntegrationOptions::with_exact_key("n", "n"),
            )
            .unwrap();
        (amalur, handle)
    }

    #[test]
    fn register_and_lookup_silos() {
        let mut amalur = Amalur::new();
        amalur.register_silo(hospital::s1(), "er").unwrap();
        assert_eq!(amalur.silo("S1").unwrap().num_rows(), 4);
        assert!(amalur.silo("S9").is_err());
        // Re-registration of the same name is rejected by the catalog.
        assert!(amalur.register_silo(hospital::s1(), "er").is_err());
        assert_eq!(amalur.catalog().source_names(), vec!["S1"]);
    }

    #[test]
    fn integrate_records_di_metadata() {
        let (amalur, handle) = system_with_hospital();
        assert_eq!(handle.table.target_shape().1, 4); // m, a, hr, o
        let entry = amalur.catalog().integration(&handle.id).unwrap();
        assert_eq!(entry.scenario, "full outer join");
        assert_eq!(entry.sources, vec!["S1", "S2"]);
        assert_eq!(entry.target_columns, vec!["m", "a", "hr", "o"]);
        assert_eq!(entry.tgds.len(), 3);
        assert!(entry.redundant_cells[1] > 0); // shared patients overlap
    }

    #[test]
    fn plan_respects_privacy_constraint() {
        let (amalur, handle) = system_with_hospital();
        let plan = amalur.plan(
            &handle,
            &TrainingWorkload::default(),
            &Constraints {
                privacy_required: true,
                privacy_mode: None,
            },
        );
        assert_eq!(plan, ExecutionPlan::Federated(PrivacyMode::SecretShared));
        let plan = amalur.plan(
            &handle,
            &TrainingWorkload::default(),
            &Constraints {
                privacy_required: true,
                privacy_mode: Some(PrivacyMode::Plaintext),
            },
        );
        assert_eq!(plan, ExecutionPlan::Federated(PrivacyMode::Plaintext));
    }

    #[test]
    fn plan_uses_cost_model_without_privacy() {
        let (amalur, handle) = system_with_hospital();
        let plan = amalur.plan(
            &handle,
            &TrainingWorkload::default(),
            &Constraints::default(),
        );
        assert!(matches!(
            plan,
            ExecutionPlan::Factorize | ExecutionPlan::Materialize
        ));
    }

    #[test]
    fn installed_cost_profile_steers_the_plan() {
        let (mut amalur, handle) = system_with_hospital();
        assert_eq!(amalur.cost_profile(), HardwareProfile::uncalibrated());
        // A profile where only assembly costs anything makes any
        // materialization plan look infinitely bad → factorize.
        amalur.set_cost_profile(HardwareProfile {
            flop_cost: 1e-9,
            traffic_cost: 0.0,
            correction_cost: 0.0,
            assembly_cost: 1e6,
            dispatch_cost: 0.0,
        });
        let plan = amalur.plan(
            &handle,
            &TrainingWorkload::default(),
            &Constraints::default(),
        );
        assert_eq!(plan, ExecutionPlan::Factorize);
        // The opposite: free assembly, ruinous traffic → materialize.
        amalur.set_cost_profile(HardwareProfile {
            flop_cost: 1e-9,
            traffic_cost: 1e6,
            correction_cost: 1e6,
            assembly_cost: 0.0,
            dispatch_cost: 0.0,
        });
        let plan = amalur.plan(
            &handle,
            &TrainingWorkload::default(),
            &Constraints::default(),
        );
        assert_eq!(plan, ExecutionPlan::Materialize);
    }

    #[test]
    fn factorized_and_materialized_training_agree() {
        let (mut amalur, handle) = system_with_hospital();
        let config = TrainingConfig {
            epochs: 50,
            learning_rate: 1e-4,
            l2: 0.0,
        };
        let fact = amalur
            .train_linear_regression(&handle, 0, &config, ExecutionPlan::Factorize)
            .unwrap();
        let mat = amalur
            .train_linear_regression(&handle, 0, &config, ExecutionPlan::Materialize)
            .unwrap();
        assert!(
            fact.coefficients.approx_eq(&mat.coefficients, 1e-9),
            "max diff {:?}",
            fact.coefficients.max_abs_diff(&mat.coefficients)
        );
        // Both models are in the catalog with lineage to the integration.
        let trained = amalur.catalog().models_trained_on(&handle.id);
        assert_eq!(trained.len(), 2);
    }

    #[test]
    fn federated_training_runs_and_registers() {
        let (mut amalur, handle) = system_with_hospital();
        let config = TrainingConfig {
            epochs: 30,
            learning_rate: 1e-4,
            l2: 0.0,
        };
        let model = amalur
            .train_linear_regression(
                &handle,
                0,
                &config,
                ExecutionPlan::Federated(PrivacyMode::Plaintext),
            )
            .unwrap();
        assert!(model.final_loss.is_finite());
        let entry = amalur.catalog().model(&model.name).unwrap();
        assert!(entry.strategy.starts_with("federated"));
    }

    #[test]
    fn logistic_regression_trains_on_mortality() {
        let (mut amalur, handle) = system_with_hospital();
        let config = TrainingConfig {
            epochs: 100,
            learning_rate: 1e-4,
            l2: 0.0,
        };
        let model = amalur
            .train_logistic_regression(&handle, 0, &config, ExecutionPlan::Factorize)
            .unwrap();
        let acc = model.metrics["train_accuracy"];
        assert!(acc > 0.5, "accuracy {acc} no better than chance");
        // Federated logreg is rejected explicitly.
        assert!(amalur
            .train_logistic_regression(
                &handle,
                0,
                &config,
                ExecutionPlan::Federated(PrivacyMode::Plaintext)
            )
            .is_err());
    }

    #[test]
    fn star_integration_through_the_facade() {
        use amalur_integration::StarKind;
        let mut amalur = Amalur::new();
        for t in amalur_data::workloads::drug_risk_silos(150, 0.15, 5) {
            let location = format!("{}-silo", t.name());
            amalur.register_silo(t, location).unwrap();
        }
        let handle = amalur
            .integrate_star(
                "clinic",
                &["hospital", "pharmacy", "lab"],
                StarKind::Left,
                &IntegrationOptions::with_exact_key("pid", "pid"),
            )
            .unwrap();
        // clinic(label, age, weight) + sbp,dbp + dose,n_drugs + creat,alt.
        assert_eq!(handle.table.target_shape(), (150, 9));
        let di = amalur.catalog().integration(&handle.id).unwrap();
        assert_eq!(di.sources.len(), 4);
        // Train the adverse-event model on the integrated star, both ways.
        let config = TrainingConfig {
            epochs: 40,
            learning_rate: 1e-5,
            l2: 0.0,
        };
        let fact = amalur
            .train_linear_regression(&handle, 0, &config, ExecutionPlan::Factorize)
            .unwrap();
        let mat = amalur
            .train_linear_regression(&handle, 0, &config, ExecutionPlan::Materialize)
            .unwrap();
        assert!(fact.coefficients.approx_eq(&mat.coefficients, 1e-9));
    }

    fn keyboard_system(n_phones: usize) -> (Amalur, Vec<String>) {
        let mut amalur = Amalur::new();
        let mut names = Vec::new();
        for t in amalur_data::workloads::keyboard_silos(n_phones, 40, 9) {
            names.push(t.name().to_owned());
            let location = format!("{}-device", t.name());
            amalur.register_silo(t, location).unwrap();
        }
        (amalur, names)
    }

    #[test]
    fn fedavg_trains_across_horizontal_silos() {
        let (mut amalur, names) = keyboard_system(3);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let config = TrainingConfig {
            epochs: 60,
            learning_rate: 1e-6,
            l2: 0.0,
        };
        let model = amalur
            .train_fedavg(&refs, "next_flight_ms", &config, None)
            .unwrap();
        assert!(model.final_loss.is_finite());
        // uid + the five keystroke features.
        assert_eq!(model.coefficients.rows(), 6);
        assert_eq!(model.comm.fault_events(), 0);
        assert!(model.comm.messages > 0);
        let entry = amalur.catalog().model(&model.name).unwrap();
        assert_eq!(entry.strategy, "fedavg");
        assert_eq!(entry.trained_on, names);
    }

    #[test]
    fn fedavg_with_fault_plan_survives_and_accounts() {
        use amalur_federated::FaultPlan;
        let (mut amalur, names) = keyboard_system(3);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let config = TrainingConfig {
            epochs: 40,
            learning_rate: 1e-6,
            l2: 0.0,
        };
        let plan = FaultPlan::grid(17, 0.2, 0.1);
        let model = amalur
            .train_fedavg(&refs, "next_flight_ms", &config, Some(&plan))
            .unwrap();
        assert!(model.final_loss.is_finite());
        assert!(model.comm.drops > 0, "20% drops should register");
        assert!(model.comm.retries > 0);
        let entry = amalur.catalog().model(&model.name).unwrap();
        assert_eq!(entry.strategy, "fedavg(faulty-transport)");
        assert!(entry.metrics["retries"] > 0.0);
    }

    #[test]
    fn fedavg_quorum_loss_is_a_typed_error() {
        use amalur_federated::{FaultPlan, FederatedError};
        let (mut amalur, names) = keyboard_system(3);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let black_hole = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::reliable(3)
        };
        let err = amalur
            .train_fedavg(
                &refs,
                "next_flight_ms",
                &TrainingConfig::default(),
                Some(&black_hole),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            AmalurError::Federated(FederatedError::QuorumLost { .. })
        ));
    }

    #[test]
    fn fedavg_validates_label_and_l2() {
        let (mut amalur, names) = keyboard_system(2);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        assert!(matches!(
            amalur.train_fedavg(&refs, "no_such_col", &TrainingConfig::default(), None),
            Err(AmalurError::Invalid(_))
        ));
        let with_l2 = TrainingConfig {
            l2: 0.5,
            ..TrainingConfig::default()
        };
        assert!(matches!(
            amalur.train_fedavg(&refs, "next_flight_ms", &with_l2, None),
            Err(AmalurError::Invalid(_))
        ));
        assert!(amalur
            .train_fedavg(
                &["ghost"],
                "next_flight_ms",
                &TrainingConfig::default(),
                None
            )
            .is_err());
    }

    #[test]
    fn invalid_label_column_errors() {
        let (mut amalur, handle) = system_with_hospital();
        assert!(amalur
            .train_linear_regression(
                &handle,
                99,
                &TrainingConfig::default(),
                ExecutionPlan::Factorize
            )
            .is_err());
    }
}
