//! Measurement-calibrated hardware profiles (the self-tuning cost model).
//!
//! The analytic model in [`crate::AmalurCostModel`] prices plans as a
//! linear function of their operation counts. Fixed coefficients rot:
//! every kernel speedup (e.g. the packed GEMM rewrite) silently moves the
//! real factorize-vs-materialize crossover away from the hardcoded one.
//! This module re-derives the coefficients from the machine itself:
//!
//! 1. **Probe** — run a small ladder of micro-benchmarks against real
//!    [`FactorizedTable`]s from the footnote-3 generator family: the
//!    compressed factorized epoch (packed GEMM + gather/scatter +
//!    redundancy correction), the dense epoch on the materialized table,
//!    and target-table assembly. Each probe is timed like the oracle:
//!    one warm-up run, then the minimum over several repetitions.
//! 2. **Fit** — least-squares the measured nanoseconds against the
//!    probes' [`OpCounts`] (relative error weighting, non-negative
//!    coefficients) to obtain a [`HardwareProfile`].
//! 3. **Persist** — save/load the profile as `COST_PROFILE.json` next to
//!    `BENCH_kernels.json`, so report binaries can
//!    [`load_or_calibrate`] instead of re-measuring every run.

use amalur_data::{generate_two_source, TwoSourceSpec};
use amalur_factorize::{FactorizedTable, OpCounts, Strategy};
use amalur_matrix::DenseMatrix;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Default location of the persisted profile (workspace root, next to
/// `BENCH_kernels.json`).
pub const COST_PROFILE_FILE: &str = "COST_PROFILE.json";

/// Schema tag written into the profile file.
const PROFILE_SCHEMA: &str = "amalur-cost-profile/v2";

/// Fitted per-operation costs, in nanoseconds per abstract unit.
///
/// A profile prices an [`OpCounts`] via [`HardwareProfile::predict`]; the
/// five coefficients correspond one-to-one to the five count classes.
/// `dispatch_cost` is the intercept-like term: nanoseconds of fixed
/// overhead per kernel dispatch, independent of operand sizes — without
/// it the model systematically under-estimates factorized plans on
/// sub-ms tiny tables (many per-source dispatches, little work each).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Cost per dense GEMM flop.
    pub flop_cost: f64,
    /// Cost per cell of gather/scatter traffic over compressed metadata.
    pub traffic_cost: f64,
    /// Cost per redundancy-corrected cell.
    pub correction_cost: f64,
    /// Cost per cell written/read while assembling the target table.
    pub assembly_cost: f64,
    /// Fixed cost per kernel dispatch (the intercept; see type docs).
    pub dispatch_cost: f64,
}

impl Default for HardwareProfile {
    fn default() -> Self {
        Self::uncalibrated()
    }
}

impl HardwareProfile {
    /// The paper-era magic numbers, kept as the uncalibrated fallback:
    /// flops at unit cost, irregular traffic an order of magnitude
    /// dearer, assembly four flops per cell. These encode the *relative*
    /// costs the old `factorized_overhead`/`assembly_weight` constants
    /// assumed — correct before the packed-GEMM rewrite, stale after it.
    pub fn uncalibrated() -> Self {
        Self {
            flop_cost: 1.0,
            traffic_cost: 10.0,
            correction_cost: 2.0,
            assembly_cost: 4.0,
            // The paper-era model had no intercept; calibration fits one.
            dispatch_cost: 0.0,
        }
    }

    /// Predicted time (ns once calibrated; abstract units otherwise) for
    /// the given operation counts.
    pub fn predict(&self, counts: &OpCounts) -> f64 {
        self.flop_cost * counts.gemm_flops
            + self.traffic_cost * counts.traffic_cells
            + self.correction_cost * counts.correction_cells
            + self.assembly_cost * counts.assembly_cells
            + self.dispatch_cost * counts.dispatch_calls
    }

    /// Whether the profile is usable: all coefficients finite and
    /// non-negative, at least one strictly positive.
    pub fn is_valid(&self) -> bool {
        let cs = [
            self.flop_cost,
            self.traffic_cost,
            self.correction_cost,
            self.assembly_cost,
            self.dispatch_cost,
        ];
        cs.iter().all(|c| c.is_finite() && *c >= 0.0) && cs.iter().any(|c| *c > 0.0)
    }

    /// Loads a previously fitted profile. Returns `None` when the file is
    /// missing, unparsable, has a different schema, or fails
    /// [`Self::is_valid`] — callers then fall back to calibration.
    pub fn load(path: &Path) -> Option<HardwareProfile> {
        let text = std::fs::read_to_string(path).ok()?;
        let stored: StoredProfile = serde_json::from_str(&text).ok()?;
        if stored.schema != PROFILE_SCHEMA {
            return None;
        }
        let profile = HardwareProfile {
            flop_cost: stored.flop_cost,
            traffic_cost: stored.traffic_cost,
            correction_cost: stored.correction_cost,
            assembly_cost: stored.assembly_cost,
            dispatch_cost: stored.dispatch_cost,
        };
        profile.is_valid().then_some(profile)
    }
}

/// On-disk representation of a fitted profile plus fit diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredProfile {
    schema: String,
    flop_cost: f64,
    traffic_cost: f64,
    correction_cost: f64,
    assembly_cost: f64,
    dispatch_cost: f64,
    probe_count: usize,
    rms_rel_err: f64,
    max_rel_err: f64,
}

/// One timed micro-benchmark with its regression features.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Human-readable description (`fact_epoch r_S1=2000 red=target`, …).
    pub name: String,
    /// Operation counts of what was timed.
    pub counts: OpCounts,
    /// Minimum wall time over the repetitions, nanoseconds.
    pub measured_ns: f64,
}

impl Probe {
    /// The profile's prediction for this probe.
    pub fn predicted_ns(&self, profile: &HardwareProfile) -> f64 {
        profile.predict(&self.counts)
    }

    /// Relative prediction error `|pred − meas| / meas`.
    pub fn relative_error(&self, profile: &HardwareProfile) -> f64 {
        if self.measured_ns <= 0.0 {
            return 0.0;
        }
        (self.predicted_ns(profile) - self.measured_ns).abs() / self.measured_ns
    }
}

/// Knobs of the calibration ladder.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// `r_S1` sizes probed (footnote-3 scaling: `r_S2 = r_S1/5`).
    pub ladder: Vec<usize>,
    /// Timed repetitions per probe (min is taken; one extra warm-up run).
    pub reps: usize,
    /// Columns of the GD operand `X`.
    pub x_cols: usize,
    /// Target abstract work units per timing sample; small probes are
    /// looped until a sample reaches roughly this much work.
    pub sample_units: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            // The tiny rung exists to identify `dispatch_cost`: at
            // r_S1 = 60 the fixed per-dispatch overhead is a visible
            // fraction of the measured time.
            ladder: vec![60, 2_000, 6_000, 20_000],
            reps: 3,
            x_cols: 1,
            sample_units: 4e6,
        }
    }
}

impl CalibrationConfig {
    /// Small ladder for tests and `--quick` runs.
    pub fn quick() -> Self {
        Self {
            ladder: vec![60, 500, 2_000],
            reps: 2,
            sample_units: 4e5,
            ..Self::default()
        }
    }
}

/// A fitted profile together with the probes that produced it.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// The fitted per-operation costs.
    pub profile: HardwareProfile,
    /// The micro-benchmarks the fit was computed from.
    pub probes: Vec<Probe>,
    /// Root-mean-square relative prediction error over the probes.
    pub rms_rel_err: f64,
    /// Worst single-probe relative prediction error.
    pub max_rel_err: f64,
}

impl CalibrationReport {
    /// Serializes the profile (+ diagnostics) to `path` as JSON.
    ///
    /// # Errors
    /// I/O errors from the write.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let stored = StoredProfile {
            schema: PROFILE_SCHEMA.to_owned(),
            flop_cost: self.profile.flop_cost,
            traffic_cost: self.profile.traffic_cost,
            correction_cost: self.profile.correction_cost,
            assembly_cost: self.profile.assembly_cost,
            dispatch_cost: self.profile.dispatch_cost,
            probe_count: self.probes.len(),
            rms_rel_err: self.rms_rel_err,
            max_rel_err: self.max_rel_err,
        };
        let text = serde_json::to_string_pretty(&stored)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(path, text + "\n")
    }
}

/// Where a profile came from (for report headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Read from a previously saved `COST_PROFILE.json`.
    Loaded,
    /// Freshly measured (and saved, best-effort) by this process.
    Calibrated,
}

impl std::fmt::Display for ProfileSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProfileSource::Loaded => "loaded",
            ProfileSource::Calibrated => "calibrated",
        })
    }
}

/// Loads the profile from `path`, or calibrates and saves one when the
/// file is missing or invalid. The save is best-effort: an unwritable
/// directory still yields a usable (freshly calibrated) profile.
pub fn load_or_calibrate(
    path: &Path,
    config: &CalibrationConfig,
) -> (HardwareProfile, ProfileSource) {
    if let Some(profile) = HardwareProfile::load(path) {
        return (profile, ProfileSource::Loaded);
    }
    let report = calibrate(config);
    let _ = report.save(path);
    (report.profile, ProfileSource::Calibrated)
}

/// Runs the probe ladder and fits a [`HardwareProfile`].
///
/// Three silo configurations per ladder size — PK–FK fan-out (target
/// redundancy), inner 1:1 (no redundancy), and a shared-column variant
/// (redundant cells exercising the correction path) — each measured
/// three ways: factorized epoch, materialized epoch, assembly.
pub fn calibrate(config: &CalibrationConfig) -> CalibrationReport {
    let mut probes = Vec::new();
    for (i, &rows_s1) in config.ladder.iter().enumerate() {
        let seed = 0xCA11 + i as u64;
        for (tag, spec) in ladder_specs(rows_s1, seed) {
            // The ladder specs are built in-module and always valid; a
            // violated invariant just drops the probe (an empty probe set
            // falls back to the uncalibrated profile in `fit_profile`).
            let Ok((md, data)) = generate_two_source(&spec) else {
                continue;
            };
            let Ok(ft) = FactorizedTable::new(md, data) else {
                continue;
            };
            probes.extend(probe_table(&ft, tag, rows_s1, config));
        }
    }
    let profile = fit_profile(&probes);
    let (rms, max) = fit_errors(&probes, &profile);
    CalibrationReport {
        profile,
        probes,
        rms_rel_err: rms,
        max_rel_err: max,
    }
}

/// The three probed silo configurations at one ladder size.
fn ladder_specs(rows_s1: usize, seed: u64) -> Vec<(&'static str, TwoSourceSpec)> {
    let base = TwoSourceSpec::footnote3(rows_s1, true, false, seed);
    let inner = TwoSourceSpec::footnote3(rows_s1, false, false, seed + 1);
    // Shared-column variant: S1 and S2 overlap on one target column, so
    // every matched row carries a redundant cell — the correction path.
    let shared = TwoSourceSpec {
        cols_s1: 2,
        shared_cols: 1,
        ..TwoSourceSpec::footnote3(rows_s1, true, false, seed + 2)
    };
    vec![
        ("red=target", base),
        ("red=none", inner),
        ("red=cells", shared),
    ]
}

/// Times the three strategy-level operations on one table.
fn probe_table(
    ft: &FactorizedTable,
    tag: &str,
    rows_s1: usize,
    config: &CalibrationConfig,
) -> Vec<Probe> {
    let (rows, cols) = ft.target_shape();
    let n = config.x_cols;
    let theta = DenseMatrix::filled(cols, n, 0.5);
    let resid = DenseMatrix::filled(rows, n, 0.25);

    let fact_counts = ft.epoch_op_counts(n);
    // Operand shapes are fixed by construction above; the 1×1 zero
    // fallback keeps the timed closures infallible without panicking on
    // a violated invariant.
    let fact_ns = min_time_ns(
        config,
        &crate::metrics::FACT_EPOCH_NS,
        fact_counts.total_units(),
        || {
            let pred = ft
                .lmm(&theta, Strategy::Compressed)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            let grad = ft
                .lmm_transpose(&resid, Strategy::Compressed)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            black_box(pred.get(0, 0) + grad.get(0, 0));
        },
    );

    let assembly_counts = ft.materialize_op_counts();
    let assembly_ns = min_time_ns(
        config,
        &crate::metrics::ASSEMBLY_NS,
        assembly_counts.total_units(),
        || {
            black_box(ft.materialize().get(0, 0));
        },
    );

    let t = ft.materialize();
    let mat_counts = ft.materialized_epoch_op_counts(n);
    let mat_ns = min_time_ns(
        config,
        &crate::metrics::MAT_EPOCH_NS,
        mat_counts.total_units(),
        || {
            let pred = t
                .matmul(&theta)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            let grad = t
                .transpose_matmul(&resid)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            black_box(pred.get(0, 0) + grad.get(0, 0));
        },
    );

    vec![
        Probe {
            name: format!("fact_epoch r_S1={rows_s1} {tag}"),
            counts: fact_counts,
            measured_ns: fact_ns,
        },
        Probe {
            name: format!("assembly   r_S1={rows_s1} {tag}"),
            counts: assembly_counts,
            measured_ns: assembly_ns,
        },
        Probe {
            name: format!("mat_epoch  r_S1={rows_s1} {tag}"),
            counts: mat_counts,
            measured_ns: mat_ns,
        },
    ]
}

/// Oracle-style timing: one warm-up run, then the minimum ns-per-call
/// over `reps` samples; small operations are looped within a sample so
/// each sample covers at least `sample_units` of abstract work. Each
/// sample also lands in `hist`, preserving the spread that the min
/// estimator collapses.
fn min_time_ns(
    config: &CalibrationConfig,
    hist: &amalur_obs::Histogram,
    units: f64,
    mut f: impl FnMut(),
) -> f64 {
    let inner = ((config.sample_units / units.max(1.0)).ceil() as usize).clamp(1, 256);
    f(); // warm-up: page in buffers, warm caches
    let mut best = f64::INFINITY;
    for _ in 0..config.reps.max(1) {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / inner as f64;
        hist.record(ns as u64);
        best = best.min(ns);
    }
    best
}

/// Non-negative least squares of `measured ≈ profile · counts` with
/// relative-error weighting (each probe's row is scaled by
/// `1 / measured`, so small probes count as much as large ones).
///
/// Solved by an active-set loop over the five coefficients: solve the
/// ridge-stabilized normal equations for the active set, drop the most
/// negative coefficient, repeat. Dropped coefficients are clamped to 0.
fn fit_profile(probes: &[Probe]) -> HardwareProfile {
    let rows: Vec<([f64; 5], f64)> = probes
        .iter()
        .filter(|p| p.measured_ns > 0.0)
        .map(|p| {
            let w = 1.0 / p.measured_ns;
            (
                [
                    p.counts.gemm_flops * w,
                    p.counts.traffic_cells * w,
                    p.counts.correction_cells * w,
                    p.counts.assembly_cells * w,
                    p.counts.dispatch_calls * w,
                ],
                1.0,
            )
        })
        .collect();
    if rows.is_empty() {
        return HardwareProfile::uncalibrated();
    }

    // Column equilibration: the weighted dispatch column is orders of
    // magnitude smaller than the flop column (a handful of calls vs
    // millions of flops per probe). Normalizing each column to unit
    // Euclidean norm keeps the shared ridge from crushing the small
    // coefficients; the solution is unscaled at the end.
    let mut col_scale = [0.0f64; 5];
    for (a, _) in &rows {
        for (j, &v) in a.iter().enumerate() {
            col_scale[j] += v * v;
        }
    }
    for s in &mut col_scale {
        *s = s.sqrt();
    }
    let rows: Vec<([f64; 5], f64)> = rows
        .into_iter()
        .map(|(mut a, b)| {
            for (v, s) in a.iter_mut().zip(&col_scale) {
                if *s > 0.0 {
                    *v /= s;
                }
            }
            (a, b)
        })
        .collect();

    // Columns with no signal in any probe are unidentifiable: clamp to 0.
    let mut active = [true; 5];
    for (j, &s) in col_scale.iter().enumerate() {
        if s == 0.0 {
            active[j] = false;
        }
    }
    loop {
        let idx: Vec<usize> = (0..5).filter(|&j| active[j]).collect();
        if idx.is_empty() {
            return HardwareProfile::uncalibrated();
        }
        let k = idx.len();
        // Normal equations AᵀA x = Aᵀb over the active columns.
        let mut ata = DenseMatrix::zeros(k, k);
        let mut atb = DenseMatrix::zeros(k, 1);
        for (a, b) in &rows {
            for (p, &jp) in idx.iter().enumerate() {
                for (q, &jq) in idx.iter().enumerate() {
                    let v = ata.get(p, q) + a[jp] * a[jq];
                    ata.set(p, q, v);
                }
                let v = atb.get(p, 0) + a[jp] * b;
                atb.set(p, 0, v);
            }
        }
        // Tiny ridge keeps near-collinear or unexercised columns solvable.
        let ridge = 1e-9 * (0..k).map(|p| ata.get(p, p)).sum::<f64>().max(1e-30) / k as f64;
        for p in 0..k {
            let v = ata.get(p, p) + ridge;
            ata.set(p, p, v);
        }
        let Ok(x) = ata.solve(&atb) else {
            return HardwareProfile::uncalibrated();
        };
        // Drop the most negative coefficient, if any, and re-solve.
        let mut worst: Option<(usize, f64)> = None;
        for (p, &j) in idx.iter().enumerate() {
            let v = x.get(p, 0);
            if v < 0.0 && worst.is_none_or(|(_, w)| v < w) {
                worst = Some((j, v));
            }
        }
        if let Some((j, _)) = worst {
            active[j] = false;
            continue;
        }
        let mut coefs = [0.0f64; 5];
        for (p, &j) in idx.iter().enumerate() {
            coefs[j] = x.get(p, 0) / col_scale[j];
        }
        let profile = HardwareProfile {
            flop_cost: coefs[0],
            traffic_cost: coefs[1],
            correction_cost: coefs[2],
            assembly_cost: coefs[3],
            dispatch_cost: coefs[4],
        };
        return if profile.is_valid() {
            profile
        } else {
            HardwareProfile::uncalibrated()
        };
    }
}

/// (RMS, max) relative prediction error of `profile` over `probes`.
fn fit_errors(probes: &[Probe], profile: &HardwareProfile) -> (f64, f64) {
    let errs: Vec<f64> = probes
        .iter()
        .filter(|p| p.measured_ns > 0.0)
        .map(|p| p.relative_error(profile))
        .collect();
    if errs.is_empty() {
        return (0.0, 0.0);
    }
    let rms = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
    let max = errs.iter().cloned().fold(0.0, f64::max);
    (rms, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_probes(profile: &HardwareProfile) -> Vec<Probe> {
        // Exactly-linear timings: the fit must recover the coefficients.
        let mut probes = Vec::new();
        // Dispatch counts mimic real probes: a handful of calls per
        // probe, with tiny probes (low unit counts) mixed in so the
        // intercept is identifiable.
        for (g, t, c, a, d) in [
            (1e6, 0.0, 0.0, 0.0, 2.0),
            (2e6, 1e4, 0.0, 0.0, 4.0),
            (4e6, 8e4, 0.0, 0.0, 4.0),
            (1e6, 2e4, 5e3, 0.0, 4.0),
            (3e6, 6e4, 2e4, 0.0, 6.0),
            (0.0, 0.0, 0.0, 1e5, 2.0),
            (0.0, 0.0, 0.0, 7e5, 3.0),
            (5e5, 0.0, 0.0, 3e5, 2.0),
            (1e3, 2e2, 0.0, 0.0, 4.0),
            (4e2, 1e2, 0.0, 0.0, 2.0),
        ] {
            let counts = OpCounts {
                gemm_flops: g,
                traffic_cells: t,
                correction_cells: c,
                assembly_cells: a,
                dispatch_calls: d,
            };
            probes.push(Probe {
                name: format!("synthetic {g} {t} {c} {a} {d}"),
                counts,
                measured_ns: profile.predict(&counts),
            });
        }
        probes
    }

    #[test]
    fn fit_recovers_exact_linear_timings() {
        let truth = HardwareProfile {
            flop_cost: 0.35,
            traffic_cost: 4.2,
            correction_cost: 1.7,
            assembly_cost: 9.0,
            dispatch_cost: 1.5e4,
        };
        let fitted = fit_profile(&synthetic_probes(&truth));
        assert!((fitted.flop_cost - truth.flop_cost).abs() < 1e-3);
        assert!((fitted.traffic_cost - truth.traffic_cost).abs() < 0.1);
        assert!((fitted.correction_cost - truth.correction_cost).abs() < 0.1);
        assert!((fitted.assembly_cost - truth.assembly_cost).abs() < 0.1);
        assert!(
            (fitted.dispatch_cost - truth.dispatch_cost).abs() < 0.01 * truth.dispatch_cost,
            "dispatch intercept not recovered: {}",
            fitted.dispatch_cost
        );
        let (rms, max) = fit_errors(&synthetic_probes(&truth), &fitted);
        assert!(rms < 1e-6, "rms {rms}");
        assert!(max < 1e-5, "max {max}");
    }

    #[test]
    fn fit_clamps_negative_coefficients() {
        // Timings that *decrease* with correction cells would push the
        // coefficient negative; the active-set loop must clamp it to 0.
        let mut probes = synthetic_probes(&HardwareProfile {
            flop_cost: 1.0,
            traffic_cost: 2.0,
            correction_cost: 0.0,
            assembly_cost: 3.0,
            dispatch_cost: 0.0,
        });
        for p in &mut probes {
            if p.counts.correction_cells > 0.0 {
                p.measured_ns = (p.measured_ns - 3.0 * p.counts.correction_cells).max(1.0);
            }
        }
        let fitted = fit_profile(&probes);
        assert_eq!(fitted.correction_cost, 0.0);
        assert!(fitted.is_valid());
    }

    #[test]
    fn empty_or_degenerate_probes_fall_back_to_uncalibrated() {
        assert_eq!(fit_profile(&[]), HardwareProfile::uncalibrated());
        let zero = Probe {
            name: "zero".into(),
            counts: OpCounts::zero(),
            measured_ns: 0.0,
        };
        assert_eq!(fit_profile(&[zero]), HardwareProfile::uncalibrated());
    }

    #[test]
    fn profile_validity() {
        assert!(HardwareProfile::uncalibrated().is_valid());
        assert!(!HardwareProfile {
            flop_cost: f64::NAN,
            ..HardwareProfile::uncalibrated()
        }
        .is_valid());
        assert!(!HardwareProfile {
            flop_cost: -1.0,
            ..HardwareProfile::uncalibrated()
        }
        .is_valid());
        assert!(!HardwareProfile {
            flop_cost: 0.0,
            traffic_cost: 0.0,
            correction_cost: 0.0,
            assembly_cost: 0.0,
            dispatch_cost: 0.0,
        }
        .is_valid());
        // Dispatch-cost 0 with other costs positive stays valid (the
        // uncalibrated fallback has no intercept).
        assert!(HardwareProfile {
            dispatch_cost: 0.0,
            ..HardwareProfile::uncalibrated()
        }
        .is_valid());
    }

    #[test]
    fn save_load_roundtrip_and_fallbacks() {
        let dir = std::env::temp_dir().join("amalur-cost-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("profile-{}.json", std::process::id()));
        let report = CalibrationReport {
            profile: HardwareProfile {
                flop_cost: 0.25,
                traffic_cost: 3.5,
                correction_cost: 1.25,
                assembly_cost: 6.0,
                dispatch_cost: 2.2e4,
            },
            probes: vec![],
            rms_rel_err: 0.05,
            max_rel_err: 0.11,
        };
        report.save(&path).unwrap();
        let loaded = HardwareProfile::load(&path).expect("round-trips");
        assert_eq!(loaded, report.profile);
        // Corrupted file → None.
        std::fs::write(&path, "{not json").unwrap();
        assert!(HardwareProfile::load(&path).is_none());
        // Wrong schema → None. A stale v1 profile (no dispatch_cost)
        // also fails here, forcing recalibration with the intercept.
        std::fs::write(
            &path,
            r#"{"schema":"amalur-cost-profile/v1","flop_cost":1.0,"traffic_cost":1.0,
               "correction_cost":1.0,"assembly_cost":1.0,
               "probe_count":0,"rms_rel_err":0.0,"max_rel_err":0.0}"#,
        )
        .unwrap();
        assert!(HardwareProfile::load(&path).is_none());
        // Missing file → None.
        std::fs::remove_file(&path).unwrap();
        assert!(HardwareProfile::load(&path).is_none());
    }

    #[test]
    fn load_or_calibrate_prefers_saved_profile() {
        let dir = std::env::temp_dir().join("amalur-cost-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("loc-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let saved = CalibrationReport {
            profile: HardwareProfile {
                flop_cost: 0.5,
                traffic_cost: 5.0,
                correction_cost: 2.5,
                assembly_cost: 8.0,
                dispatch_cost: 1.0e4,
            },
            probes: vec![],
            rms_rel_err: 0.0,
            max_rel_err: 0.0,
        };
        saved.save(&path).unwrap();
        let (profile, source) = load_or_calibrate(&path, &CalibrationConfig::quick());
        assert_eq!(source, ProfileSource::Loaded);
        assert_eq!(profile, saved.profile);
        std::fs::remove_file(&path).unwrap();
    }
}
