//! Cost-model inputs extracted from DI metadata.
//!
//! §IV-B: "among silos there are parameters relevant for the redundancy,
//! source description (e.g., number of sources, number of columns and
//! rows in each source, null value ratio per table), source
//! correspondences (column matching and row matching between sources)".
//! [`CostFeatures`] gathers all of them from a [`DiMetadata`], so cost
//! models stay pure functions over this struct.

use amalur_factorize::{FactorizedTable, OpCounts};
use amalur_integration::DiMetadata;
use amalur_matrix::NO_MATCH;

/// Per-source statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFeatures {
    /// Source name.
    pub name: String,
    /// Rows of the source data matrix `Dₖ`.
    pub rows: usize,
    /// Columns of `Dₖ`.
    pub cols: usize,
    /// Target columns this source feeds (non-`-1` entries of `CMₖ`).
    pub mapped_target_cols: usize,
    /// Target rows this source feeds (non-`-1` entries of `CIₖ`).
    pub matched_target_rows: usize,
    /// Distinct source rows referenced by the indicator — when smaller
    /// than `matched_target_rows`, tuples fan out (PK–FK redundancy).
    pub distinct_source_rows: usize,
    /// Cells of `Tₖ` masked as redundant by `Rₖ`.
    pub redundant_cells: usize,
}

impl SourceFeatures {
    /// Average number of target rows fed by each referenced source row
    /// (1.0 = no fan-out; > 1 = the target repeats this source's tuples).
    pub fn fanout(&self) -> f64 {
        if self.distinct_source_rows == 0 {
            return 0.0;
        }
        self.matched_target_rows as f64 / self.distinct_source_rows as f64
    }
}

/// Everything a factorize-vs-materialize decision may depend on
/// (data-side; the workload side lives in
/// [`crate::TrainingWorkload`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CostFeatures {
    /// Target rows `r_T`.
    pub target_rows: usize,
    /// Target columns `c_T`.
    pub target_cols: usize,
    /// Per-source statistics (base table first).
    pub sources: Vec<SourceFeatures>,
}

impl CostFeatures {
    /// Extracts features from DI metadata.
    pub fn from_metadata(md: &DiMetadata) -> Self {
        let sources = md
            .sources
            .iter()
            .map(|s| {
                let ci = s.indicator.compressed();
                let matched = ci.iter().filter(|&&j| j != NO_MATCH).count();
                let mut distinct: Vec<i64> =
                    ci.iter().copied().filter(|&j| j != NO_MATCH).collect();
                distinct.sort_unstable();
                distinct.dedup();
                SourceFeatures {
                    name: s.name.clone(),
                    rows: s.indicator.source_rows(),
                    cols: s.mapping.source_cols(),
                    mapped_target_cols: s.mapping.mapped_target_cols().len(),
                    matched_target_rows: matched,
                    distinct_source_rows: distinct.len(),
                    redundant_cells: s.redundancy.zero_count(),
                }
            })
            .collect();
        Self {
            target_rows: md.target_rows,
            target_cols: md.target_cols(),
            sources,
        }
    }

    /// Convenience: features straight from a factorized table.
    pub fn from_table(ft: &FactorizedTable) -> Self {
        Self::from_metadata(ft.metadata())
    }

    /// Cells of the materialized target, `r_T · c_T`.
    pub fn target_cells(&self) -> usize {
        self.target_rows * self.target_cols
    }

    /// Total cells stored across sources, `Σ r_Sk · c_Sk`.
    pub fn source_cells(&self) -> usize {
        self.sources.iter().map(|s| s.rows * s.cols).sum()
    }

    /// The classic **tuple ratio**: target rows over the smallest source's
    /// rows — how often the "dimension" table's tuples repeat after the
    /// join. Morpheus' first decision parameter.
    pub fn tuple_ratio(&self) -> f64 {
        let min_rows = self
            .sources
            .iter()
            .map(|s| s.rows)
            .min()
            .unwrap_or(1)
            .max(1);
        self.target_rows as f64 / min_rows as f64
    }

    /// The classic **feature ratio**: the non-base sources' columns over
    /// the base source's columns. Morpheus' second decision parameter.
    pub fn feature_ratio(&self) -> f64 {
        let base_cols = self.sources.first().map_or(1, |s| s.cols).max(1);
        let other_cols: usize = self.sources.iter().skip(1).map(|s| s.cols).sum();
        other_cols as f64 / base_cols as f64
    }

    /// Target cells divided by source cells — > 1 means the join *expands*
    /// the data (real redundancy to exploit), < 1 means it shrinks it.
    pub fn expansion_ratio(&self) -> f64 {
        let sc = self.source_cells().max(1);
        self.target_cells() as f64 / sc as f64
    }

    /// Whether the target table actually repeats source tuples (any source
    /// has fan-out > 1).
    pub fn has_target_redundancy(&self) -> bool {
        self.sources.iter().any(|s| s.fanout() > 1.0 + 1e-9)
    }

    /// Operation counts of one compressed-strategy GD epoch (`T·X` plus
    /// `Tᵀ·X`), agreeing with [`FactorizedTable::epoch_op_counts`] (both
    /// sum [`OpCounts::lmm_source`]) so cost models can price plans from
    /// metadata alone.
    pub fn epoch_op_counts(&self, x_cols: usize) -> OpCounts {
        let mut c = OpCounts::zero();
        for s in &self.sources {
            // One LMM + one transpose-LMM per epoch → 2× the per-source
            // single-op counts.
            c = c.plus(
                &OpCounts::lmm_source(
                    s.rows,
                    s.cols,
                    s.matched_target_rows,
                    s.mapped_target_cols,
                    s.redundant_cells,
                    x_cols,
                )
                .scaled(2.0),
            );
        }
        c
    }

    /// Operation counts of materializing the target, agreeing with
    /// [`FactorizedTable::materialize_op_counts`].
    pub fn materialize_op_counts(&self) -> OpCounts {
        let mut assembly = self.target_cells() as f64;
        for s in &self.sources {
            assembly += OpCounts::assembly_source_cells(
                s.matched_target_rows,
                s.mapped_target_cols,
                s.redundant_cells,
            );
        }
        OpCounts {
            assembly_cells: assembly,
            // One gather pass per source — mirrors
            // `FactorizedTable::materialize_op_counts`.
            dispatch_calls: self.sources.len() as f64,
            ..OpCounts::zero()
        }
    }

    /// Operation counts of one GD epoch on the materialized table,
    /// agreeing with [`FactorizedTable::materialized_epoch_op_counts`].
    pub fn materialized_epoch_op_counts(&self, x_cols: usize) -> OpCounts {
        OpCounts::materialized_epoch(self.target_cells(), x_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_integration::{
        DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
    };

    /// PK–FK configuration: 6 target rows, S1 6×2 (1:1), S2 2×3 (fan-out 3).
    fn pkfk() -> DiMetadata {
        let cm1 = MappingMatrix::new(vec![0, 1, NO_MATCH, NO_MATCH, NO_MATCH], 2).unwrap();
        let cm2 = MappingMatrix::new(vec![NO_MATCH, NO_MATCH, 0, 1, 2], 3).unwrap();
        let ci1 = IndicatorMatrix::new(vec![0, 1, 2, 3, 4, 5], 6).unwrap();
        let ci2 = IndicatorMatrix::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let r2 = RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &ci2, &cm2).unwrap();
        DiMetadata {
            target_columns: (0..5).map(|i| format!("c{i}")).collect(),
            target_rows: 6,
            sources: vec![
                SourceMetadata {
                    name: "fact".into(),
                    mapped_columns: vec!["a".into(), "b".into()],
                    mapping: cm1,
                    indicator: ci1,
                    redundancy: RedundancyMatrix::all_ones(6, 5),
                },
                SourceMetadata {
                    name: "dim".into(),
                    mapped_columns: vec!["x".into(), "y".into(), "z".into()],
                    mapping: cm2,
                    indicator: ci2,
                    redundancy: r2,
                },
            ],
        }
    }

    #[test]
    fn extracts_shapes_and_counts() {
        let f = CostFeatures::from_metadata(&pkfk());
        assert_eq!(f.target_rows, 6);
        assert_eq!(f.target_cols, 5);
        assert_eq!(f.sources.len(), 2);
        let dim = &f.sources[1];
        assert_eq!(dim.rows, 2);
        assert_eq!(dim.cols, 3);
        assert_eq!(dim.matched_target_rows, 6);
        assert_eq!(dim.distinct_source_rows, 2);
        assert!((dim.fanout() - 3.0).abs() < 1e-12);
        assert_eq!(dim.redundant_cells, 0); // disjoint columns
    }

    #[test]
    fn ratios() {
        let f = CostFeatures::from_metadata(&pkfk());
        assert!((f.tuple_ratio() - 3.0).abs() < 1e-12); // 6 / min(6,2)
        assert!((f.feature_ratio() - 1.5).abs() < 1e-12); // 3 / 2
        assert_eq!(f.target_cells(), 30);
        assert_eq!(f.source_cells(), 12 + 6);
        assert!((f.expansion_ratio() - 30.0 / 18.0).abs() < 1e-12);
        assert!(f.has_target_redundancy());
    }

    #[test]
    fn no_redundancy_when_one_to_one() {
        let mut md = pkfk();
        // Make the dim indicator 1:1 over 2 of 6 target rows.
        md.sources[1] = SourceMetadata {
            indicator: IndicatorMatrix::new(vec![0, 1, NO_MATCH, NO_MATCH, NO_MATCH, NO_MATCH], 2)
                .unwrap(),
            ..md.sources[1].clone()
        };
        let f = CostFeatures::from_metadata(&md);
        assert!(!f.has_target_redundancy());
        assert!((f.sources[1].fanout() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn op_counts_agree_with_table_level_counters() {
        use amalur_matrix::DenseMatrix;
        let md = pkfk();
        let data = vec![DenseMatrix::ones(6, 2), DenseMatrix::ones(2, 3)];
        let ft = FactorizedTable::new(md, data).unwrap();
        let f = CostFeatures::from_table(&ft);
        for n in [1usize, 3] {
            assert_eq!(f.epoch_op_counts(n), ft.epoch_op_counts(n));
            assert_eq!(
                f.materialized_epoch_op_counts(n),
                ft.materialized_epoch_op_counts(n)
            );
        }
        assert_eq!(f.materialize_op_counts(), ft.materialize_op_counts());
        assert!(f.epoch_op_counts(1).gemm_flops > 0.0);
        assert!(f.materialize_op_counts().assembly_cells > 0.0);
    }

    #[test]
    fn empty_source_fanout_is_zero() {
        let mut md = pkfk();
        md.sources[1] = SourceMetadata {
            indicator: IndicatorMatrix::new(vec![NO_MATCH; 6], 2).unwrap(),
            ..md.sources[1].clone()
        };
        let f = CostFeatures::from_metadata(&md);
        assert_eq!(f.sources[1].fanout(), 0.0);
    }
}
