//! Cost estimation: to factorize or to materialize (§IV-B).
//!
//! Given a silo configuration and a training workload, should the system
//! push computation down to the sources (factorize) or join first and
//! train on the target table (materialize)? This crate provides
//!
//! * [`CostFeatures`] — everything a cost model may look at, extracted
//!   from the DI metadata: shapes, match counts, redundancy counts, and
//!   the classic tuple/feature ratios;
//! * [`MorpheusHeuristic`] — the state-of-the-art baseline \[27\]: decide
//!   from tuple ratio and feature ratio alone (table shapes, no DI
//!   metadata). It covers "Area I" of Figure 5 and misfires when the join
//!   does not actually produce target-side redundancy;
//! * [`AmalurCostModel`] — an analytic FLOP/traffic model parameterized
//!   by the DI metadata (actual match counts, fan-out, redundant cells),
//!   covering the harder "Area III" cases. Its per-operation prices come
//!   from a [`HardwareProfile`];
//! * [`calibrate`] — the measurement-calibrated profile: micro-probes
//!   over real factorized tables, least-squares fit, and
//!   `COST_PROFILE.json` persistence, so the crossover re-fits itself
//!   whenever the kernels get faster instead of rotting with hardcoded
//!   constants;
//! * [`oracle`] — ground truth by measurement: run both strategies and
//!   time them (min over repetitions after a warm-up). The Table III
//!   benchmark scores each model's decisions against the oracle,
//!   excluding near-tie scenarios that are timing noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
mod features;
pub mod metrics;
mod model;
pub mod oracle;

pub use calibrate::{
    calibrate, load_or_calibrate, CalibrationConfig, CalibrationReport, HardwareProfile, Probe,
    ProfileSource, COST_PROFILE_FILE,
};
pub use features::{CostFeatures, SourceFeatures};
pub use metrics::mount_metrics;
pub use model::{AmalurCostModel, CostModel, Decision, MorpheusHeuristic, TrainingWorkload};
pub use oracle::{measure_strategies, measure_strategies_with_reps, Measurement};
