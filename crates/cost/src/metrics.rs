//! Calibration observability: per-sample probe timings as histograms.
//!
//! Each calibration rep contributes one sample (ns per call) to the
//! histogram of its probe family, so a registry dump shows the spread
//! the min-of-reps estimator collapsed — useful for judging whether a
//! calibration ran on a noisy machine. Same `static` + mount pattern
//! as the kernel layers.

use amalur_obs::{Histogram, MetricsRegistry};

/// Per-sample timings of the factorized-epoch probes (ns per call).
pub(crate) static FACT_EPOCH_NS: Histogram = Histogram::new();

/// Per-sample timings of the assembly (materialization) probes.
pub(crate) static ASSEMBLY_NS: Histogram = Histogram::new();

/// Per-sample timings of the materialized-epoch probes.
pub(crate) static MAT_EPOCH_NS: Histogram = Histogram::new();

/// Mounts the calibration histograms into `reg` under the
/// `cost.calibrate.*` names.
pub fn mount_metrics(reg: &MetricsRegistry) {
    reg.mount_histogram("cost.calibrate.fact_epoch_ns", &FACT_EPOCH_NS);
    reg.mount_histogram("cost.calibrate.assembly_ns", &ASSEMBLY_NS);
    reg.mount_histogram("cost.calibrate.mat_epoch_ns", &MAT_EPOCH_NS);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_probes_feed_the_histograms() {
        let reg = MetricsRegistry::new();
        mount_metrics(&reg);
        let before = reg
            .snapshot()
            .histogram("cost.calibrate.fact_epoch_ns")
            .map_or(0, |h| h.count());
        let report = crate::calibrate::calibrate(&crate::calibrate::CalibrationConfig {
            ladder: vec![60],
            reps: 2,
            x_cols: 1,
            sample_units: 1e5,
        });
        assert!(!report.probes.is_empty());
        let snap = reg.snapshot();
        let fact = snap.histogram("cost.calibrate.fact_epoch_ns").unwrap();
        // Every rep of every fact_epoch probe recorded one sample.
        assert!(fact.count() >= before + 2);
        assert!(
            snap.histogram("cost.calibrate.assembly_ns")
                .unwrap()
                .count()
                >= 2
        );
        assert!(
            snap.histogram("cost.calibrate.mat_epoch_ns")
                .unwrap()
                .count()
                >= 2
        );
    }
}
