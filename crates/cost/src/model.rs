//! The decision models: Morpheus' heuristic vs Amalur's analytic model.

use crate::{CostFeatures, HardwareProfile};

/// The optimizer's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Push computation to the sources (Eq. 2 rewrites).
    Factorize,
    /// Join first, train on the target table.
    Materialize,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Decision::Factorize => "factorize",
            Decision::Materialize => "materialize",
        })
    }
}

/// The training workload the decision is being made for.
#[derive(Debug, Clone, Copy)]
pub struct TrainingWorkload {
    /// Gradient-descent epochs (how often the per-epoch saving repeats).
    pub epochs: usize,
    /// Columns of the operand `X` in `T·X` (1 for plain GD, more for
    /// multi-output models / K-Means).
    pub x_cols: usize,
}

impl Default for TrainingWorkload {
    fn default() -> Self {
        Self {
            epochs: 20,
            x_cols: 1,
        }
    }
}

/// A factorize-or-materialize decision procedure.
pub trait CostModel {
    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// The decision for the given data statistics and workload.
    fn decide(&self, features: &CostFeatures, workload: &TrainingWorkload) -> Decision;
}

/// The Morpheus decision rule \[27\]: factorize when the **tuple ratio**
/// and **feature ratio** clear fixed thresholds.
///
/// Crucially, both ratios are computed from *table shapes only* — the
/// heuristic never inspects the actual row matching. When the schema
/// looks like a PK–FK star (small wide dimension, large narrow fact) it
/// predicts factorization whether or not the join actually duplicates
/// tuples — the failure mode Table III exposes.
#[derive(Debug, Clone)]
pub struct MorpheusHeuristic {
    /// Factorize when `tuple_ratio ≥` this (paper value: 5).
    pub tuple_ratio_threshold: f64,
    /// ... and `feature_ratio ≥` this (paper value: 1).
    pub feature_ratio_threshold: f64,
}

impl Default for MorpheusHeuristic {
    fn default() -> Self {
        Self {
            tuple_ratio_threshold: 5.0,
            feature_ratio_threshold: 1.0,
        }
    }
}

impl CostModel for MorpheusHeuristic {
    fn name(&self) -> &'static str {
        "Morpheus"
    }

    fn decide(&self, features: &CostFeatures, _workload: &TrainingWorkload) -> Decision {
        // A single source has no join to factorize across: the tuple
        // ratio max/min would degenerate to 1.0 and silently fall through
        // to the threshold comparison — make the case explicit instead.
        if features.sources.len() < 2 {
            return Decision::Materialize;
        }
        // Shape-level tuple ratio: sizes of the tables, not the realized
        // join. For the footnote-3 configuration this is r_S1 / r_S2
        // regardless of the actual matching.
        let max_rows = features
            .sources
            .iter()
            .map(|s| s.rows)
            .max()
            .unwrap_or(1)
            .max(1);
        let min_rows = features
            .sources
            .iter()
            .map(|s| s.rows)
            .min()
            .unwrap_or(1)
            .max(1);
        let tuple_ratio = max_rows as f64 / min_rows as f64;
        let feature_ratio = features.feature_ratio();
        if tuple_ratio >= self.tuple_ratio_threshold
            && feature_ratio >= self.feature_ratio_threshold
        {
            Decision::Factorize
        } else {
            Decision::Materialize
        }
    }
}

/// Amalur's analytic cost model: estimated total cost of both strategies
/// from the DI metadata, pick the cheaper.
///
/// The model prices the *operation counts* of the physical plans (see
/// [`amalur_factorize::OpCounts`]) with a [`HardwareProfile`]:
///
/// * factorized run: `epochs ×` the compressed-strategy epoch counts
///   (per-source GEMMs, gather/scatter traffic, redundancy correction);
/// * materialized run: one-off assembly of the target table plus
///   `epochs ×` two plain GEMMs against `T`.
///
/// With [`HardwareProfile::uncalibrated`] the coefficients are the
/// paper-era magic numbers; `amalur-cost`'s calibration
/// ([`crate::calibrate`]) replaces them with per-machine measured costs
/// so the crossover tracks the kernels as they get faster.
#[derive(Debug, Clone, Default)]
pub struct AmalurCostModel {
    /// Per-operation costs (ns per abstract unit once calibrated).
    pub profile: HardwareProfile,
}

impl AmalurCostModel {
    /// Model with measured (or otherwise explicit) per-operation costs.
    pub fn with_profile(profile: HardwareProfile) -> Self {
        Self { profile }
    }

    /// Estimated cost of one factorized training run.
    pub fn factorized_cost(&self, f: &CostFeatures, w: &TrainingWorkload) -> f64 {
        w.epochs as f64 * self.profile.predict(&f.epoch_op_counts(w.x_cols))
    }

    /// Estimated cost of materialization plus training on `T`.
    pub fn materialized_cost(&self, f: &CostFeatures, w: &TrainingWorkload) -> f64 {
        self.profile.predict(&f.materialize_op_counts())
            + w.epochs as f64
                * self
                    .profile
                    .predict(&f.materialized_epoch_op_counts(w.x_cols))
    }
}

impl CostModel for AmalurCostModel {
    fn name(&self) -> &'static str {
        "Amalur"
    }

    fn decide(&self, features: &CostFeatures, workload: &TrainingWorkload) -> Decision {
        if self.factorized_cost(features, workload) < self.materialized_cost(features, workload) {
            Decision::Factorize
        } else {
            Decision::Materialize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFeatures;

    /// Footnote-3 shapes with explicit control over the realized matching.
    fn features(rows_s1: usize, target_redundancy: bool) -> CostFeatures {
        let rows_s2 = (rows_s1 / 5).max(1);
        let (target_rows, matched2, distinct2) = if target_redundancy {
            (rows_s1, rows_s1, rows_s2) // fan-out 5
        } else {
            (rows_s2, rows_s2, rows_s2) // inner 1:1
        };
        CostFeatures {
            target_rows,
            target_cols: 101,
            sources: vec![
                SourceFeatures {
                    name: "S1".into(),
                    rows: rows_s1,
                    cols: 1,
                    mapped_target_cols: 1,
                    matched_target_rows: target_rows,
                    distinct_source_rows: target_rows.min(rows_s1),
                    redundant_cells: 0,
                },
                SourceFeatures {
                    name: "S2".into(),
                    rows: rows_s2,
                    cols: 100,
                    mapped_target_cols: 100,
                    matched_target_rows: matched2,
                    distinct_source_rows: distinct2,
                    redundant_cells: 0,
                },
            ],
        }
    }

    #[test]
    fn morpheus_always_factorizes_footnote3_shapes() {
        // The heuristic sees TR = 5, FR = 100 in every quadrant — it
        // cannot distinguish realized redundancy from schema shape.
        let m = MorpheusHeuristic::default();
        let w = TrainingWorkload::default();
        for red in [true, false] {
            for rows in [100, 10_000, 1_000_000] {
                assert_eq!(m.decide(&features(rows, red), &w), Decision::Factorize);
            }
        }
    }

    #[test]
    fn morpheus_materializes_low_ratio_shapes() {
        let m = MorpheusHeuristic::default();
        let w = TrainingWorkload::default();
        // Equal-size sources: TR = 1 < 5.
        let mut f = features(1000, true);
        f.sources[1].rows = 1000;
        assert_eq!(m.decide(&f, &w), Decision::Materialize);
    }

    #[test]
    fn morpheus_materializes_single_source() {
        // One source: max rows == min rows would yield tuple ratio 1.0 by
        // accident; the explicit rule says there is nothing to factorize
        // across.
        let m = MorpheusHeuristic::default();
        let w = TrainingWorkload::default();
        let mut f = features(1000, true);
        f.sources.truncate(1);
        assert_eq!(m.decide(&f, &w), Decision::Materialize);
        f.sources.clear();
        assert_eq!(m.decide(&f, &w), Decision::Materialize);
    }

    #[test]
    fn amalur_factorizes_with_target_redundancy() {
        let a = AmalurCostModel::default();
        let w = TrainingWorkload::default();
        let f = features(100_000, true);
        // Target = 100k × 101 cells, sources = 100k + 20k·100 = 2.1M cells
        // per epoch vs 10.1M — factorization clearly wins.
        assert_eq!(a.decide(&f, &w), Decision::Factorize);
    }

    #[test]
    fn amalur_materializes_without_target_redundancy() {
        let a = AmalurCostModel::default();
        let w = TrainingWorkload::default();
        let f = features(100_000, false);
        // Inner 1:1: target = 20k × 101 ≈ 2.02M cells; factorized still
        // pays the full 2.1M source cells per epoch plus traffic.
        assert_eq!(a.decide(&f, &w), Decision::Materialize);
    }

    #[test]
    fn amalur_cost_components_scale_with_epochs() {
        let a = AmalurCostModel::default();
        let f = features(10_000, true);
        let short = TrainingWorkload {
            epochs: 1,
            x_cols: 1,
        };
        let long = TrainingWorkload {
            epochs: 100,
            x_cols: 1,
        };
        assert!(a.factorized_cost(&f, &long) > a.factorized_cost(&f, &short) * 50.0);
        // Assembly is paid once: the materialized cost grows less than
        // linearly in epochs.
        let m_short = a.materialized_cost(&f, &short);
        let m_long = a.materialized_cost(&f, &long);
        assert!(m_long < m_short * 100.0);
    }

    #[test]
    fn decision_display() {
        assert_eq!(Decision::Factorize.to_string(), "factorize");
        assert_eq!(Decision::Materialize.to_string(), "materialize");
    }

    #[test]
    fn redundant_cells_penalize_factorization() {
        let a = AmalurCostModel::default();
        let w = TrainingWorkload::default();
        let mut f = features(10_000, true);
        let base = a.factorized_cost(&f, &w);
        f.sources[1].redundant_cells = 1_000_000;
        assert!(a.factorized_cost(&f, &w) > base);
    }

    #[test]
    fn calibrated_profile_shifts_the_crossover() {
        // Same features, two profiles: when assembly is expensive
        // relative to flops, factorization wins configurations the
        // flop-dominated profile would materialize.
        let f = features(100_000, false);
        let w = TrainingWorkload::default();
        let flop_heavy = AmalurCostModel::with_profile(HardwareProfile {
            flop_cost: 10.0,
            traffic_cost: 1.0,
            correction_cost: 1.0,
            assembly_cost: 1.0,
            dispatch_cost: 0.0,
        });
        let assembly_heavy = AmalurCostModel::with_profile(HardwareProfile {
            flop_cost: 0.05,
            traffic_cost: 0.1,
            correction_cost: 0.1,
            assembly_cost: 50.0,
            dispatch_cost: 0.0,
        });
        assert_eq!(flop_heavy.decide(&f, &w), Decision::Materialize);
        assert_eq!(assembly_heavy.decide(&f, &w), Decision::Factorize);
    }
}
