//! Ground truth by measurement.
//!
//! The Table III experiment scores cost models against what is *actually*
//! faster. This module runs both strategies on a real
//! [`FactorizedTable`] — a gradient-descent-shaped workload of
//! `T·θ` / `Tᵀ·r` pairs — and times them. The materialized timing
//! includes materialization itself (the paper's Fig. 2 pipeline joins
//! first, then trains).

use crate::{Decision, TrainingWorkload};
use amalur_factorize::{FactorizedTable, Strategy};
use amalur_matrix::DenseMatrix;
use std::time::{Duration, Instant};

/// Timings of the two strategies on one configuration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall time of factorized training.
    pub factorized: Duration,
    /// Wall time of materialization + training on `T`.
    pub materialized: Duration,
}

impl Measurement {
    /// The strategy that actually won.
    pub fn ground_truth(&self) -> Decision {
        if self.factorized <= self.materialized {
            Decision::Factorize
        } else {
            Decision::Materialize
        }
    }

    /// Speed-up of factorization over materialization (> 1 means
    /// factorization is faster).
    pub fn speedup(&self) -> f64 {
        let f = self.factorized.as_secs_f64();
        if f == 0.0 {
            return f64::INFINITY;
        }
        self.materialized.as_secs_f64() / f
    }

    /// Relative gap between the two timings,
    /// `|factorized − materialized| / max(factorized, materialized)`,
    /// in `[0, 1]`. Small gaps mean the "ground truth" is within timing
    /// noise.
    pub fn relative_gap(&self) -> f64 {
        let f = self.factorized.as_secs_f64();
        let m = self.materialized.as_secs_f64();
        let max = f.max(m);
        if max == 0.0 {
            return 0.0;
        }
        (f - m).abs() / max
    }

    /// Whether the two strategies timed within `tolerance` of each other
    /// (relative). Such scenarios are coin flips, not ground truth —
    /// accuracy scoring should exclude them rather than charge models
    /// for mispredicting noise.
    pub fn is_near_tie(&self, tolerance: f64) -> bool {
        self.relative_gap() <= tolerance
    }
}

/// Runs and times both strategies for a GD-shaped workload, taking the
/// **minimum over `reps` repetitions** per strategy after one untimed
/// warm-up run (a single wall-clock sample flips the "ground truth" near
/// the crossover on a noisy machine).
///
/// Each epoch performs one `T·θ` (predictions) and one `Tᵀ·r`
/// (gradient), the dominant operations of linear/logistic regression
/// training; `θ` and `r` have `workload.x_cols` columns.
pub fn measure_strategies_with_reps(
    ft: &FactorizedTable,
    workload: &TrainingWorkload,
    reps: usize,
) -> Measurement {
    let (rows, cols) = ft.target_shape();
    let theta = DenseMatrix::filled(cols, workload.x_cols, 0.5);
    let resid = DenseMatrix::filled(rows, workload.x_cols, 0.25);
    let reps = reps.max(1);
    let mut sink = 0.0;

    // Operand shapes are fixed by construction above; the 1×1 zero
    // fallback keeps the timed loops infallible without panicking on a
    // violated invariant.
    // --- factorized ------------------------------------------------------
    let run_factorized = |sink: &mut f64| {
        let start = Instant::now();
        for _ in 0..workload.epochs {
            let pred = ft
                .lmm(&theta, Strategy::Compressed)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            let grad = ft
                .lmm_transpose(&resid, Strategy::Compressed)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            *sink += pred.get(0, 0) + grad.get(0, 0);
        }
        start.elapsed()
    };
    run_factorized(&mut sink); // warm-up, dropped
    let mut factorized = Duration::MAX;
    for _ in 0..reps {
        factorized = factorized.min(run_factorized(&mut sink));
    }

    // --- materialized (join + train) --------------------------------------
    let run_materialized = |sink: &mut f64| {
        let start = Instant::now();
        let t = ft.materialize();
        for _ in 0..workload.epochs {
            let pred = t
                .matmul(&theta)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            let grad = t
                .transpose_matmul(&resid)
                .unwrap_or_else(|_| DenseMatrix::zeros(1, 1));
            *sink += pred.get(0, 0) + grad.get(0, 0);
        }
        start.elapsed()
    };
    run_materialized(&mut sink); // warm-up, dropped
    let mut materialized = Duration::MAX;
    for _ in 0..reps {
        materialized = materialized.min(run_materialized(&mut sink));
    }
    // Keep the accumulator alive so the work cannot be optimized away.
    assert!(sink.is_finite());

    Measurement {
        factorized,
        materialized,
    }
}

/// [`measure_strategies_with_reps`] with the default 3 repetitions.
pub fn measure_strategies(ft: &FactorizedTable, workload: &TrainingWorkload) -> Measurement {
    measure_strategies_with_reps(ft, workload, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_data::TwoSourceSpec;

    fn table(rows_s1: usize, target_redundancy: bool) -> FactorizedTable {
        let spec = TwoSourceSpec::footnote3(rows_s1, target_redundancy, false, 13);
        let (md, data) = amalur_data::generate_two_source(&spec).unwrap();
        FactorizedTable::new(md, data).unwrap()
    }

    #[test]
    fn measurement_produces_positive_times() {
        let ft = table(2000, true);
        let m = measure_strategies(
            &ft,
            &TrainingWorkload {
                epochs: 3,
                x_cols: 1,
            },
        );
        assert!(m.factorized > Duration::ZERO);
        assert!(m.materialized > Duration::ZERO);
        assert!(m.speedup() > 0.0);
    }

    #[test]
    fn ground_truth_picks_smaller_time() {
        let m = Measurement {
            factorized: Duration::from_millis(10),
            materialized: Duration::from_millis(20),
        };
        assert_eq!(m.ground_truth(), Decision::Factorize);
        assert_eq!(m.speedup(), 2.0);
        let m = Measurement {
            factorized: Duration::from_millis(20),
            materialized: Duration::from_millis(10),
        };
        assert_eq!(m.ground_truth(), Decision::Materialize);
    }

    #[test]
    fn near_tie_detection() {
        let m = Measurement {
            factorized: Duration::from_millis(100),
            materialized: Duration::from_millis(101),
        };
        assert!(m.relative_gap() < 0.011);
        assert!(m.is_near_tie(0.02));
        assert!(!m.is_near_tie(0.005));
        let m = Measurement {
            factorized: Duration::from_millis(100),
            materialized: Duration::from_millis(150),
        };
        assert!((m.relative_gap() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!m.is_near_tie(0.02));
        let zero = Measurement {
            factorized: Duration::ZERO,
            materialized: Duration::ZERO,
        };
        assert_eq!(zero.relative_gap(), 0.0);
        assert!(zero.is_near_tie(0.02));
    }

    #[test]
    fn reps_are_clamped_to_at_least_one() {
        let ft = table(500, true);
        let m = measure_strategies_with_reps(
            &ft,
            &TrainingWorkload {
                epochs: 1,
                x_cols: 1,
            },
            0,
        );
        assert!(m.factorized > Duration::ZERO);
        assert!(m.materialized > Duration::ZERO);
    }

    #[test]
    fn redundancy_favours_factorization_at_scale() {
        // With fan-out 5 and a 100-wide dimension table, factorized
        // training touches ~5× fewer cells; at 50k rows the measured
        // advantage is stable even on a noisy machine.
        let ft = table(50_000, true);
        let m = measure_strategies(
            &ft,
            &TrainingWorkload {
                epochs: 10,
                x_cols: 1,
            },
        );
        assert_eq!(
            m.ground_truth(),
            Decision::Factorize,
            "speedup {}",
            m.speedup()
        );
    }
}
