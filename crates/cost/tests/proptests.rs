//! Property tests for the cost model and its calibration.
//!
//! * [`AmalurCostModel`] must be **monotone**: more redundant cells or
//!   more epochs can only make the factorized strategy look worse, and
//!   more target cells can only make the materialized strategy look
//!   worse — for *any* valid (non-negative) hardware profile, fitted or
//!   not. A fit that broke monotonicity would make the optimizer prefer
//!   strictly larger plans.
//! * A fitted [`HardwareProfile`] must reproduce the probe timings it
//!   was fitted from within tolerance (self-consistency of the
//!   least-squares loop on real measurements).

use amalur_cost::{
    calibrate, AmalurCostModel, CalibrationConfig, CostFeatures, HardwareProfile, SourceFeatures,
    TrainingWorkload,
};
use proptest::prelude::{prop_assert, proptest, ProptestConfig};

/// Footnote-3-shaped features with explicit knobs.
fn features(rows_s1: usize, redundant_cells: usize) -> CostFeatures {
    let rows_s2 = (rows_s1 / 5).max(1);
    CostFeatures {
        target_rows: rows_s1,
        target_cols: 101,
        sources: vec![
            SourceFeatures {
                name: "S1".into(),
                rows: rows_s1,
                cols: 1,
                mapped_target_cols: 1,
                matched_target_rows: rows_s1,
                distinct_source_rows: rows_s1,
                redundant_cells: 0,
            },
            SourceFeatures {
                name: "S2".into(),
                rows: rows_s2,
                cols: 100,
                mapped_target_cols: 100,
                matched_target_rows: rows_s1,
                distinct_source_rows: rows_s2,
                redundant_cells,
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn factorized_cost_monotone_in_redundant_cells_and_epochs(
        flop in 0.0f64..5.0,
        traffic in 0.0f64..25.0,
        correction in 0.0f64..10.0,
        assembly in 0.0f64..20.0,
        rows in 10usize..200_000,
        red in 0usize..1_000_000,
        red_extra in 1usize..1_000_000,
        epochs in 1usize..500,
        epochs_extra in 1usize..500,
    ) {
        let model = AmalurCostModel::with_profile(HardwareProfile {
            flop_cost: flop,
            traffic_cost: traffic,
            correction_cost: correction,
            assembly_cost: assembly,
            dispatch_cost: 0.0,
        });
        let w = TrainingWorkload { epochs, x_cols: 1 };
        let base = model.factorized_cost(&features(rows, red), &w);
        // Non-decreasing in redundant cells ...
        let more_red = model.factorized_cost(&features(rows, red + red_extra), &w);
        prop_assert!(more_red >= base, "red {red}+{red_extra}: {more_red} < {base}");
        // ... and in epochs.
        let w_long = TrainingWorkload { epochs: epochs + epochs_extra, x_cols: 1 };
        let longer = model.factorized_cost(&features(rows, red), &w_long);
        prop_assert!(longer >= base, "epochs {epochs}+{epochs_extra}: {longer} < {base}");
    }

    #[test]
    fn materialized_cost_monotone_in_target_cells(
        flop in 0.0f64..5.0,
        traffic in 0.0f64..25.0,
        correction in 0.0f64..10.0,
        assembly in 0.0f64..20.0,
        rows in 10usize..200_000,
        rows_extra in 1usize..200_000,
        epochs in 1usize..500,
    ) {
        let model = AmalurCostModel::with_profile(HardwareProfile {
            flop_cost: flop,
            traffic_cost: traffic,
            correction_cost: correction,
            assembly_cost: assembly,
            dispatch_cost: 0.0,
        });
        let w = TrainingWorkload { epochs, x_cols: 1 };
        // Growing the target (more rows at fixed columns) can only make
        // materialization dearer: both assembly and the per-epoch GEMM
        // scale with target cells.
        let small = features(rows, 0);
        let large = features(rows + rows_extra, 0);
        prop_assert!(large.target_cells() > small.target_cells());
        let c_small = model.materialized_cost(&small, &w);
        let c_large = model.materialized_cost(&large, &w);
        prop_assert!(c_large >= c_small, "target cells up but cost {c_large} < {c_small}");
    }
}

#[test]
fn fitted_profile_reproduces_probe_timings() {
    // Real micro-probes (tiny ladder so the test stays fast in debug
    // builds); the fitted linear model must predict each probe it was
    // fitted from within a loose tolerance — the probes are min-of-reps
    // timings, so residual noise is bounded but not zero.
    let report = calibrate(&CalibrationConfig::quick());
    assert!(
        report.profile.is_valid(),
        "fit produced {:?}",
        report.profile
    );
    assert!(!report.probes.is_empty());
    assert!(
        report.rms_rel_err < 0.75,
        "rms relative error {:.2} too large — fit does not describe the machine",
        report.rms_rel_err
    );
    for p in &report.probes {
        let rel = p.relative_error(&report.profile);
        assert!(
            rel < 4.0,
            "probe {} mispredicted by {:.1}x (measured {:.3} ms, predicted {:.3} ms)",
            p.name,
            rel + 1.0,
            p.measured_ns / 1e6,
            p.predicted_ns(&report.profile) / 1e6,
        );
    }
}
