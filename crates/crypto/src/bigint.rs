//! Arbitrary-precision unsigned integers.
//!
//! A little-endian `Vec<u64>` limb representation with the operations
//! Paillier needs: schoolbook multiplication, Knuth-style long division,
//! binary extended GCD (modular inverses), square-and-multiply modular
//! exponentiation and Miller–Rabin primality testing. Deliberately
//! simple and allocation-friendly — the workloads use 512–1024-bit
//! moduli where schoolbook arithmetic is more than fast enough.

use crate::{CryptoError, Result};
use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian u64 limbs,
/// no trailing zero limbs — the canonical form all ops maintain).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// From a u128.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = Self {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// From little-endian limbs (normalized).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = Self { limbs };
        out.normalize();
        out
    }

    /// The value as u64 if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// The value as u128 if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Comparison.
    pub fn cmp_big(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// `self - other`; `None` when the result would be negative.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self.cmp_big(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(out))
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= if bit_shift == 0 { l } else { l << bit_shift };
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        Self::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Self {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift > 0 && i + 1 < self.limbs.len() {
                l |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(l);
        }
        Self::from_limbs(out)
    }

    /// Bit `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        self.limbs
            .get(limb)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// `(self / divisor, self % divisor)` via binary long division.
    ///
    /// # Errors
    /// [`CryptoError::DivisionByZero`].
    pub fn div_rem(&self, divisor: &Self) -> Result<(Self, Self)> {
        if divisor.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        match self.cmp_big(divisor) {
            Ordering::Less => return Ok((Self::zero(), self.clone())),
            Ordering::Equal => return Ok((Self::one(), Self::zero())),
            Ordering::Greater => {}
        }
        // Fast path: single-limb divisor.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u128;
            let mut rem = 0u128;
            let mut q = vec![0u64; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            return Ok((Self::from_limbs(q), Self::from_u64(rem as u64)));
        }
        // General case: shift-and-subtract, one bit at a time, but with
        // limb-level remainders (adequate for ≤2048-bit operands).
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient = Self::zero();
        let mut shifted = divisor.shl(shift);
        for s in (0..=shift).rev() {
            if let Some(d) = remainder.checked_sub(&shifted) {
                remainder = d;
                quotient = quotient.add(&Self::one().shl(s));
            }
            shifted = shifted.shr(1);
        }
        Ok((quotient, remainder))
    }

    /// `self mod modulus`.
    ///
    /// # Errors
    /// [`CryptoError::DivisionByZero`].
    pub fn rem(&self, modulus: &Self) -> Result<Self> {
        Ok(self.div_rem(modulus)?.1)
    }

    /// `(self * other) mod modulus`.
    ///
    /// # Errors
    /// [`CryptoError::DivisionByZero`].
    pub fn mul_mod(&self, other: &Self, modulus: &Self) -> Result<Self> {
        self.mul(other).rem(modulus)
    }

    /// `self^exponent mod modulus` (square-and-multiply).
    ///
    /// # Errors
    /// [`CryptoError::DivisionByZero`] for a zero modulus.
    pub fn mod_pow(&self, exponent: &Self, modulus: &Self) -> Result<Self> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if modulus.is_one() {
            return Ok(Self::zero());
        }
        let mut base = self.rem(modulus)?;
        let mut result = Self::one();
        let nbits = exponent.bits();
        for i in 0..nbits {
            if exponent.bit(i) {
                result = result.mul_mod(&base, modulus)?;
            }
            if i + 1 < nbits {
                base = base.mul_mod(&base, modulus)?;
            }
        }
        Ok(result)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a.cmp_big(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            // `a <= b` after the swap, so the subtraction cannot underflow;
            // the zero fallback would terminate the loop with `a` intact.
            b = b.checked_sub(&a).unwrap_or_else(Self::zero);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse `self⁻¹ mod modulus` (extended Euclid over
    /// signed intermediate values emulated with the modulus offset).
    ///
    /// # Errors
    /// [`CryptoError::NotInvertible`] when `gcd(self, modulus) ≠ 1`.
    pub fn mod_inverse(&self, modulus: &Self) -> Result<Self> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        // Extended Euclid maintaining only the coefficient of `self`,
        // tracked as (value, negative?) to stay in unsigned arithmetic.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus)?;
        let mut t0: (Self, bool) = (Self::zero(), false);
        let mut t1: (Self, bool) = (Self::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1)?;
            // t2 = t0 - q*t1
            let qt1 = (q.mul(&t1.0), t1.1);
            let t2 = signed_sub(&t0, &qt1);
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        let (mag, neg) = t0;
        let mag = mag.rem(modulus)?;
        if neg && !mag.is_zero() {
            // `mag` was just reduced mod `modulus` and is non-zero, so the
            // complement cannot underflow.
            Ok(modulus.checked_sub(&mag).unwrap_or_else(Self::zero))
        } else {
            Ok(mag)
        }
    }

    /// Uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(bound: &Self, rng: &mut R) -> Self {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let nbits = bound.bits();
        loop {
            let mut limbs = vec![0u64; bound.limbs.len()];
            for l in &mut limbs {
                *l = rng.gen();
            }
            // Mask the top limb to the bound's bit length.
            let top_bits = nbits % 64;
            if top_bits > 0 {
                let last = limbs.len() - 1;
                limbs[last] &= (1u64 << top_bits) - 1;
            }
            let candidate = Self::from_limbs(limbs);
            if candidate.cmp_big(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random integer with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits > 0, "random_bits: zero width");
        let limbs = bits.div_ceil(64);
        let mut v = vec![0u64; limbs];
        for l in &mut v {
            *l = rng.gen();
        }
        let top_bits = bits % 64;
        let last = limbs - 1;
        if top_bits > 0 {
            v[last] &= (1u64 << top_bits) - 1;
            v[last] |= 1u64 << (top_bits - 1);
        } else {
            v[last] |= 1u64 << 63;
        }
        Self::from_limbs(v)
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random
    /// witnesses.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rounds: usize, rng: &mut R) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            let p = Self::from_u64(small);
            if self == &p {
                return true;
            }
            if self.rem(&p).is_ok_and(|r| r.is_zero()) {
                return false;
            }
        }
        if self.is_even() {
            return false;
        }
        // self - 1 = d · 2^s
        let Some(n_minus_1) = self.checked_sub(&Self::one()) else {
            return false;
        };
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        let two = Self::from_u64(2);
        // `self > 3` here: everything <= 37 was handled by the sieve above.
        let Some(bound) = self.checked_sub(&Self::from_u64(3)) else {
            return false;
        };
        'witness: for _ in 0..rounds {
            let a = Self::random_below(&bound, rng).add(&two); // in [2, self-1)
                                                               // `self` is odd and > 3, so the modular ops cannot fail;
                                                               // treating a failure as composite is the conservative answer.
            let Ok(mut x) = a.mod_pow(&d, self) else {
                return false;
            };
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s.saturating_sub(1) {
                let Ok(sq) = x.mul_mod(&x, self) else {
                    return false;
                };
                x = sq;
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random prime with exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 2, "primes need at least 2 bits");
        loop {
            let mut candidate = Self::random_bits(bits, rng);
            // Force odd.
            if candidate.is_even() {
                candidate = candidate.add(&Self::one());
            }
            if candidate.bits() == bits && candidate.is_probable_prime(20, rng) {
                return candidate;
            }
        }
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let g = self.gcd(other);
        // gcd of two non-zero values is non-zero, so division cannot fail.
        self.div_rem(&g)
            .map(|(q, _)| q.mul(other))
            .unwrap_or_else(|_| Self::zero())
    }

    /// The lowest 64 bits of the value.
    pub(crate) fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }
}

/// `a - b` over (magnitude, negative?) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both positive. When the forward subtraction fails,
        // the reverse one cannot (strictly b > a).
        (false, false) => match a.0.checked_sub(&b.0) {
            Some(d) => (d, false),
            None => (b.0.checked_sub(&a.0).unwrap_or_else(BigUint::zero), true),
        },
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // -a - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // -a - (-b) = b - a
        (true, true) => match b.0.checked_sub(&a.0) {
            Some(d) => (d, false),
            None => (a.0.checked_sub(&b.0).unwrap_or_else(BigUint::zero), true),
        },
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "BigUint(0x0)");
        }
        write!(f, "BigUint(0x")?;
        for (i, l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        write!(f, ")")
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, prop_assert_eq, proptest};
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn construction_and_conversion() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(42).to_u64(), Some(42));
        assert_eq!(big(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(big(1 << 80).to_u64(), None);
        assert_eq!(BigUint::from_limbs(vec![5, 0, 0]).to_u64(), Some(5));
    }

    #[test]
    fn bits_counting() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from_u64(255).bits(), 8);
        assert_eq!(big(1u128 << 100).bits(), 101);
    }

    #[test]
    fn addition_with_carries() {
        let a = BigUint::from_u64(u64::MAX);
        let sum = a.add(&BigUint::one());
        assert_eq!(sum.to_u128(), Some(1u128 << 64));
        assert_eq!(big(u128::MAX).add(&BigUint::one()).bits(), 129);
    }

    #[test]
    fn subtraction() {
        assert_eq!(
            big(1u128 << 64)
                .checked_sub(&BigUint::one())
                .unwrap()
                .to_u128(),
            Some((1u128 << 64) - 1)
        );
        assert!(BigUint::one().checked_sub(&big(2)).is_none());
        assert!(big(5).checked_sub(&big(5)).unwrap().is_zero());
    }

    #[test]
    fn multiplication() {
        assert_eq!(
            big(u64::MAX as u128).mul(&big(u64::MAX as u128)).to_u128(),
            Some(u64::MAX as u128 * u64::MAX as u128)
        );
        assert!(big(0).mul(&big(123)).is_zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(64).to_u128(), Some(1u128 << 64));
        assert_eq!(big(1 << 64).shr(64).to_u64(), Some(1));
        assert_eq!(big(0b1011).shl(3).to_u64(), Some(0b1011000));
        assert_eq!(big(0b1011000).shr(3).to_u64(), Some(0b1011));
        assert!(big(7).shr(100).is_zero());
    }

    #[test]
    fn division() {
        let (q, r) = big(1000).div_rem(&big(7)).unwrap();
        assert_eq!(q.to_u64(), Some(142));
        assert_eq!(r.to_u64(), Some(6));
        assert!(big(3).div_rem(&BigUint::zero()).is_err());
        let (q, r) = big(5).div_rem(&big(10)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
        // Multi-limb divisor.
        let a = big(u128::MAX);
        let b = big(1u128 << 70);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.to_u128(), Some(u128::MAX >> 70));
        assert_eq!(r.to_u128(), Some(u128::MAX - (u128::MAX >> 70 << 70)));
    }

    #[test]
    fn mod_pow_known_values() {
        // 3^7 mod 10 = 7 (2187 mod 10)
        assert_eq!(big(3).mod_pow(&big(7), &big(10)).unwrap().to_u64(), Some(7));
        // Fermat: 2^(p-1) ≡ 1 mod p for prime p.
        let p = big(1_000_000_007);
        assert!(big(2).mod_pow(&big(1_000_000_006), &p).unwrap().is_one());
        assert!(big(5).mod_pow(&big(0), &big(7)).unwrap().is_one());
        assert!(big(5).mod_pow(&big(3), &BigUint::one()).unwrap().is_zero());
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(big(48).gcd(&big(18)).to_u64(), Some(6));
        assert_eq!(big(17).gcd(&big(13)).to_u64(), Some(1));
        assert_eq!(big(0).gcd(&big(5)).to_u64(), Some(5));
        assert_eq!(big(4).lcm(&big(6)).to_u64(), Some(12));
        assert!(big(0).lcm(&big(6)).is_zero());
    }

    #[test]
    fn mod_inverse_known() {
        // 3·5 = 15 ≡ 1 mod 7 → 3⁻¹ = 5
        assert_eq!(big(3).mod_inverse(&big(7)).unwrap().to_u64(), Some(5));
        // Not coprime → error.
        assert!(matches!(
            big(4).mod_inverse(&big(8)).unwrap_err(),
            CryptoError::NotInvertible
        ));
    }

    #[test]
    fn primality_known_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 31, 101, 65537, 1_000_000_007] {
            assert!(BigUint::from_u64(p).is_probable_prime(20, &mut rng), "{p}");
        }
        for c in [1u64, 4, 100, 65535, 1_000_000_006] {
            assert!(!BigUint::from_u64(c).is_probable_prime(20, &mut rng), "{c}");
        }
        // Carmichael number 561 = 3·11·17 must be rejected.
        assert!(!BigUint::from_u64(561).is_probable_prime(20, &mut rng));
    }

    #[test]
    fn prime_generation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p = BigUint::gen_prime(64, &mut rng);
        assert_eq!(p.bits(), 64);
        assert!(p.is_probable_prime(20, &mut rng));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bound = big(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&bound, &mut rng);
            assert!(v < bound);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
            let sum = big(a).add(&big(b));
            prop_assert_eq!(sum.checked_sub(&big(b)).unwrap(), big(a));
        }

        #[test]
        fn prop_div_rem_identity(a in 0u128..u128::MAX, b in 1u128..u128::MAX) {
            let (q, r) = big(a).div_rem(&big(b)).unwrap();
            prop_assert_eq!(q.mul(&big(b)).add(&r), big(a));
            prop_assert!(r < big(b));
        }

        #[test]
        fn prop_mod_pow_matches_u128(base in 0u64..1000, exp in 0u64..16, m in 2u64..10_000) {
            let expected = {
                let mut acc: u128 = 1;
                for _ in 0..exp {
                    acc = acc * base as u128 % m as u128;
                }
                acc as u64
            };
            let got = BigUint::from_u64(base)
                .mod_pow(&BigUint::from_u64(exp), &BigUint::from_u64(m))
                .unwrap();
            prop_assert_eq!(got.to_u64(), Some(expected));
        }

        #[test]
        fn prop_mod_inverse(a in 1u64..10_000) {
            // Prime modulus → every non-multiple is invertible.
            let p = 10_007u64;
            if a % p != 0 {
                let inv = BigUint::from_u64(a).mod_inverse(&BigUint::from_u64(p)).unwrap();
                let prod = BigUint::from_u64(a).mul_mod(&inv, &BigUint::from_u64(p)).unwrap();
                prop_assert!(prod.is_one());
            }
        }

        #[test]
        fn prop_gcd_divides(a in 1u128..u128::MAX, b in 1u128..u128::MAX) {
            let g = big(a).gcd(&big(b));
            prop_assert!(big(a).rem(&g).unwrap().is_zero());
            prop_assert!(big(b).rem(&g).unwrap().is_zero());
        }
    }
}
