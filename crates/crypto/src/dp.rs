//! Differential privacy: the Laplace mechanism (the paper's §V-B
//! reference \[70\], Dwork's survey).
//!
//! Used by the horizontal federated learning path to noise model updates
//! before they leave a silo.

use crate::{CryptoError, Result};
use rand::Rng;

/// Parameters of an (ε, 0)-differentially-private Laplace mechanism.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    /// L1 sensitivity of the released quantity.
    pub sensitivity: f64,
    /// Privacy budget ε.
    pub epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism, validating the parameters.
    ///
    /// # Errors
    /// [`CryptoError::InvalidParameter`] for non-positive ε or
    /// sensitivity.
    pub fn new(sensitivity: f64, epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CryptoError::InvalidParameter(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(CryptoError::InvalidParameter(format!(
                "sensitivity must be positive and finite, got {sensitivity}"
            )));
        }
        Ok(Self {
            sensitivity,
            epsilon,
        })
    }

    /// The Laplace scale `b = sensitivity / ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// One Laplace(0, b) sample via inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let b = self.scale();
        // u ∈ (−0.5, 0.5); X = −b·sign(u)·ln(1 − 2|u|)
        let u: f64 = rng.gen_range(-0.5..0.5);
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Adds independent Laplace noise to every element in place.
    pub fn privatize<R: Rng + ?Sized>(&self, values: &mut [f64], rng: &mut R) {
        for v in values {
            *v += self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(LaplaceMechanism::new(1.0, 0.5).is_ok());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::new(1.0, -1.0).is_err());
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(2.0, 0.5).unwrap();
        assert_eq!(m.scale(), 4.0);
    }

    #[test]
    fn samples_have_zero_mean_and_laplace_variance() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap(); // b = 1, var = 2b² = 2
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let spread = |eps: f64, rng: &mut rand::rngs::StdRng| {
            let m = LaplaceMechanism::new(1.0, eps).unwrap();
            (0..10_000).map(|_| m.sample(rng).abs()).sum::<f64>() / 10_000.0
        };
        let tight = spread(10.0, &mut rng);
        let loose = spread(0.1, &mut rng);
        assert!(loose > tight * 10.0, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn privatize_perturbs_in_place() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut v = vec![1.0; 16];
        m.privatize(&mut v, &mut rng);
        assert!(v.iter().any(|&x| x != 1.0));
    }
}
