//! Error type for cryptographic operations.

use std::fmt;

/// Convenience alias for crypto results.
pub type Result<T> = std::result::Result<T, CryptoError>;

/// Errors produced by the privacy substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A modular inverse does not exist (operand not coprime to modulus).
    NotInvertible,
    /// Division by zero.
    DivisionByZero,
    /// A plaintext value is outside the encodable range.
    PlaintextOutOfRange(String),
    /// Ciphertexts belong to different keys.
    KeyMismatch,
    /// Invalid parameter (key size, share counts, thresholds, ε ≤ 0, …).
    InvalidParameter(String),
    /// Not enough shares to reconstruct a secret.
    InsufficientShares {
        /// Threshold required.
        needed: usize,
        /// Shares provided.
        got: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::NotInvertible => write!(f, "value has no modular inverse"),
            CryptoError::DivisionByZero => write!(f, "division by zero"),
            CryptoError::PlaintextOutOfRange(m) => {
                write!(f, "plaintext out of range: {m}")
            }
            CryptoError::KeyMismatch => write!(f, "ciphertexts from different keys"),
            CryptoError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            CryptoError::InsufficientShares { needed, got } => {
                write!(f, "need {needed} shares, got {got}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CryptoError::NotInvertible.to_string().contains("inverse"));
        assert!(CryptoError::InsufficientShares { needed: 3, got: 1 }
            .to_string()
            .contains("3"));
    }
}
