//! Privacy substrate for federated Amalur (§V of the paper).
//!
//! "The common techniques for privacy-preserving in federated learning
//! and data integration include homomorphic encryption \[Paillier\],
//! secret sharing \[Shamir\] and differential privacy \[Dwork\]" — §V-B.
//! This crate implements all three from scratch:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (the offline
//!   crate set has no bignum), with modular exponentiation, inverses and
//!   Miller–Rabin primality testing;
//! * [`paillier`] — the Paillier additively homomorphic cryptosystem
//!   with fixed-point encoding of `f64` values;
//! * [`sharing`] — additive secret sharing over a 61-bit Mersenne prime
//!   field plus Shamir's threshold scheme;
//! * [`dp`] — the Laplace mechanism for differential privacy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
pub mod dp;
mod error;
pub mod paillier;
pub mod sharing;

pub use bigint::BigUint;
pub use error::{CryptoError, Result};
pub use paillier::{Ciphertext, KeyPair, PrivateKey, PublicKey};
