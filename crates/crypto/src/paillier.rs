//! The Paillier additively homomorphic cryptosystem.
//!
//! Cited by the paper (§V-B, reference \[67\]) as the homomorphic
//! encryption substrate of vertical federated learning: parties exchange
//! `Enc(uᵢ)` values that the orchestrator can *add* without decrypting.
//!
//! This implementation uses the standard `g = n + 1` simplification:
//! `Enc(m) = (1 + m·n) · rⁿ mod n²` and
//! `Dec(c) = L(c^λ mod n²) · λ⁻¹ mod n` with `L(x) = (x − 1) / n`.
//!
//! Real numbers are carried via fixed-point encoding (`scale` bits of
//! fraction) with negatives represented in the upper half of `Z_n`.

use crate::{BigUint, CryptoError, Result};
use rand::Rng;

/// Paillier public key (`n`, with `n²` cached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    /// Fixed-point fractional bits for f64 encoding.
    scale_bits: u32,
}

/// Paillier private key (`λ = lcm(p−1, q−1)` and `μ = λ⁻¹ mod n`).
#[derive(Debug, Clone)]
pub struct PrivateKey {
    lambda: BigUint,
    mu: BigUint,
    public: PublicKey,
}

/// A Paillier key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// The shareable public key.
    pub public: PublicKey,
    /// The secret decryption key.
    pub private: PrivateKey,
}

/// A Paillier ciphertext (an element of `Z_{n²}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    value: BigUint,
    /// `n` fingerprint to catch cross-key operations.
    key_bits: usize,
}

impl KeyPair {
    /// Generates a key pair with an ~`modulus_bits`-bit `n`.
    ///
    /// # Errors
    /// [`CryptoError::InvalidParameter`] for moduli under 16 bits (the
    /// fixed-point encoding needs headroom).
    pub fn generate<R: Rng + ?Sized>(modulus_bits: usize, rng: &mut R) -> Result<KeyPair> {
        Self::generate_with_scale(modulus_bits, 24, rng)
    }

    /// Generates a key pair with an explicit fixed-point scale.
    ///
    /// # Errors
    /// [`CryptoError::InvalidParameter`] on inadequate sizes.
    pub fn generate_with_scale<R: Rng + ?Sized>(
        modulus_bits: usize,
        scale_bits: u32,
        rng: &mut R,
    ) -> Result<KeyPair> {
        if modulus_bits < 16 {
            return Err(CryptoError::InvalidParameter(format!(
                "modulus of {modulus_bits} bits is too small"
            )));
        }
        let half = modulus_bits / 2;
        let (n, lambda) = loop {
            let p = BigUint::gen_prime(half, rng);
            let q = BigUint::gen_prime(modulus_bits - half, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            // gen_prime yields values >= 2, so p-1 / q-1 cannot underflow;
            // re-draw on the impossible branch rather than panic.
            let (Some(p1), Some(q1)) = (
                p.checked_sub(&BigUint::one()),
                q.checked_sub(&BigUint::one()),
            ) else {
                continue;
            };
            let lambda = p1.lcm(&q1);
            // g = n+1 requires gcd(n, λ) = 1, true for distinct primes.
            if !n.gcd(&lambda).is_one() {
                continue;
            }
            break (n, lambda);
        };
        let mu = lambda.mod_inverse(&n)?;
        let n_squared = n.mul(&n);
        let public = PublicKey {
            n,
            n_squared,
            scale_bits,
        };
        Ok(KeyPair {
            private: PrivateKey {
                lambda,
                mu,
                public: public.clone(),
            },
            public,
        })
    }
}

impl PublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Bits of the modulus.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }

    /// Encrypts an integer plaintext `m ∈ Z_n`.
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] when `m ≥ n`.
    pub fn encrypt_int<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Result<Ciphertext> {
        if m.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::PlaintextOutOfRange(format!(
                "{} bits >= modulus {} bits",
                m.bits(),
                self.n.bits()
            )));
        }
        // r uniform in [1, n) with gcd(r, n) = 1 (true w.h.p.).
        let r = loop {
            let candidate = BigUint::random_below(&self.n, rng);
            if !candidate.is_zero() && candidate.gcd(&self.n).is_one() {
                break candidate;
            }
        };
        // (1 + m·n) · rⁿ mod n²
        let gm = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared)?;
        let rn = r.mod_pow(&self.n, &self.n_squared)?;
        Ok(Ciphertext {
            value: gm.mul_mod(&rn, &self.n_squared)?,
            key_bits: self.n.bits(),
        })
    }

    /// Encrypts a float via fixed-point encoding; negatives map to the
    /// upper half of `Z_n`.
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] for non-finite or oversized
    /// values.
    pub fn encrypt_f64<R: Rng + ?Sized>(&self, x: f64, rng: &mut R) -> Result<Ciphertext> {
        self.encrypt_int(&self.encode_f64(x)?, rng)
    }

    /// Fixed-point encoding of `x` into `Z_n`.
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] for NaN/Inf or magnitudes
    /// that do not fit in a quarter of the modulus (headroom for sums).
    pub fn encode_f64(&self, x: f64) -> Result<BigUint> {
        if !x.is_finite() {
            return Err(CryptoError::PlaintextOutOfRange("non-finite".into()));
        }
        let scaled = x * (1u64 << self.scale_bits) as f64;
        let magnitude = scaled.abs();
        if magnitude >= 2f64.powi((self.modulus_bits() as i32 / 2).min(120)) {
            return Err(CryptoError::PlaintextOutOfRange(format!(
                "|{x}| too large for fixed-point range"
            )));
        }
        let int = BigUint::from_u128(magnitude.round() as u128);
        if scaled < 0.0 {
            // n − |v|
            Ok(self
                .n
                .checked_sub(&int)
                .ok_or_else(|| CryptoError::PlaintextOutOfRange("negative overflow".into()))?)
        } else {
            Ok(int)
        }
    }

    /// Decodes a fixed-point value from `Z_n` back to `f64`.
    pub fn decode_f64(&self, v: &BigUint) -> f64 {
        let half = self.n.shr(1);
        let scale = (1u64 << self.scale_bits) as f64;
        if v.cmp_big(&half) == std::cmp::Ordering::Greater {
            // Negative value. `v < n` for any decrypted residue; fall back
            // to the positive reading for out-of-range inputs.
            match self.n.checked_sub(v) {
                Some(mag) => -(biguint_to_f64(&mag) / scale),
                None => biguint_to_f64(v) / scale,
            }
        } else {
            biguint_to_f64(v) / scale
        }
    }

    /// Homomorphic addition `Enc(a) ⊕ Enc(b) = Enc(a + b)`.
    ///
    /// # Errors
    /// [`CryptoError::KeyMismatch`] across keys.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        if a.key_bits != b.key_bits || a.key_bits != self.n.bits() {
            return Err(CryptoError::KeyMismatch);
        }
        Ok(Ciphertext {
            value: a.value.mul_mod(&b.value, &self.n_squared)?,
            key_bits: a.key_bits,
        })
    }

    /// Homomorphic plaintext multiplication `Enc(a)^k = Enc(a · k)` for a
    /// non-negative integer `k`.
    ///
    /// # Errors
    /// [`CryptoError::KeyMismatch`] for foreign ciphertexts.
    pub fn mul_plain(&self, a: &Ciphertext, k: &BigUint) -> Result<Ciphertext> {
        if a.key_bits != self.n.bits() {
            return Err(CryptoError::KeyMismatch);
        }
        Ok(Ciphertext {
            value: a.value.mod_pow(k, &self.n_squared)?,
            key_bits: a.key_bits,
        })
    }
}

impl PrivateKey {
    /// Decrypts to the integer plaintext in `Z_n`.
    ///
    /// # Errors
    /// [`CryptoError::KeyMismatch`] for foreign ciphertexts.
    pub fn decrypt_int(&self, c: &Ciphertext) -> Result<BigUint> {
        let pk = &self.public;
        if c.key_bits != pk.n.bits() {
            return Err(CryptoError::KeyMismatch);
        }
        let x = c.value.mod_pow(&self.lambda, &pk.n_squared)?;
        // L(x) = (x − 1) / n. A well-formed ciphertext satisfies x ≥ 1;
        // x = 0 means the ciphertext was not produced by this key's
        // encryption map (e.g. a hand-built zero value).
        let l = x
            .checked_sub(&BigUint::one())
            .ok_or(CryptoError::KeyMismatch)?
            .div_rem(&pk.n)?
            .0;
        l.mul_mod(&self.mu, &pk.n)
    }

    /// Decrypts a fixed-point float.
    ///
    /// # Errors
    /// Same as [`Self::decrypt_int`].
    pub fn decrypt_f64(&self, c: &Ciphertext) -> Result<f64> {
        Ok(self.public.decode_f64(&self.decrypt_int(c)?))
    }

    /// The associated public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }
}

/// Lossy conversion for decoding (values decoded are ≪ 2^120 by the
/// encoding bound, well within f64's exponent range).
fn biguint_to_f64(v: &BigUint) -> f64 {
    let mut out = 0.0f64;
    let mut shift = 0i32;
    let mut cur = v.clone();
    while !cur.is_zero() {
        out += cur.low_u64() as f64 * 2f64.powi(shift);
        cur = cur.shr(64);
        shift += 64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn keys(bits: usize) -> KeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        KeyPair::generate(bits, &mut rng).unwrap()
    }

    #[test]
    fn roundtrip_int() {
        let kp = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for v in [0u64, 1, 42, 1_000_000] {
            let c = kp
                .public
                .encrypt_int(&BigUint::from_u64(v), &mut rng)
                .unwrap();
            assert_eq!(kp.private.decrypt_int(&c).unwrap().to_u64(), Some(v));
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = BigUint::from_u64(5);
        let c1 = kp.public.encrypt_int(&m, &mut rng).unwrap();
        let c2 = kp.public.encrypt_int(&m, &mut rng).unwrap();
        assert_ne!(c1, c2, "probabilistic encryption must differ");
        assert_eq!(
            kp.private.decrypt_int(&c1).unwrap(),
            kp.private.decrypt_int(&c2).unwrap()
        );
    }

    #[test]
    fn homomorphic_addition() {
        let kp = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = kp
            .public
            .encrypt_int(&BigUint::from_u64(30), &mut rng)
            .unwrap();
        let b = kp
            .public
            .encrypt_int(&BigUint::from_u64(12), &mut rng)
            .unwrap();
        let sum = kp.public.add(&a, &b).unwrap();
        assert_eq!(kp.private.decrypt_int(&sum).unwrap().to_u64(), Some(42));
    }

    #[test]
    fn homomorphic_plaintext_multiplication() {
        let kp = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = kp
            .public
            .encrypt_int(&BigUint::from_u64(7), &mut rng)
            .unwrap();
        let c = kp.public.mul_plain(&a, &BigUint::from_u64(6)).unwrap();
        assert_eq!(kp.private.decrypt_int(&c).unwrap().to_u64(), Some(42));
    }

    #[test]
    fn float_roundtrip_including_negatives() {
        let kp = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for x in [0.0, 1.5, -2.75, 1234.5678, -0.001] {
            let c = kp.public.encrypt_f64(x, &mut rng).unwrap();
            let back = kp.private.decrypt_f64(&c).unwrap();
            assert!((back - x).abs() < 1e-4, "{x} → {back}");
        }
    }

    #[test]
    fn float_homomorphic_sum_with_negatives() {
        let kp = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = kp.public.encrypt_f64(3.5, &mut rng).unwrap();
        let b = kp.public.encrypt_f64(-1.25, &mut rng).unwrap();
        let sum = kp.public.add(&a, &b).unwrap();
        assert!((kp.private.decrypt_f64(&sum).unwrap() - 2.25).abs() < 1e-4);
    }

    #[test]
    fn rejects_out_of_range() {
        let kp = keys(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let too_big = kp.public.modulus().clone();
        assert!(kp.public.encrypt_int(&too_big, &mut rng).is_err());
        assert!(kp.public.encrypt_f64(f64::NAN, &mut rng).is_err());
        assert!(kp.public.encrypt_f64(f64::INFINITY, &mut rng).is_err());
    }

    #[test]
    fn rejects_cross_key_operations() {
        let kp1 = keys(128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let kp2 = KeyPair::generate(96, &mut rng).unwrap();
        let c1 = kp1
            .public
            .encrypt_int(&BigUint::from_u64(1), &mut rng)
            .unwrap();
        let c2 = kp2
            .public
            .encrypt_int(&BigUint::from_u64(2), &mut rng)
            .unwrap();
        assert!(matches!(
            kp1.public.add(&c1, &c2).unwrap_err(),
            CryptoError::KeyMismatch
        ));
        assert!(kp2.private.decrypt_int(&c1).is_err());
    }

    #[test]
    fn tiny_modulus_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        assert!(KeyPair::generate(8, &mut rng).is_err());
    }

    #[test]
    fn larger_key_roundtrip() {
        // 512-bit keys (the benchmark default) still round-trip.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let kp = KeyPair::generate(512, &mut rng).unwrap();
        let c = kp.public.encrypt_f64(-98.6, &mut rng).unwrap();
        assert!((kp.private.decrypt_f64(&c).unwrap() + 98.6).abs() < 1e-4);
    }
}
