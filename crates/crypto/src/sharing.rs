//! Secret sharing over the Mersenne field `Z_p`, `p = 2⁶¹ − 1`.
//!
//! Two schemes:
//!
//! * [`additive`] — n-of-n additive sharing, the workhorse of secure
//!   aggregation in the federated protocols (shares sum to the secret;
//!   any proper subset is uniformly random);
//! * [`shamir`] — Shamir's t-of-n threshold scheme (the paper's
//!   reference \[68\]), polynomial interpolation over `Z_p`.
//!
//! Real values travel as fixed point via [`FixedPoint`].

use crate::{CryptoError, Result};
use rand::Rng;

/// The field prime `2⁶¹ − 1` (Mersenne; reduction is cheap and every
/// non-zero element is invertible).
pub const PRIME: u64 = (1 << 61) - 1;

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let s = a as u128 + b as u128;
    (s % PRIME as u128) as u64
}

#[inline]
fn sub_mod(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + PRIME - b
    }
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    (a as u128 * b as u128 % PRIME as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= PRIME;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse in `Z_p` (Fermat).
fn inv_mod(a: u64) -> Result<u64> {
    if a.is_multiple_of(PRIME) {
        return Err(CryptoError::NotInvertible);
    }
    Ok(pow_mod(a, PRIME - 2))
}

/// Fixed-point codec between `f64` and the field.
#[derive(Debug, Clone, Copy)]
pub struct FixedPoint {
    /// Fractional bits.
    pub scale_bits: u32,
}

impl Default for FixedPoint {
    fn default() -> Self {
        Self { scale_bits: 20 }
    }
}

impl FixedPoint {
    /// Encodes `x` into `Z_p` (negatives in the upper half).
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] for non-finite or oversized
    /// values (|scaled| must stay below `p/4` to leave headroom for
    /// aggregation).
    pub fn encode(&self, x: f64) -> Result<u64> {
        if !x.is_finite() {
            return Err(CryptoError::PlaintextOutOfRange("non-finite".into()));
        }
        let scaled = (x * (1u64 << self.scale_bits) as f64).round();
        if scaled.abs() >= (PRIME / 4) as f64 {
            return Err(CryptoError::PlaintextOutOfRange(format!(
                "{x} exceeds fixed-point range"
            )));
        }
        if scaled < 0.0 {
            Ok(PRIME - (-scaled) as u64)
        } else {
            Ok(scaled as u64)
        }
    }

    /// Decodes a field element back to `f64`.
    pub fn decode(&self, v: u64) -> f64 {
        let scale = (1u64 << self.scale_bits) as f64;
        if v > PRIME / 2 {
            -((PRIME - v) as f64 / scale)
        } else {
            v as f64 / scale
        }
    }
}

/// n-of-n additive secret sharing.
pub mod additive {
    use super::{add_mod, sub_mod, CryptoError, Result, Rng, PRIME};

    /// Splits `secret ∈ Z_p` into `n` shares summing to it.
    ///
    /// # Errors
    /// [`CryptoError::InvalidParameter`] for `n == 0`.
    pub fn share<R: Rng + ?Sized>(secret: u64, n: usize, rng: &mut R) -> Result<Vec<u64>> {
        if n == 0 {
            return Err(CryptoError::InvalidParameter("zero parties".into()));
        }
        let mut shares = Vec::with_capacity(n);
        let mut acc = 0u64;
        for _ in 0..n - 1 {
            let s = rng.gen_range(0..PRIME);
            acc = add_mod(acc, s);
            shares.push(s);
        }
        shares.push(sub_mod(secret % PRIME, acc));
        Ok(shares)
    }

    /// Reconstructs the secret from all shares.
    pub fn reconstruct(shares: &[u64]) -> u64 {
        shares.iter().fold(0u64, |acc, &s| add_mod(acc, s))
    }

    /// Adds two share vectors element-wise (share of the sum).
    ///
    /// # Errors
    /// [`CryptoError::InvalidParameter`] on length mismatch.
    pub fn add_shares(a: &[u64], b: &[u64]) -> Result<Vec<u64>> {
        if a.len() != b.len() {
            return Err(CryptoError::InvalidParameter(
                "share vectors of different party counts".into(),
            ));
        }
        Ok(a.iter().zip(b).map(|(&x, &y)| add_mod(x, y)).collect())
    }
}

/// Shamir t-of-n threshold sharing.
pub mod shamir {
    use super::{add_mod, inv_mod, mul_mod, sub_mod, CryptoError, Result, Rng, PRIME};

    /// A Shamir share: the evaluation `(x, f(x))`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Share {
        /// Evaluation point (party id, 1-based; never 0).
        pub x: u64,
        /// Polynomial value at `x`.
        pub y: u64,
    }

    /// Splits `secret` into `n` shares, any `threshold` of which
    /// reconstruct it.
    ///
    /// # Errors
    /// [`CryptoError::InvalidParameter`] when `threshold == 0`,
    /// `threshold > n` or `n ≥ p`.
    pub fn share<R: Rng + ?Sized>(
        secret: u64,
        threshold: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Share>> {
        if threshold == 0 || threshold > n {
            return Err(CryptoError::InvalidParameter(format!(
                "threshold {threshold} not in 1..={n}"
            )));
        }
        if n as u64 >= PRIME {
            return Err(CryptoError::InvalidParameter("too many parties".into()));
        }
        // f(x) = secret + a₁x + … + a_{t−1}x^{t−1}
        let coeffs: Vec<u64> = std::iter::once(secret % PRIME)
            .chain((1..threshold).map(|_| rng.gen_range(0..PRIME)))
            .collect();
        Ok((1..=n as u64)
            .map(|x| {
                // Horner evaluation.
                let y = coeffs
                    .iter()
                    .rev()
                    .fold(0u64, |acc, &c| add_mod(mul_mod(acc, x), c));
                Share { x, y }
            })
            .collect())
    }

    /// Reconstructs the secret (the polynomial at 0) by Lagrange
    /// interpolation from at least `threshold` shares.
    ///
    /// # Errors
    /// [`CryptoError::InsufficientShares`] with fewer than `threshold`
    /// shares; [`CryptoError::InvalidParameter`] on duplicate points.
    pub fn reconstruct(shares: &[Share], threshold: usize) -> Result<u64> {
        if shares.len() < threshold {
            return Err(CryptoError::InsufficientShares {
                needed: threshold,
                got: shares.len(),
            });
        }
        let pts = &shares[..threshold];
        for (i, a) in pts.iter().enumerate() {
            if pts[..i].iter().any(|b| b.x == a.x) {
                return Err(CryptoError::InvalidParameter(format!(
                    "duplicate share point x = {}",
                    a.x
                )));
            }
        }
        let mut secret = 0u64;
        for (i, si) in pts.iter().enumerate() {
            // Lagrange basis at 0: Π_{j≠i} x_j / (x_j − x_i)
            let mut num = 1u64;
            let mut den = 1u64;
            for (j, sj) in pts.iter().enumerate() {
                if i == j {
                    continue;
                }
                num = mul_mod(num, sj.x);
                den = mul_mod(den, sub_mod(sj.x, si.x));
            }
            let basis = mul_mod(num, inv_mod(den)?);
            secret = add_mod(secret, mul_mod(si.y, basis));
        }
        Ok(secret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, prop_assert_eq, proptest};
    use rand::SeedableRng;

    #[test]
    fn field_ops() {
        assert_eq!(add_mod(PRIME - 1, 2), 1);
        assert_eq!(sub_mod(0, 1), PRIME - 1);
        assert_eq!(mul_mod(2, PRIME - 1), PRIME - 2);
        let inv = inv_mod(12345).unwrap();
        assert_eq!(mul_mod(12345, inv), 1);
        assert!(inv_mod(0).is_err());
    }

    #[test]
    fn fixed_point_roundtrip() {
        let fp = FixedPoint::default();
        for x in [0.0, 1.0, -1.0, 3.25, -2.75, 1e6, -1e6] {
            let back = fp.decode(fp.encode(x).unwrap());
            assert!((back - x).abs() < 1e-5, "{x} → {back}");
        }
        assert!(fp.encode(f64::NAN).is_err());
        assert!(fp.encode(1e18).is_err());
    }

    #[test]
    fn additive_share_reconstruct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let fp = FixedPoint::default();
        let secret = fp.encode(-7.25).unwrap();
        let shares = additive::share(secret, 4, &mut rng).unwrap();
        assert_eq!(shares.len(), 4);
        assert_eq!(additive::reconstruct(&shares), secret);
        assert!((fp.decode(additive::reconstruct(&shares)) + 7.25).abs() < 1e-5);
    }

    #[test]
    fn additive_single_party_degenerates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let shares = additive::share(99, 1, &mut rng).unwrap();
        assert_eq!(shares, vec![99]);
        assert!(additive::share(1, 0, &mut rng).is_err());
    }

    #[test]
    fn additive_shares_hide_the_secret() {
        // Any n−1 shares are uniform: with a different secret, the first
        // n−1 shares under the same RNG stream are identical.
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(3);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(3);
        let a = additive::share(1, 3, &mut rng1).unwrap();
        let b = additive::share(1_000_000, 3, &mut rng2).unwrap();
        assert_eq!(a[..2], b[..2]);
        assert_ne!(a[2], b[2]);
    }

    #[test]
    fn additive_homomorphic_sum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let fp = FixedPoint::default();
        let sa = additive::share(fp.encode(2.5).unwrap(), 3, &mut rng).unwrap();
        let sb = additive::share(fp.encode(-1.0).unwrap(), 3, &mut rng).unwrap();
        let sum = additive::add_shares(&sa, &sb).unwrap();
        assert!((fp.decode(additive::reconstruct(&sum)) - 1.5).abs() < 1e-5);
        assert!(additive::add_shares(&sa, &sb[..2]).is_err());
    }

    #[test]
    fn shamir_share_reconstruct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let shares = shamir::share(424242, 3, 5, &mut rng).unwrap();
        assert_eq!(shares.len(), 5);
        // Any 3 shares reconstruct.
        assert_eq!(shamir::reconstruct(&shares[..3], 3).unwrap(), 424242);
        assert_eq!(shamir::reconstruct(&shares[2..], 3).unwrap(), 424242);
        // Fewer fail.
        assert!(matches!(
            shamir::reconstruct(&shares[..2], 3).unwrap_err(),
            CryptoError::InsufficientShares { needed: 3, got: 2 }
        ));
    }

    #[test]
    fn shamir_duplicate_points_rejected() {
        let s = shamir::Share { x: 1, y: 10 };
        assert!(shamir::reconstruct(&[s, s], 2).is_err());
    }

    #[test]
    fn shamir_invalid_params() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        assert!(shamir::share(1, 0, 3, &mut rng).is_err());
        assert!(shamir::share(1, 4, 3, &mut rng).is_err());
    }

    #[test]
    fn shamir_wrong_subset_of_two_of_three_fails_quietly() {
        // 2 shares of a threshold-3 polynomial give a *wrong* secret if
        // force-reconstructed with threshold 2 — verifying the scheme
        // actually depends on the threshold.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let shares = shamir::share(555, 3, 5, &mut rng).unwrap();
        let wrong = shamir::reconstruct(&shares[..2], 2).unwrap();
        assert_ne!(wrong, 555);
    }

    proptest! {
        #[test]
        fn prop_additive_roundtrip(secret in 0u64..PRIME, n in 1usize..8, seed in 0u64..u64::MAX) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let shares = additive::share(secret, n, &mut rng).unwrap();
            prop_assert_eq!(additive::reconstruct(&shares), secret);
        }

        #[test]
        fn prop_shamir_roundtrip(
            secret in 0u64..PRIME, t in 1usize..5, extra in 0usize..4, seed in 0u64..u64::MAX,
        ) {
            let n = t + extra;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let shares = shamir::share(secret, t, n, &mut rng).unwrap();
            prop_assert_eq!(shamir::reconstruct(&shares[extra..], t).unwrap(), secret);
        }

        #[test]
        fn prop_fixed_point_additivity(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let fp = FixedPoint::default();
            let ea = fp.encode(a).unwrap();
            let eb = fp.encode(b).unwrap();
            let sum = fp.decode(add_mod(ea, eb));
            prop_assert!((sum - (a + b)).abs() < 1e-4);
        }
    }
}
