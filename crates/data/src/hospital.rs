//! The hospital running example (Figure 2), small and scaled.

use amalur_relational::{DataType, Table, TableBuilder, Value};
use rand::Rng;
use rand::SeedableRng;

/// `S1(m, n, a, hr)` — the ER department's base table of Figure 2a.
///
/// Rows: Jack, Sam, Ruby, Jane.
pub fn s1() -> Table {
    TableBuilder::new(
        "S1",
        &[
            ("m", DataType::Int64),
            ("n", DataType::Utf8),
            ("a", DataType::Float64),
            ("hr", DataType::Float64),
        ],
    )
    .expect("static schema")
    .row(vec![0.into(), "Jack".into(), 20.0.into(), 60.0.into()])
    .expect("static row")
    .row(vec![1.into(), "Sam".into(), 35.0.into(), 58.0.into()])
    .expect("static row")
    .row(vec![0.into(), "Ruby".into(), 22.0.into(), 65.0.into()])
    .expect("static row")
    .row(vec![1.into(), "Jane".into(), 37.0.into(), 70.0.into()])
    .expect("static row")
    .build()
}

/// `S2(m, n, a, o, dd)` — the pulmonary department's table of Figure 2b.
///
/// Rows: Rose, Castiel, Jane (the shared entity).
pub fn s2() -> Table {
    TableBuilder::new(
        "S2",
        &[
            ("m", DataType::Int64),
            ("n", DataType::Utf8),
            ("a", DataType::Float64),
            ("o", DataType::Float64),
            ("dd", DataType::Utf8),
        ],
    )
    .expect("static schema")
    .row(vec![
        1.into(),
        "Rose".into(),
        45.0.into(),
        95.0.into(),
        "1/4/21".into(),
    ])
    .expect("static row")
    .row(vec![
        0.into(),
        "Castiel".into(),
        20.0.into(),
        97.0.into(),
        "3/8/22".into(),
    ])
    .expect("static row")
    .row(vec![
        1.into(),
        "Jane".into(),
        37.0.into(),
        92.0.into(),
        "11/5/21".into(),
    ])
    .expect("static row")
    .build()
}

/// Generates scaled hospital silos with the Figure 2 schemas.
///
/// * `n_er` patients in the ER table, `n_pulmonary` in the pulmonary one;
/// * `overlap` of them appear in both (same name, consistent age/label).
///
/// Mortality is planted as a noisy logistic function of age, resting
/// heart rate and blood oxygen, so trained models beat chance and feature
/// augmentation (adding `o`) measurably helps.
///
/// # Panics
/// Panics when `overlap > n_er.min(n_pulmonary)`.
pub fn scaled_silos(n_er: usize, n_pulmonary: usize, overlap: usize, seed: u64) -> (Table, Table) {
    assert!(
        overlap <= n_er.min(n_pulmonary),
        "overlap {overlap} exceeds table sizes ({n_er}, {n_pulmonary})"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut er = TableBuilder::new(
        "S1",
        &[
            ("m", DataType::Int64),
            ("n", DataType::Utf8),
            ("a", DataType::Float64),
            ("hr", DataType::Float64),
        ],
    )
    .expect("static schema");
    let mut pulmonary = TableBuilder::new(
        "S2",
        &[
            ("m", DataType::Int64),
            ("n", DataType::Utf8),
            ("a", DataType::Float64),
            ("o", DataType::Float64),
            ("dd", DataType::Utf8),
        ],
    )
    .expect("static schema");

    let patient = |rng: &mut rand::rngs::StdRng, id: usize| {
        let age: f64 = rng.gen_range(18.0..90.0);
        let hr: f64 = rng.gen_range(50.0..110.0);
        let oxygen: f64 = rng.gen_range(80.0..100.0);
        // Planted signal: older / faster heart / lower oxygen → risk.
        let logit = 0.06 * (age - 55.0) + 0.04 * (hr - 80.0) - 0.15 * (oxygen - 92.0)
            + rng.gen_range(-1.0..1.0);
        let m = i64::from(logit > 0.0);
        (format!("patient{id}"), m, age, hr, oxygen)
    };

    // Shared patients first: appear in both silos with consistent values.
    for id in 0..overlap {
        let (name, m, age, hr, oxygen) = patient(&mut rng, id);
        er = er
            .row(vec![m.into(), name.clone().into(), age.into(), hr.into()])
            .expect("generated row");
        pulmonary = pulmonary
            .row(vec![
                m.into(),
                name.into(),
                age.into(),
                oxygen.into(),
                format!("{}/{}/21", rng.gen_range(1..13), rng.gen_range(1..29)).into(),
            ])
            .expect("generated row");
    }
    for id in overlap..n_er {
        let (name, m, age, hr, _) = patient(&mut rng, 1_000_000 + id);
        er = er
            .row(vec![m.into(), name.into(), age.into(), hr.into()])
            .expect("generated row");
    }
    for id in overlap..n_pulmonary {
        let (name, m, age, _, oxygen) = patient(&mut rng, 2_000_000 + id);
        pulmonary = pulmonary
            .row(vec![
                m.into(),
                name.into(),
                age.into(),
                oxygen.into(),
                Value::Null,
            ])
            .expect("generated row");
    }
    (er.build(), pulmonary.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_tables_are_exact() {
        let t1 = s1();
        assert_eq!(t1.num_rows(), 4);
        assert_eq!(t1.schema().names(), vec!["m", "n", "a", "hr"]);
        assert_eq!(t1.value(3, "n").unwrap(), "Jane".into());
        assert_eq!(t1.value(3, "hr").unwrap(), Value::Float(70.0));

        let t2 = s2();
        assert_eq!(t2.num_rows(), 3);
        assert_eq!(t2.schema().names(), vec!["m", "n", "a", "o", "dd"]);
        assert_eq!(t2.value(2, "n").unwrap(), "Jane".into());
        assert_eq!(t2.value(2, "o").unwrap(), Value::Float(92.0));
    }

    #[test]
    fn scaled_silos_respect_sizes_and_overlap() {
        let (er, pulm) = scaled_silos(100, 60, 25, 7);
        assert_eq!(er.num_rows(), 100);
        assert_eq!(pulm.num_rows(), 60);
        // First `overlap` names are shared.
        for i in 0..25 {
            assert_eq!(er.value(i, "n").unwrap(), pulm.value(i, "n").unwrap());
            assert_eq!(er.value(i, "a").unwrap(), pulm.value(i, "a").unwrap());
            assert_eq!(er.value(i, "m").unwrap(), pulm.value(i, "m").unwrap());
        }
        // Non-overlapping names differ.
        assert_ne!(er.value(30, "n").unwrap(), pulm.value(30, "n").unwrap());
    }

    #[test]
    fn scaled_silos_deterministic_per_seed() {
        let (a1, _) = scaled_silos(20, 10, 5, 3);
        let (a2, _) = scaled_silos(20, 10, 5, 3);
        assert_eq!(a1.value(7, "a").unwrap(), a2.value(7, "a").unwrap());
        let (b, _) = scaled_silos(20, 10, 5, 4);
        assert_ne!(a1.value(7, "a").unwrap(), b.value(7, "a").unwrap());
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let (er, _) = scaled_silos(300, 50, 10, 11);
        let mut zeros = 0;
        let mut ones = 0;
        for i in 0..er.num_rows() {
            match er.value(i, "m").unwrap() {
                Value::Int(0) => zeros += 1,
                Value::Int(1) => ones += 1,
                other => panic!("non-binary label {other:?}"),
            }
        }
        assert!(zeros > 30 && ones > 30, "labels too skewed: {zeros}/{ones}");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn excessive_overlap_panics() {
        scaled_silos(10, 5, 6, 0);
    }
}
