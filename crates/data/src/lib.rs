//! Synthetic silo generators.
//!
//! The paper evaluates on synthetic configurations (footnote 3) and
//! motivates Amalur with silo scenarios — hospital departments (Fig. 2),
//! drug-risk prediction across clinics/pharmacies/labs, and keyboard
//! stroke prediction across phones (§I). None of those datasets are
//! public, so this crate generates controlled equivalents:
//!
//! * [`hospital`] — the exact Figure 2 tables plus arbitrarily large
//!   versions with the same schema and controllable entity overlap.
//! * [`synthetic`] — matrix-level two-source generators exposing exactly
//!   the knobs of the paper's experiment: source shapes, row/column
//!   overlap, PK–FK fan-out (target redundancy) and duplicated entities
//!   (source redundancy).
//! * [`workloads`] — the drug-risk (vertical) and keyboard (horizontal)
//!   motivating scenarios as relational silo sets with planted signal, so
//!   the examples train models that actually learn something.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hospital;
pub mod synthetic;
pub mod workloads;

pub use synthetic::{generate_two_source, TwoSourceSpec};
