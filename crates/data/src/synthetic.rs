//! Matrix-level two-source generator for the footnote-3 experiments.
//!
//! The Table III experiment varies: source shapes (`c_S1 = 1`,
//! `c_S2 = 100`, `r_S2 = 0.2 · r_S1`), whether the *target* table contains
//! redundancy (PK–FK fan-out duplicating dimension tuples) and whether the
//! *sources* contain redundancy (repeated entities within a source).
//! [`TwoSourceSpec`] exposes exactly those knobs and produces DI metadata
//! plus data matrices directly — no relational detour — so the benchmark
//! ladder can scale to hundreds of thousands of rows.

use amalur_integration::{
    DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, Result, SourceMetadata,
};
use amalur_matrix::{DenseMatrix, NO_MATCH};
use rand::Rng;
use rand::SeedableRng;

/// Parameters of a two-source silo configuration.
#[derive(Debug, Clone)]
pub struct TwoSourceSpec {
    /// Rows of the base (fact/entity) table `S1`.
    pub rows_s1: usize,
    /// Feature columns of `S1`.
    pub cols_s1: usize,
    /// Rows of the joined (dimension/augmenting) table `S2`.
    pub rows_s2: usize,
    /// Feature columns of `S2`.
    pub cols_s2: usize,
    /// Number of feature columns shared by both sources (mapped onto the
    /// same target columns; values kept consistent on matched rows).
    pub shared_cols: usize,
    /// `true` → PK–FK fan-out (left-join shape): the target keeps all
    /// `rows_s1` rows and every `S1` row links to an `S2` row
    /// (`i % rows_s2`), so each `S2` tuple repeats ≈ `rows_s1 / rows_s2`
    /// times in the target — *redundancy in the target table*.
    ///
    /// `false` → inner-join shape with 1:1 matching: the target shrinks to
    /// the matched rows only, so it contains *no more* redundancy than the
    /// sources — the Example IV.1 situation where materialization is
    /// expected to win.
    pub target_redundancy: bool,
    /// Fraction of the potential 1:1 matches realized when
    /// `target_redundancy` is off.
    pub row_coverage: f64,
    /// `true` → half of each source's rows are duplicates of the other
    /// half — *redundancy in the source tables*.
    pub source_redundancy: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwoSourceSpec {
    fn default() -> Self {
        Self {
            rows_s1: 1000,
            cols_s1: 1,
            rows_s2: 200,
            cols_s2: 100,
            shared_cols: 0,
            target_redundancy: true,
            row_coverage: 1.0,
            source_redundancy: false,
            seed: 42,
        }
    }
}

impl TwoSourceSpec {
    /// The footnote-3 configuration: `c_S1 = 1`, `c_S2 = 100`,
    /// `r_S2 = 0.2 · r_S1`, with the two redundancy flags.
    pub fn footnote3(
        rows_s1: usize,
        target_redundancy: bool,
        source_redundancy: bool,
        seed: u64,
    ) -> Self {
        Self {
            rows_s1,
            cols_s1: 1,
            rows_s2: (rows_s1 / 5).max(1),
            cols_s2: 100,
            shared_cols: 0,
            target_redundancy,
            row_coverage: 1.0,
            source_redundancy,
            seed,
        }
    }
}

/// Generates the DI metadata and source matrices for a [`TwoSourceSpec`].
///
/// Target layout: rows follow `S1` (left-join shape), columns are
/// `S1`'s features followed by `S2`'s non-shared features.
///
/// # Errors
/// Propagates metadata-construction errors (only possible with degenerate
/// specs, e.g. `shared_cols` exceeding a source's column count).
pub fn generate_two_source(spec: &TwoSourceSpec) -> Result<(DiMetadata, Vec<DenseMatrix>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let shared = spec.shared_cols.min(spec.cols_s1).min(spec.cols_s2);
    let c_t = spec.cols_s1 + spec.cols_s2 - shared;

    // --- data ------------------------------------------------------------
    let mut d1 = random_source(spec.rows_s1, spec.cols_s1, spec.source_redundancy, &mut rng);
    let d2 = random_source(spec.rows_s2, spec.cols_s2, spec.source_redundancy, &mut rng);

    // --- row alignment -----------------------------------------------------
    let (r_t, ci1, ci2): (usize, Vec<i64>, Vec<i64>) = if spec.target_redundancy {
        // Left-join shape with PK–FK fan-out: target = all S1 rows.
        let r_t = spec.rows_s1;
        (
            r_t,
            (0..r_t as i64).collect(),
            (0..r_t).map(|i| (i % spec.rows_s2) as i64).collect(),
        )
    } else {
        // Inner-join shape, 1:1: target = matched rows only.
        let covered = ((spec.rows_s1 as f64 * spec.row_coverage) as usize)
            .min(spec.rows_s1)
            .min(spec.rows_s2)
            .max(1);
        (
            covered,
            (0..covered as i64).collect(),
            (0..covered as i64).collect(),
        )
    };

    // --- column mapping ----------------------------------------------------
    // Target cols [0, cols_s1) ← S1; the first `shared` of them also ← S2;
    // target cols [cols_s1, c_t) ← S2's non-shared columns.
    let cm1: Vec<i64> = (0..c_t)
        .map(|t| if t < spec.cols_s1 { t as i64 } else { NO_MATCH })
        .collect();
    let cm2: Vec<i64> = (0..c_t)
        .map(|t| {
            if t < shared {
                t as i64
            } else if t >= spec.cols_s1 {
                (t - spec.cols_s1 + shared) as i64
            } else {
                NO_MATCH
            }
        })
        .collect();

    // Consistent shared values: matched S1 rows copy S2's shared columns
    // (S2 is authoritative here so fan-out duplicates stay identical).
    for (i, &j) in ci2.iter().enumerate() {
        if j == NO_MATCH {
            continue;
        }
        for c in 0..shared {
            let v = d2.get(j as usize, c);
            d1.set(i, c, v);
        }
    }

    let mapping1 = MappingMatrix::new(cm1, spec.cols_s1)?;
    let mapping2 = MappingMatrix::new(cm2, spec.cols_s2)?;
    let indicator1 = IndicatorMatrix::new(ci1, spec.rows_s1)?;
    let indicator2 = IndicatorMatrix::new(ci2, spec.rows_s2)?;
    let redundancy1 = RedundancyMatrix::all_ones(r_t, c_t);
    let redundancy2 =
        RedundancyMatrix::against_earlier(&[(&indicator1, &mapping1)], &indicator2, &mapping2)?;

    let metadata = DiMetadata {
        target_columns: (0..c_t).map(|i| format!("f{i}")).collect(),
        target_rows: r_t,
        sources: vec![
            SourceMetadata {
                name: "S1".into(),
                mapped_columns: (0..spec.cols_s1).map(|i| format!("s1_{i}")).collect(),
                mapping: mapping1,
                indicator: indicator1,
                redundancy: redundancy1,
            },
            SourceMetadata {
                name: "S2".into(),
                mapped_columns: (0..spec.cols_s2).map(|i| format!("s2_{i}")).collect(),
                mapping: mapping2,
                indicator: indicator2,
                redundancy: redundancy2,
            },
        ],
    };
    metadata.validate()?;
    Ok((metadata, vec![d1, d2]))
}

/// Random matrix; with `duplicated`, the second half repeats the first.
fn random_source(
    rows: usize,
    cols: usize,
    duplicated: bool,
    rng: &mut rand::rngs::StdRng,
) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    let distinct = if duplicated { rows.div_ceil(2) } else { rows };
    for i in 0..distinct {
        for j in 0..cols {
            m.set(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    if duplicated {
        for i in distinct..rows {
            for j in 0..cols {
                let v = m.get(i - distinct, j);
                m.set(i, j, v);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote3_shapes() {
        let spec = TwoSourceSpec::footnote3(1000, true, false, 1);
        assert_eq!(spec.rows_s2, 200);
        assert_eq!(spec.cols_s1, 1);
        assert_eq!(spec.cols_s2, 100);
        let (md, data) = generate_two_source(&spec).unwrap();
        assert_eq!(md.target_rows, 1000);
        assert_eq!(md.target_cols(), 101);
        assert_eq!(data[0].shape(), (1000, 1));
        assert_eq!(data[1].shape(), (200, 100));
    }

    #[test]
    fn fanout_repeats_dimension_rows() {
        let spec = TwoSourceSpec::footnote3(100, true, false, 2);
        let (md, _) = generate_two_source(&spec).unwrap();
        let ci2 = md.sources[1].indicator.compressed();
        // Row 0 and row 20 of S2 both appear 5 times.
        assert_eq!(ci2[0], 0);
        assert_eq!(ci2[20], 0);
        assert_eq!(ci2.iter().filter(|&&j| j == 0).count(), 5);
    }

    #[test]
    fn no_target_redundancy_is_one_to_one() {
        let spec = TwoSourceSpec::footnote3(100, false, false, 3);
        let (md, _) = generate_two_source(&spec).unwrap();
        let ci2 = md.sources[1].indicator.compressed();
        let matched: Vec<i64> = ci2.iter().copied().filter(|&j| j != NO_MATCH).collect();
        // Each S2 row used at most once.
        let mut sorted = matched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), matched.len());
        assert_eq!(matched.len(), 20); // min(rows_s2, coverage·r_t)
    }

    #[test]
    fn source_redundancy_duplicates_rows() {
        let spec = TwoSourceSpec {
            rows_s1: 10,
            cols_s1: 3,
            source_redundancy: true,
            ..TwoSourceSpec::default()
        };
        let (_, data) = generate_two_source(&spec).unwrap();
        let d1 = &data[0];
        for j in 0..3 {
            assert_eq!(d1.get(0, j), d1.get(5, j));
        }
    }

    #[test]
    fn shared_columns_are_consistent() {
        let spec = TwoSourceSpec {
            rows_s1: 50,
            cols_s1: 4,
            rows_s2: 10,
            cols_s2: 6,
            shared_cols: 2,
            target_redundancy: true,
            ..TwoSourceSpec::default()
        };
        let (md, data) = generate_two_source(&spec).unwrap();
        assert_eq!(md.target_cols(), 4 + 6 - 2);
        let ci2 = md.sources[1].indicator.compressed();
        for (i, &j) in ci2.iter().enumerate() {
            if j == NO_MATCH {
                continue;
            }
            for c in 0..2 {
                assert_eq!(data[0].get(i, c), data[1].get(j as usize, c));
            }
        }
        // Redundancy matrix knocks out the shared cells of matched rows.
        assert!(md.sources[1].redundancy.zero_count() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TwoSourceSpec::footnote3(100, true, false, 9);
        let (_, a) = generate_two_source(&spec).unwrap();
        let (_, b) = generate_two_source(&spec).unwrap();
        assert_eq!(a[1], b[1]);
    }

    #[test]
    fn coverage_controls_match_count() {
        let spec = TwoSourceSpec {
            rows_s1: 100,
            rows_s2: 100,
            target_redundancy: false,
            row_coverage: 0.3,
            ..TwoSourceSpec::default()
        };
        let (md, _) = generate_two_source(&spec).unwrap();
        let matched = md.sources[1]
            .indicator
            .compressed()
            .iter()
            .filter(|&&j| j != NO_MATCH)
            .count();
        assert_eq!(matched, 30);
    }
}
