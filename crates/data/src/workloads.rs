//! Motivating-scenario datasets (§I of the paper).
//!
//! * [`drug_risk_silos`] — "the features can reside in datasets collected
//!   from clinics, hospitals, pharmacies, and laboratories": a vertical
//!   split of one patient population across four silos sharing a patient
//!   id, with a planted adverse-event signal. The natural VFL / feature
//!   augmentation workload (inner-join shape).
//! * [`keyboard_silos`] — "training models for keyboard stroke prediction
//!   requires data from millions of phones": a horizontal split where
//!   every phone holds the same feature schema over disjoint users. The
//!   natural HFL workload (union shape).

use amalur_relational::{DataType, Table, TableBuilder};
use rand::Rng;
use rand::SeedableRng;

/// Generates four vertically-partitioned silos for drug-risk prediction:
/// `clinic(pid, label, age, weight)`, `hospital(pid, sbp, dbp)`,
/// `pharmacy(pid, dose, n_drugs)`, `lab(pid, creatinine, alt)`.
///
/// All silos describe the same `n` patients (shared `pid`), possibly with
/// a fraction dropped per silo (`missing`), and the binary adverse-event
/// label in the clinic table depends on features from *all* silos — so
/// joining silos measurably improves a classifier.
pub fn drug_risk_silos(n: usize, missing: f64, seed: u64) -> Vec<Table> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut patients = Vec::with_capacity(n);
    for pid in 0..n {
        let age: f64 = rng.gen_range(20.0..90.0);
        let weight: f64 = rng.gen_range(45.0..120.0);
        let sbp: f64 = rng.gen_range(95.0..180.0);
        let dbp: f64 = sbp - rng.gen_range(30.0..60.0);
        let dose: f64 = rng.gen_range(1.0..12.0);
        let n_drugs: i64 = rng.gen_range(1..9);
        let creatinine: f64 = rng.gen_range(0.5..2.5);
        let alt: f64 = rng.gen_range(10.0..80.0);
        // Planted adverse-event signal spanning all silos.
        let logit = 0.04 * (age - 60.0)
            + 0.35 * (dose - 6.0)
            + 1.2 * (creatinine - 1.4)
            + 0.25 * (n_drugs as f64 - 4.0)
            + 0.02 * (sbp - 135.0)
            + rng.gen_range(-1.5..1.5);
        let label = i64::from(logit > 0.0);
        patients.push((
            pid as i64, label, age, weight, sbp, dbp, dose, n_drugs, creatinine, alt,
        ));
    }

    let keep = |rng: &mut rand::rngs::StdRng| !rng.gen_bool(missing);
    let mut clinic = TableBuilder::new(
        "clinic",
        &[
            ("pid", DataType::Int64),
            ("adverse_event", DataType::Int64),
            ("age", DataType::Float64),
            ("weight", DataType::Float64),
        ],
    )
    .expect("static schema");
    let mut hospital = TableBuilder::new(
        "hospital",
        &[
            ("pid", DataType::Int64),
            ("sbp", DataType::Float64),
            ("dbp", DataType::Float64),
        ],
    )
    .expect("static schema");
    let mut pharmacy = TableBuilder::new(
        "pharmacy",
        &[
            ("pid", DataType::Int64),
            ("dose", DataType::Float64),
            ("n_drugs", DataType::Int64),
        ],
    )
    .expect("static schema");
    let mut lab = TableBuilder::new(
        "lab",
        &[
            ("pid", DataType::Int64),
            ("creatinine", DataType::Float64),
            ("alt", DataType::Float64),
        ],
    )
    .expect("static schema");

    for &(pid, label, age, weight, sbp, dbp, dose, n_drugs, creatinine, alt) in &patients {
        // The clinic (label holder) keeps everyone; other silos may miss
        // patients, which is what makes the inner/left distinction matter.
        clinic = clinic
            .row(vec![pid.into(), label.into(), age.into(), weight.into()])
            .expect("generated row");
        if keep(&mut rng) {
            hospital = hospital
                .row(vec![pid.into(), sbp.into(), dbp.into()])
                .expect("generated row");
        }
        if keep(&mut rng) {
            pharmacy = pharmacy
                .row(vec![pid.into(), dose.into(), n_drugs.into()])
                .expect("generated row");
        }
        if keep(&mut rng) {
            lab = lab
                .row(vec![pid.into(), creatinine.into(), alt.into()])
                .expect("generated row");
        }
    }
    vec![
        clinic.build(),
        hospital.build(),
        pharmacy.build(),
        lab.build(),
    ]
}

/// Generates `n_phones` horizontally-partitioned silos for keyboard
/// next-stroke timing prediction. Every phone table has the schema
/// `(uid, dwell_ms, flight_ms, pressure, x, y, next_flight_ms)` over its
/// own disjoint users; the regression target `next_flight_ms` depends
/// linearly on the features (with noise), identically across phones —
/// the i.i.d. HFL setting.
pub fn keyboard_silos(n_phones: usize, rows_per_phone: usize, seed: u64) -> Vec<Table> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_phones);
    let mut uid = 0i64;
    for phone in 0..n_phones {
        let mut t = TableBuilder::new(
            format!("phone{phone}"),
            &[
                ("uid", DataType::Int64),
                ("dwell_ms", DataType::Float64),
                ("flight_ms", DataType::Float64),
                ("pressure", DataType::Float64),
                ("x", DataType::Float64),
                ("y", DataType::Float64),
                ("next_flight_ms", DataType::Float64),
            ],
        )
        .expect("static schema");
        for _ in 0..rows_per_phone {
            let dwell: f64 = rng.gen_range(40.0..180.0);
            let flight: f64 = rng.gen_range(50.0..400.0);
            let pressure: f64 = rng.gen_range(0.1..1.0);
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            // Shared ground-truth model across phones.
            let next = 0.6 * flight + 0.3 * dwell - 40.0 * pressure
                + 15.0 * x
                + 5.0 * y
                + rng.gen_range(-10.0..10.0);
            t = t
                .row(vec![
                    uid.into(),
                    dwell.into(),
                    flight.into(),
                    pressure.into(),
                    x.into(),
                    y.into(),
                    next.into(),
                ])
                .expect("generated row");
            uid += 1;
        }
        out.push(t.build());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_relational::Value;

    #[test]
    fn drug_risk_schema_and_sizes() {
        let silos = drug_risk_silos(200, 0.1, 1);
        assert_eq!(silos.len(), 4);
        assert_eq!(silos[0].name(), "clinic");
        assert_eq!(silos[0].num_rows(), 200); // clinic keeps everyone
        for t in &silos[1..] {
            assert!(t.num_rows() <= 200);
            assert!(t.num_rows() >= 150, "{} unexpectedly small", t.name());
            assert!(t.schema().contains("pid"));
        }
    }

    #[test]
    fn drug_risk_labels_binary_and_balanced_enough() {
        let silos = drug_risk_silos(500, 0.0, 2);
        let clinic = &silos[0];
        let mut ones = 0;
        for i in 0..clinic.num_rows() {
            match clinic.value(i, "adverse_event").unwrap() {
                Value::Int(1) => ones += 1,
                Value::Int(0) => {}
                other => panic!("bad label {other:?}"),
            }
        }
        assert!(ones > 100 && ones < 400, "label balance off: {ones}/500");
    }

    #[test]
    fn drug_risk_no_missing_means_full_silos() {
        let silos = drug_risk_silos(50, 0.0, 3);
        for t in &silos {
            assert_eq!(t.num_rows(), 50);
        }
    }

    #[test]
    fn keyboard_silos_are_disjoint_and_uniform() {
        let silos = keyboard_silos(3, 40, 4);
        assert_eq!(silos.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for t in &silos {
            assert_eq!(t.num_rows(), 40);
            assert_eq!(t.num_cols(), 7);
            for i in 0..t.num_rows() {
                let uid = t.value(i, "uid").unwrap().as_i64().unwrap();
                assert!(seen.insert(uid), "uid {uid} duplicated across phones");
            }
        }
    }

    #[test]
    fn keyboard_target_has_planted_signal() {
        // Fitting OLS on one phone should give R² close to 1.
        let silos = keyboard_silos(1, 300, 5);
        let t = &silos[0];
        let x = t
            .to_matrix(&["dwell_ms", "flight_ms", "pressure", "x", "y"], 0.0)
            .unwrap();
        let y = t.to_matrix(&["next_flight_ms"], 0.0).unwrap();
        // Normal equations via the matrix substrate.
        let gram = x.gram();
        let xty = x.transpose_matmul(&y).unwrap();
        let theta = gram.solve(&xty).unwrap();
        let pred = x.matmul(&theta).unwrap();
        let resid = pred.sub(&y).unwrap().frobenius_norm_sq();
        let mean = y.mean();
        let total: f64 = y.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum();
        let r2 = 1.0 - resid / total;
        assert!(r2 > 0.9, "R² = {r2}");
    }

    #[test]
    fn generators_deterministic() {
        let a = drug_risk_silos(20, 0.2, 7);
        let b = drug_risk_silos(20, 0.2, 7);
        assert_eq!(a[1].num_rows(), b[1].num_rows());
        let ka = keyboard_silos(2, 5, 8);
        let kb = keyboard_silos(2, 5, 8);
        assert_eq!(
            ka[0].value(0, "dwell_ms").unwrap(),
            kb[0].value(0, "dwell_ms").unwrap()
        );
    }
}
