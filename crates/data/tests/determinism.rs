//! Determinism property: a [`TwoSourceSpec`] plus its seed is a *pure*
//! description — two generations must be bit-identical in both the
//! `DiMetadata` and every source matrix. The scenario generator
//! (`amalur-gen`), the Table III ladder and the regression corpus all
//! rest on this: a pinned spec that regenerated differently across runs
//! could neither be shrunk nor replayed.

use amalur_data::{generate_two_source, TwoSourceSpec};
use proptest::prelude::*;

fn assert_bit_identical(spec: &TwoSourceSpec) {
    let (md_a, data_a) = generate_two_source(spec).unwrap();
    let (md_b, data_b) = generate_two_source(spec).unwrap();
    assert_eq!(md_a, md_b, "metadata not deterministic for {spec:?}");
    assert_eq!(data_a.len(), data_b.len());
    for (k, (a, b)) in data_a.iter().zip(&data_b).enumerate() {
        assert_eq!(a.shape(), b.shape());
        // Bit-level, not approximate: compare the raw f64 bits.
        let bits = |m: &amalur_matrix::DenseMatrix| {
            m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(
            bits(a),
            bits(b),
            "source {k} not bit-identical for {spec:?}"
        );
    }
}

#[test]
fn footnote3_quadrants_are_bit_deterministic() {
    for target_red in [true, false] {
        for source_red in [true, false] {
            assert_bit_identical(&TwoSourceSpec::footnote3(500, target_red, source_red, 42));
        }
    }
}

#[test]
fn shared_columns_and_partial_coverage_are_bit_deterministic() {
    assert_bit_identical(&TwoSourceSpec {
        rows_s1: 300,
        cols_s1: 4,
        rows_s2: 60,
        cols_s2: 10,
        shared_cols: 3,
        target_redundancy: false,
        row_coverage: 0.7,
        source_redundancy: true,
        seed: 7,
    });
}

#[test]
fn different_seeds_produce_different_data() {
    let a = generate_two_source(&TwoSourceSpec::footnote3(100, true, false, 1)).unwrap();
    let b = generate_two_source(&TwoSourceSpec::footnote3(100, true, false, 2)).unwrap();
    assert_ne!(a.1[0].as_slice(), b.1[0].as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random walks over the spec knobs preserve bit-determinism.
    #[test]
    fn random_specs_are_bit_deterministic(
        rows_s1 in 10usize..400,
        cols_s1 in 1usize..5,
        rows_s2 in 5usize..100,
        cols_s2 in 1usize..12,
        shared in 0usize..4,
        coverage in 0.2f64..1.0,
        knobs in 0u8..4,
        seed in 0u64..1_000_000,
    ) {
        let spec = TwoSourceSpec {
            rows_s1,
            cols_s1,
            rows_s2,
            cols_s2,
            shared_cols: shared.min(cols_s1.min(cols_s2)),
            target_redundancy: knobs & 1 != 0,
            row_coverage: coverage,
            source_redundancy: knobs & 2 != 0,
            seed,
        };
        assert_bit_identical(&spec);
    }
}
