//! Strategy-level operation counters.
//!
//! The cost-model calibration (in `amalur-cost`) fits per-operation
//! hardware costs against measured runtimes. The regression *features*
//! are the abstract operation counts of the physical plans implemented
//! in [`crate::Strategy::Compressed`] and
//! [`FactorizedTable::materialize`]; this module derives those counts
//! from the DI metadata so they always agree with what the kernels
//! actually execute:
//!
//! * **GEMM flops** — the `Dₖ · (MₖᵀX)` / `Dₖᵀ · (IₖᵀX)` multiplications
//!   (2 flops per cell-product);
//! * **traffic cells** — every cell moved by a gather or scatter over the
//!   compressed `CIₖ`/`CMₖ` vectors (the irregular-access part);
//! * **correction cells** — redundant cells subtracted back out per the
//!   `Rₖ` zero blocks;
//! * **assembly cells** — cells written to or read from sources while
//!   materializing the target table;
//! * **dispatch calls** — per-source kernel dispatches (scatter + GEMM +
//!   gather treated as one dispatch). Each dispatch carries a fixed
//!   overhead independent of the operand sizes, which dominates on
//!   sub-ms tiny tables — the calibration's intercept-like term.

use crate::table::FactorizedTable;
use amalur_matrix::NO_MATCH;

/// Abstract operation counts of a factorized or materialized plan —
/// the regression features of the cost-model calibration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCounts {
    /// Dense GEMM floating-point operations (multiply + add counted as 2).
    pub gemm_flops: f64,
    /// Cells moved through gather/scatter over compressed metadata.
    pub traffic_cells: f64,
    /// Redundant cells corrected via the `Rₖ` zero blocks.
    pub correction_cells: f64,
    /// Cells written/read while assembling the materialized target.
    pub assembly_cells: f64,
    /// Per-source kernel dispatches — the size-independent fixed
    /// overhead each operator invocation pays (the model's intercept).
    pub dispatch_calls: f64,
}

impl OpCounts {
    /// All-zero counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            gemm_flops: self.gemm_flops + other.gemm_flops,
            traffic_cells: self.traffic_cells + other.traffic_cells,
            correction_cells: self.correction_cells + other.correction_cells,
            assembly_cells: self.assembly_cells + other.assembly_cells,
            dispatch_calls: self.dispatch_calls + other.dispatch_calls,
        }
    }

    /// Total abstract work units (used to size timing loops). Dispatch
    /// calls are bookkeeping, not data-proportional work, so they are
    /// excluded here.
    pub fn total_units(&self) -> f64 {
        self.gemm_flops + self.traffic_cells + self.correction_cells + self.assembly_cells
    }

    /// Component-wise scaling.
    #[must_use]
    pub fn scaled(&self, k: f64) -> OpCounts {
        OpCounts {
            gemm_flops: self.gemm_flops * k,
            traffic_cells: self.traffic_cells * k,
            correction_cells: self.correction_cells * k,
            assembly_cells: self.assembly_cells * k,
            dispatch_calls: self.dispatch_calls * k,
        }
    }

    /// Counts contributed by **one source** to one compressed-strategy
    /// LMM (`T·X` or, symmetrically, `Tᵀ·X`): scatter over the mapped
    /// target columns (resp. matched rows), one `Dₖ` GEMM, gather over
    /// the matched rows (resp. mapped columns), and the redundancy
    /// correction. The single authority for this formula — both the
    /// table-level and the `CostFeatures`-level derivations call it.
    pub fn lmm_source(
        rows: usize,
        cols: usize,
        matched_rows: usize,
        mapped_cols: usize,
        redundant_cells: usize,
        x_cols: usize,
    ) -> OpCounts {
        let n = x_cols as f64;
        OpCounts {
            gemm_flops: 2.0 * rows as f64 * cols as f64 * n,
            traffic_cells: (mapped_cols + matched_rows) as f64 * n,
            correction_cells: redundant_cells as f64 * n,
            assembly_cells: 0.0,
            dispatch_calls: 1.0,
        }
    }

    /// Cells gathered from **one source** while materializing the target
    /// (redundant cells are skipped, not copied).
    pub fn assembly_source_cells(
        matched_rows: usize,
        mapped_cols: usize,
        redundant_cells: usize,
    ) -> f64 {
        ((matched_rows * mapped_cols) as f64 - redundant_cells as f64).max(0.0)
    }

    /// Counts of one GD-shaped epoch on a materialized `T`: two plain
    /// GEMMs, no gather/scatter traffic.
    pub fn materialized_epoch(target_cells: usize, x_cols: usize) -> OpCounts {
        OpCounts {
            gemm_flops: 4.0 * target_cells as f64 * x_cols as f64,
            // One `T·X` plus one `Tᵀ·X` — two kernel dispatches.
            dispatch_calls: 2.0,
            ..OpCounts::zero()
        }
    }
}

impl FactorizedTable {
    /// Operation counts of one compressed-strategy `T·X` (LMM) where `X`
    /// has `x_cols` columns.
    ///
    /// Per source: scatter `X`'s mapped target-column rows into source
    /// columns, one `Dₖ` GEMM, gather the matched target rows, and one
    /// correction pass over the redundant cells.
    pub fn lmm_op_counts(&self, x_cols: usize) -> OpCounts {
        let mut c = OpCounts::zero();
        for s in &self.metadata().sources {
            c = c.plus(&OpCounts::lmm_source(
                s.indicator.source_rows(),
                s.mapping.source_cols(),
                matched_rows(s.indicator.compressed()),
                s.mapping.mapped_target_cols().len(),
                s.redundancy.zero_count(),
                x_cols,
            ));
        }
        c
    }

    /// Operation counts of one compressed-strategy `Tᵀ·X` where `X` has
    /// `x_cols` columns. Mirror image of [`Self::lmm_op_counts`]: the
    /// scatter runs over matched rows and the gather over mapped columns,
    /// so the totals coincide.
    pub fn lmm_transpose_op_counts(&self, x_cols: usize) -> OpCounts {
        self.lmm_op_counts(x_cols)
    }

    /// Operation counts of one GD-shaped epoch — one `T·X` plus one
    /// `Tᵀ·X` — the workload `amalur-cost`'s oracle measures.
    pub fn epoch_op_counts(&self, x_cols: usize) -> OpCounts {
        self.lmm_op_counts(x_cols)
            .plus(&self.lmm_transpose_op_counts(x_cols))
    }

    /// Operation counts of [`FactorizedTable::materialize`]: the target
    /// cells written plus every source cell gathered into them
    /// (redundant cells are skipped, not copied).
    pub fn materialize_op_counts(&self) -> OpCounts {
        let mut assembly = self.target_cells() as f64;
        for s in &self.metadata().sources {
            assembly += OpCounts::assembly_source_cells(
                matched_rows(s.indicator.compressed()),
                s.mapping.mapped_target_cols().len(),
                s.redundancy.zero_count(),
            );
        }
        OpCounts {
            assembly_cells: assembly,
            // One gather pass per source.
            dispatch_calls: self.metadata().sources.len() as f64,
            ..OpCounts::zero()
        }
    }

    /// Operation counts of one GD-shaped epoch on the *materialized*
    /// table: two plain GEMMs against `T`, no gather/scatter traffic.
    pub fn materialized_epoch_op_counts(&self, x_cols: usize) -> OpCounts {
        OpCounts::materialized_epoch(self.target_cells(), x_cols)
    }
}

fn matched_rows(ci: &[i64]) -> usize {
    ci.iter().filter(|&&j| j != NO_MATCH).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::tests::running_example;

    #[test]
    fn lmm_counts_match_hand_computation() {
        // Running example: S1 is 4×3 (4 matched rows, 3 mapped cols),
        // S2 is 3×3 (3 matched rows, 3 mapped cols, 2 redundant cells).
        let ft = running_example();
        let c = ft.lmm_op_counts(2);
        assert_eq!(c.gemm_flops, 2.0 * (4.0 * 3.0 + 3.0 * 3.0) * 2.0);
        assert_eq!(c.traffic_cells, ((3.0 + 4.0) + (3.0 + 3.0)) * 2.0);
        assert_eq!(c.correction_cells, 2.0 * 2.0);
        assert_eq!(c.assembly_cells, 0.0);
        assert_eq!(c.dispatch_calls, 2.0); // one dispatch per source
    }

    #[test]
    fn epoch_counts_double_the_single_op() {
        let ft = running_example();
        let single = ft.lmm_op_counts(1);
        let epoch = ft.epoch_op_counts(1);
        assert_eq!(epoch.gemm_flops, 2.0 * single.gemm_flops);
        assert_eq!(epoch.traffic_cells, 2.0 * single.traffic_cells);
        assert_eq!(epoch.correction_cells, 2.0 * single.correction_cells);
        assert_eq!(epoch.dispatch_calls, 2.0 * single.dispatch_calls);
    }

    #[test]
    fn materialize_counts_cover_target_and_sources() {
        let ft = running_example();
        let c = ft.materialize_op_counts();
        // 6×4 target + S1 gathered 4·3 + S2 gathered 3·3 − 2 redundant.
        assert_eq!(c.assembly_cells, 24.0 + 12.0 + (9.0 - 2.0));
        assert_eq!(c.gemm_flops, 0.0);
        assert_eq!(c.dispatch_calls, 2.0);
        let m = ft.materialized_epoch_op_counts(3);
        assert_eq!(m.gemm_flops, 4.0 * 24.0 * 3.0);
        assert_eq!(m.assembly_cells, 0.0);
        assert_eq!(m.dispatch_calls, 2.0);
    }

    #[test]
    fn counts_scale_with_x_cols() {
        let ft = running_example();
        let one = ft.epoch_op_counts(1);
        let four = ft.epoch_op_counts(4);
        assert_eq!(four.gemm_flops, 4.0 * one.gemm_flops);
        assert_eq!(four.traffic_cells, 4.0 * one.traffic_cells);
        // Dispatch overhead is per call, not per operand column.
        assert_eq!(four.dispatch_calls, one.dispatch_calls);
    }

    #[test]
    fn plus_and_total_units() {
        let a = OpCounts {
            gemm_flops: 1.0,
            traffic_cells: 2.0,
            correction_cells: 3.0,
            assembly_cells: 4.0,
            dispatch_calls: 5.0,
        };
        let b = a.plus(&a);
        assert_eq!(b.total_units(), 20.0); // dispatches excluded
        assert_eq!(b.dispatch_calls, 10.0);
        assert_eq!(OpCounts::zero().total_units(), 0.0);
    }
}
