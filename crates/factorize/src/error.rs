//! Error type for factorized computation.

use std::fmt;

/// Convenience alias for factorize results.
pub type Result<T> = std::result::Result<T, FactorizeError>;

/// Errors produced by factorized linear algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorizeError {
    /// Source data matrices do not agree with the metadata shapes.
    ShapeMismatch(String),
    /// The requested operand has an incompatible shape.
    OperandMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected operand shape.
        expected: (usize, usize),
        /// Actual operand shape.
        found: (usize, usize),
    },
    /// A strategy was asked to do something it cannot do correctly
    /// (e.g. Morpheus' rule on overlapping columns).
    UnsupportedByStrategy(String),
    /// Error bubbled up from the metadata layer.
    Metadata(String),
    /// Error bubbled up from the matrix layer.
    Matrix(String),
}

impl fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorizeError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            FactorizeError::OperandMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "operand mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            FactorizeError::UnsupportedByStrategy(m) => {
                write!(f, "unsupported by strategy: {m}")
            }
            FactorizeError::Metadata(m) => write!(f, "metadata error: {m}"),
            FactorizeError::Matrix(m) => write!(f, "matrix error: {m}"),
        }
    }
}

impl std::error::Error for FactorizeError {}

impl From<amalur_integration::IntegrationError> for FactorizeError {
    fn from(e: amalur_integration::IntegrationError) -> Self {
        FactorizeError::Metadata(e.to_string())
    }
}

impl From<amalur_matrix::MatrixError> for FactorizeError {
    fn from(e: amalur_matrix::MatrixError) -> Self {
        FactorizeError::Matrix(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = FactorizeError::OperandMismatch {
            op: "lmm",
            expected: (4, 1),
            found: (3, 1),
        };
        assert!(e.to_string().contains("lmm"));
        let m: FactorizeError = amalur_matrix::MatrixError::Singular.into();
        assert!(matches!(m, FactorizeError::Matrix(_)));
    }
}
