//! Factorized linear algebra over data silos (§IV of the paper).
//!
//! Instead of joining source tables into the target table `T` and running
//! linear algebra on it (*materialization*), Amalur pushes computation
//! down to the sources (*factorization*) using the DI metadata matrices:
//!
//! ```text
//! T X → I₁D₁M₁ᵀX + ((I₂D₂M₂ᵀ) ∘ R₂) X            (Amalur, Eq. 2)
//! T X → I₁(D₁X[1:c_S1,]) + I₂(D₂X[c_S1+1:c_T,])    (Morpheus, Eq. 1)
//! ```
//!
//! The central type is [`FactorizedTable`]: source data matrices `Dₖ`
//! plus [`DiMetadata`]. Each linear-algebra operator is provided in three
//! strategies (see [`Strategy`]):
//!
//! * **Compressed** — gather/scatter kernels over the compressed vectors
//!   `CMₖ`/`CIₖ`, with a structured redundancy correction that never
//!   materializes the `r_T × c_T` intermediates. This is Amalur's
//!   physical-level execution (§III-D).
//! * **Sparse** — the literal Equation (2): expand `Mₖ`/`Iₖ` to CSR,
//!   form `Tₖ = IₖDₖMₖᵀ`, Hadamard with `Rₖ`. Used as the readable
//!   reference implementation and the ablation baseline.
//! * **Morpheus** — the Equation (1) baseline, correct only when sources
//!   do not overlap in columns or rows; the tests demonstrate exactly
//!   where it breaks (the paper's motivation for Eq. 2).
//!
//! The [`LinOps`] trait abstracts "a design matrix you can train on" so
//! ML algorithms run unchanged over materialized ([`DenseMatrix`]) or
//! factorized ([`FactorizedTable`]) data — the paper's guarantee that
//! "factorized learning does not affect model training accuracy".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counts;
mod error;
mod linops;
pub mod metrics;
mod rewrite;
mod table;

pub use counts::OpCounts;
pub use error::{FactorizeError, Result};
pub use linops::LinOps;
pub use metrics::mount_metrics;
pub use rewrite::Strategy;
pub use table::FactorizedTable;

pub use amalur_integration::DiMetadata;
pub use amalur_matrix::DenseMatrix;
