//! The [`LinOps`] abstraction: one training loop, two execution regimes.
//!
//! ML algorithms in `amalur-ml` are written against this trait, so the
//! *same* gradient-descent code trains on a materialized target table
//! (a [`DenseMatrix`]) or a [`FactorizedTable`] — which is how the paper
//! can claim factorization "does not affect model training accuracy"
//! while changing the execution strategy underneath.

use crate::table::FactorizedTable;
use crate::{Result, Strategy};
use amalur_matrix::{DenseMatrix, Workspace};

/// A design matrix that supports the operators ML training needs.
pub trait LinOps {
    /// Number of examples (rows of the design matrix).
    fn n_rows(&self) -> usize;

    /// Number of features (columns of the design matrix).
    fn n_cols(&self) -> usize;

    /// `T · x` where `x` is `n_cols × k` — the prediction operator.
    ///
    /// # Errors
    /// Shape mismatch.
    fn mul_right(&self, x: &DenseMatrix) -> Result<DenseMatrix>;

    /// `Tᵀ · x` where `x` is `n_rows × k` — the gradient operator.
    ///
    /// # Errors
    /// Shape mismatch.
    fn t_mul(&self, x: &DenseMatrix) -> Result<DenseMatrix>;

    /// [`Self::mul_right`] written into the caller-owned `out`
    /// (`n_rows × k`, fully overwritten), drawing any per-source scratch
    /// from `ws`. The allocation-free variant gradient-descent loops
    /// call every epoch (see the `amalur-matrix` crate docs for the
    /// `Workspace`/`_into` conventions).
    ///
    /// # Errors
    /// Shape mismatch of `x` or `out`.
    fn mul_right_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()>;

    /// [`Self::t_mul`] written into the caller-owned `out`
    /// (`n_cols × k`, fully overwritten), drawing scratch from `ws`.
    ///
    /// # Errors
    /// Shape mismatch of `x` or `out`.
    fn t_mul_into(&self, x: &DenseMatrix, out: &mut DenseMatrix, ws: &mut Workspace) -> Result<()>;

    /// Gram matrix `TᵀT` (`n_cols × n_cols`) — the normal-equations
    /// operator for closed-form solvers.
    fn gram_matrix(&self) -> DenseMatrix;

    /// Column sums `1ᵀT` — used for centering and K-Means updates.
    fn column_sums(&self) -> Vec<f64>;

    /// Per-row squared norms `‖T[i,:]‖²` — used by K-Means distances and
    /// GNMF loss.
    fn row_norms_sq(&self) -> Vec<f64>;
}

impl LinOps for DenseMatrix {
    fn n_rows(&self) -> usize {
        self.rows()
    }

    fn n_cols(&self) -> usize {
        self.cols()
    }

    fn mul_right(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        Ok(self.matmul(x)?)
    }

    fn t_mul(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        Ok(self.transpose_matmul(x)?)
    }

    fn mul_right_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<()> {
        Ok(self.matmul_into(x, out)?)
    }

    fn t_mul_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<()> {
        Ok(self.transpose_matmul_into(x, out)?)
    }

    fn gram_matrix(&self) -> DenseMatrix {
        self.gram()
    }

    fn column_sums(&self) -> Vec<f64> {
        self.col_sums()
    }

    fn row_norms_sq(&self) -> Vec<f64> {
        self.row_iter()
            .map(|r| r.iter().map(|v| v * v).sum())
            .collect()
    }
}

impl LinOps for FactorizedTable {
    fn n_rows(&self) -> usize {
        self.target_shape().0
    }

    fn n_cols(&self) -> usize {
        self.target_shape().1
    }

    fn mul_right(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.lmm(x, Strategy::Compressed)
    }

    fn t_mul(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.lmm_transpose(x, Strategy::Compressed)
    }

    fn mul_right_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        self.lmm_into(x, out, ws)
    }

    fn t_mul_into(&self, x: &DenseMatrix, out: &mut DenseMatrix, ws: &mut Workspace) -> Result<()> {
        self.lmm_transpose_into(x, out, ws)
    }

    fn gram_matrix(&self) -> DenseMatrix {
        self.gram()
    }

    fn column_sums(&self) -> Vec<f64> {
        self.col_sums()
    }

    fn row_norms_sq(&self) -> Vec<f64> {
        FactorizedTable::row_norms_sq(self)
    }
}

/// Shared-ownership delegation: serving workers train on
/// `Arc<FactorizedTable>` (one copy of the data, many concurrent
/// readers) through the same generic training loops.
impl<L: LinOps> LinOps for std::sync::Arc<L> {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }

    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }

    fn mul_right(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        (**self).mul_right(x)
    }

    fn t_mul(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        (**self).t_mul(x)
    }

    fn mul_right_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        (**self).mul_right_into(x, out, ws)
    }

    fn t_mul_into(&self, x: &DenseMatrix, out: &mut DenseMatrix, ws: &mut Workspace) -> Result<()> {
        (**self).t_mul_into(x, out, ws)
    }

    fn gram_matrix(&self) -> DenseMatrix {
        (**self).gram_matrix()
    }

    fn column_sums(&self) -> Vec<f64> {
        (**self).column_sums()
    }

    fn row_norms_sq(&self) -> Vec<f64> {
        (**self).row_norms_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::tests::{figure2d_target, running_example};

    /// A generic function over LinOps must produce identical results for
    /// the materialized and factorized representations.
    fn predict<L: LinOps>(data: &L, theta: &DenseMatrix) -> DenseMatrix {
        data.mul_right(theta).unwrap()
    }

    #[test]
    fn trait_object_dimensions() {
        let ft = running_example();
        let t = figure2d_target();
        assert_eq!(ft.n_rows(), t.n_rows());
        assert_eq!(ft.n_cols(), t.n_cols());
    }

    #[test]
    fn generic_code_agrees_across_backends() {
        let ft = running_example();
        let t = figure2d_target();
        let theta = DenseMatrix::from_rows(&[vec![0.1], vec![0.2], vec![-0.3], vec![0.4]]).unwrap();
        let via_fact = predict(&ft, &theta);
        let via_mat = predict(&t, &theta);
        assert!(via_fact.approx_eq(&via_mat, 1e-9));

        let r = DenseMatrix::ones(6, 1);
        assert!(ft.t_mul(&r).unwrap().approx_eq(&t.t_mul(&r).unwrap(), 1e-9));
        assert!(ft.gram_matrix().approx_eq(&t.gram_matrix(), 1e-9));
        for (a, b) in ft.column_sums().iter().zip(t.column_sums()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in LinOps::row_norms_sq(&ft).iter().zip(t.row_norms_sq()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn arc_wrapper_delegates_without_cloning_data() {
        let ft = std::sync::Arc::new(running_example());
        let theta = DenseMatrix::from_rows(&[vec![0.1], vec![0.2], vec![-0.3], vec![0.4]]).unwrap();
        // Same bits through the Arc as through the table directly.
        let direct = predict(&*ft, &theta);
        let shared = predict(&ft, &theta);
        assert_eq!(direct.as_slice(), shared.as_slice());
        assert_eq!(ft.n_rows(), 6);
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(ft.n_rows(), 1);
        ft.mul_right_into(&theta, &mut out, &mut ws).unwrap();
        assert_eq!(out.as_slice(), direct.as_slice());
    }

    #[test]
    fn dyn_compatible() {
        // The trait must stay usable as a trait object for the optimizer.
        let t = figure2d_target();
        let obj: &dyn LinOps = &t;
        assert_eq!(obj.n_rows(), 6);
    }
}
