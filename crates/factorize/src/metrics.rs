//! Rewrite-layer observability: `static` dispatch counters.
//!
//! Same pattern as `amalur_matrix::metrics`: the rewrite operators run
//! inside allocation-free hot loops and carry no registry plumbing, so
//! the counters are `static`s (a record is one relaxed atomic add) and
//! hosts mount them with [`mount_metrics`].

use crate::Strategy;
use amalur_obs::{Counter, MetricsRegistry};

/// `lmm` / `lmm_into` invocations (the forward operator `T·X`).
pub(crate) static LMM_CALLS: Counter = Counter::new();

/// `lmm_transpose` / `lmm_transpose_into` invocations (the gradient
/// operator `Tᵀ·X`; `rmm` also lands here via its rewrite).
pub(crate) static LMM_TRANSPOSE_CALLS: Counter = Counter::new();

/// `lmm_colstable_into` invocations (the serving batching contract).
pub(crate) static LMM_COLSTABLE_CALLS: Counter = Counter::new();

/// Operators executed with [`Strategy::Compressed`].
pub(crate) static STRATEGY_COMPRESSED: Counter = Counter::new();

/// Operators executed with [`Strategy::Sparse`].
pub(crate) static STRATEGY_SPARSE: Counter = Counter::new();

/// Operators executed with [`Strategy::Morpheus`].
pub(crate) static STRATEGY_MORPHEUS: Counter = Counter::new();

/// Bumps the per-strategy dispatch counter for one operator call.
pub(crate) fn record_strategy(strategy: Strategy) {
    match strategy {
        Strategy::Compressed => STRATEGY_COMPRESSED.inc(),
        Strategy::Sparse => STRATEGY_SPARSE.inc(),
        Strategy::Morpheus => STRATEGY_MORPHEUS.inc(),
    }
}

/// Mounts the rewrite-layer counters into `reg` under the
/// `factorize.*` names.
pub fn mount_metrics(reg: &MetricsRegistry) {
    reg.mount_counter("factorize.lmm.calls", &LMM_CALLS);
    reg.mount_counter("factorize.lmm_transpose.calls", &LMM_TRANSPOSE_CALLS);
    reg.mount_counter("factorize.lmm_colstable.calls", &LMM_COLSTABLE_CALLS);
    reg.mount_counter("factorize.strategy.compressed", &STRATEGY_COMPRESSED);
    reg.mount_counter("factorize.strategy.sparse", &STRATEGY_SPARSE);
    reg.mount_counter("factorize.strategy.morpheus", &STRATEGY_MORPHEUS);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mount_exposes_all_counters() {
        let reg = MetricsRegistry::new();
        mount_metrics(&reg);
        let before = reg
            .snapshot()
            .counter("factorize.strategy.sparse")
            .unwrap_or(0);
        record_strategy(Strategy::Sparse);
        let after = reg
            .snapshot()
            .counter("factorize.strategy.sparse")
            .unwrap_or(0);
        assert_eq!(after - before, 1);
        assert!(reg.snapshot().counter("factorize.lmm.calls").is_some());
    }
}
