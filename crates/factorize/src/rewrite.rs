//! The factorized rewrite rules (§IV-A).
//!
//! Every operator comes in three strategies. Writing `T̃ₖ = Tₖ ∘ Rₖ`
//! (the redundancy-masked contribution of source `k`, with
//! `Tₖ = IₖDₖMₖᵀ`), the identities implemented here are:
//!
//! * **LMM** `T·X    = Σₖ T̃ₖ X` — Equation (2) of the paper.
//! * **transpose-LMM** `Tᵀ·X = Σₖ T̃ₖᵀ X`.
//! * **RMM** `X·T    = (Tᵀ Xᵀ)ᵀ`.
//! * **column sums** `1ᵀT = Σₖ 1ᵀT̃ₖ`, **row sums** `T·1`.
//!
//! The compressed strategy computes `T̃ₖ X` as
//! `gather_rows(Dₖ · scatter(X)) − correction` where the correction
//! subtracts the redundant cells recorded in `Rₖ`'s zero blocks — no
//! `r_T × c_T` intermediate is ever formed.

use crate::table::FactorizedTable;
use crate::{FactorizeError, Result};
use amalur_matrix::{par_row_chunks, DenseMatrix, Workspace, NO_MATCH};

/// Execution strategy for the factorized operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Gather/scatter over compressed metadata with structured redundancy
    /// correction — Amalur's efficient physical plan.
    Compressed,
    /// Literal Equation (2): expand `Mₖ`/`Iₖ`, build `Tₖ`, Hadamard with
    /// the dense `Rₖ`. Readable, O(`r_T·c_T`) per source.
    Sparse,
    /// The Morpheus baseline, Equation (1): assumes sources partition the
    /// target columns and never overlap. Fast when the assumption holds,
    /// *wrong* otherwise (this is what the Amalur rewrite fixes).
    Morpheus,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Compressed => "compressed",
            Strategy::Sparse => "sparse",
            Strategy::Morpheus => "morpheus",
        };
        f.write_str(s)
    }
}

impl FactorizedTable {
    /// Left matrix multiplication `T · X` where `X` is `c_T × n`.
    ///
    /// # Errors
    /// Shape errors, or [`FactorizeError::UnsupportedByStrategy`] when the
    /// Morpheus rule is requested for overlapping sources.
    pub fn lmm(&self, x: &DenseMatrix, strategy: Strategy) -> Result<DenseMatrix> {
        let (rows, cols) = self.target_shape();
        if x.rows() != cols {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm",
                expected: (cols, x.cols()),
                found: x.shape(),
            });
        }
        crate::metrics::LMM_CALLS.inc();
        crate::metrics::record_strategy(strategy);
        match strategy {
            Strategy::Compressed => self.lmm_compressed(x, rows),
            Strategy::Sparse => self.lmm_sparse(x, rows),
            Strategy::Morpheus => {
                self.ensure_disjoint("lmm")?;
                self.lmm_morpheus(x, rows)
            }
        }
    }

    /// Compressed-strategy `T · X` written into the caller-owned `out`
    /// (`r_T × n`, fully overwritten), drawing all per-source
    /// intermediates from `ws` — the allocation-free hot-loop entry
    /// point (see the `amalur-matrix` crate docs for the conventions).
    ///
    /// # Errors
    /// Shape errors as in [`Self::lmm`].
    pub fn lmm_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        let (rows, cols) = self.target_shape();
        if x.rows() != cols {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm",
                expected: (cols, x.cols()),
                found: x.shape(),
            });
        }
        if out.shape() != (rows, x.cols()) {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm_into",
                expected: (rows, x.cols()),
                found: out.shape(),
            });
        }
        crate::metrics::LMM_CALLS.inc();
        crate::metrics::record_strategy(Strategy::Compressed);
        self.lmm_compressed_into(x, out, ws)
    }

    /// Compressed-strategy `T · X` with a **column-stable** summation
    /// order: column `j` of the result is bit-identical to
    /// `lmm_into(col_j, …)` computed on its own, regardless of how many
    /// other columns share the call. This is the batching contract of
    /// the serving layer — predictions coalesced into one factorized
    /// multiply return exactly the bytes each would have produced served
    /// individually.
    ///
    /// The scatter, gather and redundancy-correction phases of the
    /// compressed rewrite are already per-column independent; the only
    /// width-sensitive step is the inner `Dₖ · (MₖᵀX)` product, which
    /// here goes through [`DenseMatrix::matmul_colstable_into`] instead
    /// of the width-adaptive kernel.
    ///
    /// # Errors
    /// Shape errors as in [`Self::lmm`].
    pub fn lmm_colstable_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        let (rows, cols) = self.target_shape();
        if x.rows() != cols {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm_colstable",
                expected: (cols, x.cols()),
                found: x.shape(),
            });
        }
        if out.shape() != (rows, x.cols()) {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm_colstable_into",
                expected: (rows, x.cols()),
                found: out.shape(),
            });
        }
        crate::metrics::LMM_COLSTABLE_CALLS.inc();
        crate::metrics::record_strategy(Strategy::Compressed);
        self.lmm_compressed_into_impl(x, out, ws, true)
    }

    /// Compressed-strategy `Tᵀ · X` written into the caller-owned `out`
    /// (`c_T × n`, fully overwritten), drawing all per-source
    /// intermediates from `ws`.
    ///
    /// # Errors
    /// Shape errors as in [`Self::lmm_transpose`].
    pub fn lmm_transpose_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        let (rows, cols) = self.target_shape();
        if x.rows() != rows {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm_transpose",
                expected: (rows, x.cols()),
                found: x.shape(),
            });
        }
        if out.shape() != (cols, x.cols()) {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm_transpose_into",
                expected: (cols, x.cols()),
                found: out.shape(),
            });
        }
        crate::metrics::LMM_TRANSPOSE_CALLS.inc();
        crate::metrics::record_strategy(Strategy::Compressed);
        self.lmm_t_compressed_into(x, out, ws)
    }

    /// Transposed multiplication `Tᵀ · X` where `X` is `r_T × n`.
    ///
    /// This is the gradient-side operator of every GD-trained model
    /// (`Xᵀ·residual`).
    ///
    /// # Errors
    /// Shape errors, or strategy errors as in [`Self::lmm`].
    pub fn lmm_transpose(&self, x: &DenseMatrix, strategy: Strategy) -> Result<DenseMatrix> {
        let (rows, cols) = self.target_shape();
        if x.rows() != rows {
            return Err(FactorizeError::OperandMismatch {
                op: "lmm_transpose",
                expected: (rows, x.cols()),
                found: x.shape(),
            });
        }
        crate::metrics::LMM_TRANSPOSE_CALLS.inc();
        crate::metrics::record_strategy(strategy);
        match strategy {
            Strategy::Compressed => self.lmm_t_compressed(x, cols),
            Strategy::Sparse => self.lmm_t_sparse(x, cols),
            Strategy::Morpheus => {
                self.ensure_disjoint("lmm_transpose")?;
                self.lmm_t_morpheus(x, cols)
            }
        }
    }

    /// Right matrix multiplication `X · T` where `X` is `n × r_T`,
    /// computed as `(Tᵀ Xᵀ)ᵀ`.
    ///
    /// # Errors
    /// Shape errors, or strategy errors as in [`Self::lmm`].
    pub fn rmm(&self, x: &DenseMatrix, strategy: Strategy) -> Result<DenseMatrix> {
        let (rows, _) = self.target_shape();
        if x.cols() != rows {
            return Err(FactorizeError::OperandMismatch {
                op: "rmm",
                expected: (x.rows(), rows),
                found: x.shape(),
            });
        }
        Ok(self.lmm_transpose(&x.transpose(), strategy)?.transpose())
    }

    /// Gram matrix `TᵀT`, streamed in row *blocks* so only
    /// `O(c_T² + B·c_T)` extra memory is used (never the materialized
    /// `T`). Both phases parallelize: the rows of each block are
    /// reconstructed from the sources over disjoint row chunks, and the
    /// rank-`B` update `G += blockᵀ·block` runs over disjoint chunks of
    /// `G`'s rows.
    pub fn gram(&self) -> DenseMatrix {
        /// Target rows reconstructed per streamed block.
        const BLOCK: usize = 128;
        let (rows, cols) = self.target_shape();
        let mut g = DenseMatrix::zeros(cols, cols);
        let mut block = vec![0.0; BLOCK.min(rows.max(1)) * cols];
        // Pre-extract per-source iteration state.
        let per_source: Vec<_> = self
            .metadata()
            .sources
            .iter()
            .zip(self.source_data())
            .map(|(s, d)| {
                (
                    s.indicator.compressed(),
                    s.mapping.compressed(),
                    s.redundancy.zero_cells_by_row(),
                    d,
                )
            })
            .collect();
        for block_start in (0..rows).step_by(BLOCK) {
            let bh = BLOCK.min(rows - block_start);
            let block_buf = &mut block[..bh * cols];
            // Phase 1: reconstruct target rows [block_start, block_start+bh).
            let sources = &per_source;
            par_row_chunks(block_buf, cols, bh.saturating_mul(cols) * 4, |r0, chunk| {
                chunk.fill(0.0);
                for (r, row_buf) in chunk.chunks_exact_mut(cols).enumerate() {
                    let i = block_start + r0 + r;
                    for (ci, cm, zeros, d) in sources {
                        let src_row = ci[i];
                        if src_row == NO_MATCH {
                            continue;
                        }
                        let zero_cols: &[usize] = zeros
                            .binary_search_by_key(&i, |(r, _)| *r)
                            .map(|p| zeros[p].1.as_slice())
                            .unwrap_or(&[]);
                        let d_row = d.row(src_row as usize);
                        for (t, &src_col) in cm.iter().enumerate() {
                            if src_col == NO_MATCH || zero_cols.binary_search(&t).is_ok() {
                                continue;
                            }
                            row_buf[t] += d_row[src_col as usize];
                        }
                    }
                }
            });
            // Phase 2: rank-bh update of G's upper triangle.
            let block_ref = &block[..bh * cols];
            par_row_chunks(
                g.as_mut_slice(),
                cols.max(1),
                bh.saturating_mul(cols).saturating_mul(cols) / 2,
                |a0, chunk| {
                    let cols_here = chunk.len() / cols.max(1);
                    for row in block_ref.chunks_exact(cols) {
                        for a in a0..a0 + cols_here {
                            let va = row[a];
                            if va == 0.0 {
                                continue;
                            }
                            let g_row = &mut chunk[(a - a0) * cols + a..(a - a0 + 1) * cols];
                            for (gv, &rb) in g_row.iter_mut().zip(&row[a..]) {
                                *gv += va * rb;
                            }
                        }
                    }
                },
            );
        }
        // Mirror to the lower triangle.
        for a in 0..cols {
            for b in 0..a {
                let v = g.get(b, a);
                g.set(a, b, v);
            }
        }
        g
    }

    /// Column sums `1ᵀT` without materialization.
    pub fn col_sums(&self) -> Vec<f64> {
        let (_, cols) = self.target_shape();
        let mut out = vec![0.0; cols];
        for (s, d) in self.metadata().sources.iter().zip(self.source_data()) {
            let cm = s.mapping.compressed();
            let ci = s.indicator.compressed();
            // Count how many times each source row contributes.
            let mut row_counts = vec![0usize; d.rows()];
            for &sr in ci {
                if sr != NO_MATCH {
                    row_counts[sr as usize] += 1;
                }
            }
            for (t, &sc) in cm.iter().enumerate() {
                if sc == NO_MATCH {
                    continue;
                }
                let sc = sc as usize;
                let mut total = 0.0;
                for (r, &count) in row_counts.iter().enumerate() {
                    if count > 0 {
                        total += d.get(r, sc) * count as f64;
                    }
                }
                out[t] += total;
            }
            // Subtract redundant cells.
            for &(i, ref zero_cols) in s.redundancy.zero_cells_by_row() {
                let sr = ci[i];
                if sr == NO_MATCH {
                    continue;
                }
                for &t in zero_cols {
                    let sc = cm[t];
                    if sc != NO_MATCH {
                        out[t] -= d.get(sr as usize, sc as usize);
                    }
                }
            }
        }
        out
    }

    /// Row sums `T·1` without materialization.
    pub fn row_sums(&self) -> Vec<f64> {
        // `ones` is built from the target shape, so the LMM cannot
        // mismatch; an empty vector is the defensive fallback.
        let ones = DenseMatrix::ones(self.target_shape().1, 1);
        self.lmm(&ones, Strategy::Compressed)
            .map(DenseMatrix::into_vec)
            .unwrap_or_default()
    }

    /// Sum of all target cells.
    pub fn total_sum(&self) -> f64 {
        self.col_sums().iter().sum()
    }

    // --- Compressed strategy ---------------------------------------------

    fn lmm_compressed(&self, x: &DenseMatrix, rows: usize) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(rows, x.cols());
        let mut ws = Workspace::new();
        self.lmm_compressed_into(x, &mut out, &mut ws)?;
        Ok(out)
    }

    fn lmm_compressed_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        self.lmm_compressed_into_impl(x, out, ws, false)
    }

    fn lmm_compressed_into_impl(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
        colstable: bool,
    ) -> Result<()> {
        let n = x.cols();
        let rows = out.rows();
        out.as_mut_slice().fill(0.0);
        for (s, d) in self.metadata().sources.iter().zip(self.source_data()) {
            // Mₖᵀ X: scatter X's target-column rows into source-column rows.
            let mut xk = ws.take_matrix(s.mapping.source_cols(), n);
            x.scatter_rows_add_into(s.mapping.compressed(), &mut xk)?;
            // Dₖ (Mₖᵀ X) — the only phase whose summation order depends
            // on the operand width; `colstable` pins it per column.
            let mut local = ws.take_matrix(d.rows(), n);
            if colstable {
                d.matmul_colstable_into(&xk, &mut local, ws)?;
            } else {
                d.matmul_into(&xk, &mut local)?;
            }
            // Iₖ (...) with redundancy correction, accumulated into `out`
            // in parallel over disjoint target-row chunks: each chunk
            // gathers its rows of `local` and subtracts the redundant
            // cells recorded for rows in its range.
            let ci = s.indicator.compressed();
            let cm = s.mapping.compressed();
            let zeros = s.redundancy.zero_cells_by_row();
            let local_ref = &local;
            let work = rows.saturating_mul(n) * 2;
            par_row_chunks(out.as_mut_slice(), n, work, |i0, chunk| {
                let rows_here = chunk.len() / n;
                // Gather: out[i,:] += local[ci[i],:].
                for (i, &src_row) in ci[i0..i0 + rows_here].iter().enumerate() {
                    if src_row == NO_MATCH {
                        continue;
                    }
                    let src = local_ref.row(src_row as usize);
                    let dst = &mut chunk[i * n..(i + 1) * n];
                    for (dv, &sv) in dst.iter_mut().zip(src) {
                        *dv += sv;
                    }
                }
                // Correction: out[i,:] -= Σ_{j ∈ zeros(i)} Dₖ[ci[i],cm[j]]·X[j,:].
                let z0 = zeros.partition_point(|&(r, _)| r < i0);
                for &(i, ref zero_cols) in
                    zeros[z0..].iter().take_while(|&&(r, _)| r < i0 + rows_here)
                {
                    let src_row = ci[i];
                    if src_row == NO_MATCH {
                        continue;
                    }
                    let d_row = d.row(src_row as usize);
                    let dst = &mut chunk[(i - i0) * n..(i - i0 + 1) * n];
                    for &j in zero_cols {
                        let sc = cm[j];
                        if sc == NO_MATCH {
                            continue;
                        }
                        let coef = d_row[sc as usize];
                        if coef == 0.0 {
                            continue;
                        }
                        let x_row = x.row(j);
                        for (dv, &xv) in dst.iter_mut().zip(x_row) {
                            *dv -= coef * xv;
                        }
                    }
                }
            });
            ws.give_matrix(xk);
            ws.give_matrix(local);
        }
        Ok(())
    }

    fn lmm_t_compressed(&self, x: &DenseMatrix, cols: usize) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(cols, x.cols());
        let mut ws = Workspace::new();
        self.lmm_t_compressed_into(x, &mut out, &mut ws)?;
        Ok(out)
    }

    fn lmm_t_compressed_into(
        &self,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        let n = x.cols();
        let cols = out.rows();
        out.as_mut_slice().fill(0.0);
        for (s, d) in self.metadata().sources.iter().zip(self.source_data()) {
            // Iₖᵀ X: scatter target rows into source rows.
            let mut xk = ws.take_matrix(s.indicator.source_rows(), n);
            x.scatter_rows_add_into(s.indicator.compressed(), &mut xk)?;
            // Dₖᵀ (Iₖᵀ X)
            let mut local = ws.take_matrix(d.cols(), n);
            d.transpose_matmul_into(&xk, &mut local)?;
            // Mₖ (...) plus correction, parallel over disjoint chunks of
            // the output's target-column rows; every worker scans the
            // redundancy list but only touches rows in its own range.
            let ci = s.indicator.compressed();
            let cm = s.mapping.compressed();
            let zeros = s.redundancy.zero_cells_by_row();
            let local_ref = &local;
            let work = cols.saturating_mul(n) * 2;
            par_row_chunks(out.as_mut_slice(), n, work, |t0, chunk| {
                let rows_here = chunk.len() / n;
                // Gather: out[t,:] += local[cm[t],:].
                for (t, &src_col) in cm[t0..t0 + rows_here].iter().enumerate() {
                    if src_col == NO_MATCH {
                        continue;
                    }
                    let src = local_ref.row(src_col as usize);
                    let dst = &mut chunk[t * n..(t + 1) * n];
                    for (dv, &sv) in dst.iter_mut().zip(src) {
                        *dv += sv;
                    }
                }
                // Correction: out[j,:] -= Dₖ[ci[i],cm[j]] · X[i,:].
                for &(i, ref zero_cols) in zeros {
                    let src_row = ci[i];
                    if src_row == NO_MATCH {
                        continue;
                    }
                    let d_row = d.row(src_row as usize);
                    let x_row = x.row(i);
                    let j0 = zero_cols.partition_point(|&j| j < t0);
                    for &j in zero_cols[j0..].iter().take_while(|&&j| j < t0 + rows_here) {
                        let sc = cm[j];
                        if sc == NO_MATCH {
                            continue;
                        }
                        let coef = d_row[sc as usize];
                        if coef == 0.0 {
                            continue;
                        }
                        let dst = &mut chunk[(j - t0) * n..(j - t0 + 1) * n];
                        for (dv, &xv) in dst.iter_mut().zip(x_row) {
                            *dv -= coef * xv;
                        }
                    }
                }
            });
            ws.give_matrix(xk);
            ws.give_matrix(local);
        }
        Ok(())
    }

    // --- Sparse strategy (literal Equation 2) ------------------------------

    fn masked_intermediate(&self, k: usize) -> Result<DenseMatrix> {
        let s = &self.metadata().sources[k];
        let tk = self.intermediate(k)?;
        if s.redundancy.is_all_ones() {
            return Ok(tk);
        }
        Ok(tk.hadamard(&s.redundancy.to_dense())?)
    }

    fn lmm_sparse(&self, x: &DenseMatrix, rows: usize) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(rows, x.cols());
        for k in 0..self.num_sources() {
            let masked = self.masked_intermediate(k)?;
            out.add_assign(&masked.matmul(x)?)?;
        }
        Ok(out)
    }

    fn lmm_t_sparse(&self, x: &DenseMatrix, cols: usize) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(cols, x.cols());
        for k in 0..self.num_sources() {
            let masked = self.masked_intermediate(k)?;
            out.add_assign(&masked.transpose_matmul(x)?)?;
        }
        Ok(out)
    }

    // --- Morpheus strategy (Equation 1 baseline) ---------------------------

    /// Errors when any source pair overlaps in target rows or columns —
    /// the situations rule (1) silently gets wrong.
    fn ensure_disjoint(&self, op: &str) -> Result<()> {
        let sources = &self.metadata().sources;
        for source in sources.iter().skip(1) {
            if !source.redundancy.is_all_ones() {
                return Err(FactorizeError::UnsupportedByStrategy(format!(
                    "{op}: Morpheus rule (1) assumes disjoint sources, but source {} \
                     has {} redundant cells (use Strategy::Compressed)",
                    source.name,
                    source.redundancy.zero_count()
                )));
            }
        }
        // Columns must also not overlap even when no row overlaps (a union
        // over shared columns double-counts nothing, so allow it).
        Ok(())
    }

    fn lmm_morpheus(&self, x: &DenseMatrix, rows: usize) -> Result<DenseMatrix> {
        // Iₖ(Dₖ · X[mapped cols of k, ]) — the partition X[1:c_S1,] etc. of
        // rule (1) generalized to explicit per-source column lists.
        let mut out = DenseMatrix::zeros(rows, x.cols());
        for (s, d) in self.metadata().sources.iter().zip(self.source_data()) {
            let xk = x.scatter_rows_add(s.mapping.compressed(), s.mapping.source_cols())?;
            let local = d.matmul(&xk)?;
            let lifted = local.gather_rows(s.indicator.compressed())?;
            out.add_assign(&lifted)?;
        }
        Ok(out)
    }

    fn lmm_t_morpheus(&self, x: &DenseMatrix, cols: usize) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(cols, x.cols());
        for (s, d) in self.metadata().sources.iter().zip(self.source_data()) {
            let xk = x.scatter_rows_add(s.indicator.compressed(), s.indicator.source_rows())?;
            let local = d.transpose_matmul(&xk)?;
            let lifted = local.gather_rows(s.mapping.compressed())?;
            out.add_assign(&lifted)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::tests::{figure2d_target, running_example};
    use amalur_integration::{
        DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
    };
    use proptest::prelude::{prop_assert, proptest, ProptestConfig};
    use rand::SeedableRng;

    fn x_for(cols: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DenseMatrix::random_uniform(cols, n, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn figure4c_lmm_rewrite() {
        // Figure 4c uses X = [[6,2],[5,2],[2,4],[3,9]]ᵀ-ish; we check the
        // exact example: T X with the compressed rewrite equals the
        // materialized product.
        let ft = running_example();
        let x = DenseMatrix::from_rows(&[
            vec![6.0, 5.0],
            vec![3.0, 2.0],
            vec![2.0, 2.0],
            vec![4.0, 2.0],
        ])
        .unwrap();
        let reference = figure2d_target().matmul(&x).unwrap();
        let fact = ft.lmm(&x, Strategy::Compressed).unwrap();
        assert!(fact.approx_eq(&reference, 1e-9));
        let sparse = ft.lmm(&x, Strategy::Sparse).unwrap();
        assert!(sparse.approx_eq(&reference, 1e-9));
    }

    #[test]
    fn morpheus_rule_is_wrong_on_overlap() {
        // The running example has overlapping rows AND columns: rule (1)
        // either errors (our guard) — the paper's motivation for rule (2).
        let ft = running_example();
        let x = x_for(4, 2, 7);
        let err = ft.lmm(&x, Strategy::Morpheus).unwrap_err();
        assert!(matches!(err, FactorizeError::UnsupportedByStrategy(_)));
    }

    /// A Morpheus-style configuration: disjoint columns, PK–FK rows.
    fn disjoint_example() -> FactorizedTable {
        // Fact table D1 (5×2) with rows mapping 1:1; dimension D2 (2×3)
        // with fan-out rows (PK–FK): target row i uses dim row i % 2.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let d1 = DenseMatrix::random_uniform(5, 2, -1.0, 1.0, &mut rng);
        let d2 = DenseMatrix::random_uniform(2, 3, -1.0, 1.0, &mut rng);
        let cm1 = MappingMatrix::new(vec![0, 1, NO_MATCH, NO_MATCH, NO_MATCH], 2).unwrap();
        let cm2 = MappingMatrix::new(vec![NO_MATCH, NO_MATCH, 0, 1, 2], 3).unwrap();
        let ci1 = IndicatorMatrix::new(vec![0, 1, 2, 3, 4], 5).unwrap();
        let ci2 = IndicatorMatrix::new(vec![0, 1, 0, 1, 0], 2).unwrap();
        let r1 = RedundancyMatrix::all_ones(5, 5);
        let r2 = RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &ci2, &cm2).unwrap();
        assert!(r2.is_all_ones()); // no overlap ⇒ Morpheus assumption holds
        let metadata = DiMetadata {
            target_columns: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
            target_rows: 5,
            sources: vec![
                SourceMetadata {
                    name: "fact".into(),
                    mapped_columns: vec!["a".into(), "b".into()],
                    mapping: cm1,
                    indicator: ci1,
                    redundancy: r1,
                },
                SourceMetadata {
                    name: "dim".into(),
                    mapped_columns: vec!["c".into(), "d".into(), "e".into()],
                    mapping: cm2,
                    indicator: ci2,
                    redundancy: r2,
                },
            ],
        };
        FactorizedTable::new(metadata, vec![d1, d2]).unwrap()
    }

    #[test]
    fn all_strategies_agree_on_disjoint_sources() {
        let ft = disjoint_example();
        let t = ft.materialize();
        let x = x_for(5, 3, 1);
        let reference = t.matmul(&x).unwrap();
        for s in [Strategy::Compressed, Strategy::Sparse, Strategy::Morpheus] {
            let got = ft.lmm(&x, s).unwrap();
            assert!(got.approx_eq(&reference, 1e-9), "strategy {s} diverged");
        }
        let y = x_for(5, 2, 2);
        let reference_t = t.transpose().matmul(&y).unwrap();
        for s in [Strategy::Compressed, Strategy::Sparse, Strategy::Morpheus] {
            let got = ft.lmm_transpose(&y, s).unwrap();
            assert!(got.approx_eq(&reference_t, 1e-9), "strategy {s} diverged");
        }
    }

    #[test]
    fn into_variants_match_allocating_operators() {
        let ft = running_example();
        let (rows, cols) = ft.target_shape();
        let x = x_for(cols, 3, 21);
        let y = x_for(rows, 2, 22);
        let mut ws = Workspace::new();
        // Dirty output buffers: `_into` must fully overwrite them.
        let mut out = DenseMatrix::filled(rows, 3, 7.0);
        ft.lmm_into(&x, &mut out, &mut ws).unwrap();
        assert!(out.approx_eq(&ft.lmm(&x, Strategy::Compressed).unwrap(), 1e-12));
        let mut out_t = DenseMatrix::filled(cols, 2, -3.0);
        ft.lmm_transpose_into(&y, &mut out_t, &mut ws).unwrap();
        assert!(out_t.approx_eq(&ft.lmm_transpose(&y, Strategy::Compressed).unwrap(), 1e-12));
        // Shape validation for the output parameter.
        let mut wrong = DenseMatrix::zeros(rows, 1);
        assert!(ft.lmm_into(&x, &mut wrong, &mut ws).is_err());
        assert!(ft.lmm_transpose_into(&y, &mut wrong, &mut ws).is_err());
    }

    #[test]
    fn lmm_colstable_columns_bit_identical_to_single_column_lmm() {
        // The serving-batch contract end to end: every column of a
        // batched factorized predict equals, bit for bit, the result of
        // serving that column alone through `lmm_into`.
        let ft = running_example();
        let (rows, cols) = ft.target_shape();
        let mut ws = Workspace::new();
        for n in [1usize, 2, 5, 9] {
            let x = x_for(cols, n, 31 + n as u64);
            let mut batched = DenseMatrix::zeros(rows, n);
            ft.lmm_colstable_into(&x, &mut batched, &mut ws).unwrap();
            for j in 0..n {
                let col = DenseMatrix::column_vector(&x.col(j));
                let mut single = DenseMatrix::zeros(rows, 1);
                ft.lmm_into(&col, &mut single, &mut ws).unwrap();
                for i in 0..rows {
                    assert!(
                        batched.get(i, j).to_bits() == single.get(i, 0).to_bits(),
                        "batch width {n}, cell ({i},{j}) differs"
                    );
                }
            }
            // And it is still the correct product.
            assert!(batched.approx_eq(&ft.lmm(&x, Strategy::Compressed).unwrap(), 1e-12));
        }
    }

    #[test]
    fn repeated_lmm_colstable_is_allocation_free_once_warm() {
        let ft = running_example();
        let (rows, cols) = ft.target_shape();
        let x = x_for(cols, 4, 29);
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(rows, 4);
        ft.lmm_colstable_into(&x, &mut out, &mut ws).unwrap();
        let warm = ws.fresh_allocations();
        for _ in 0..10 {
            ft.lmm_colstable_into(&x, &mut out, &mut ws).unwrap();
        }
        assert_eq!(ws.fresh_allocations(), warm);
    }

    #[test]
    fn repeated_lmm_into_is_allocation_free_once_warm() {
        let ft = running_example();
        let (rows, cols) = ft.target_shape();
        let x = x_for(cols, 2, 23);
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(rows, 2);
        ft.lmm_into(&x, &mut out, &mut ws).unwrap();
        let warm = ws.fresh_allocations();
        for _ in 0..10 {
            ft.lmm_into(&x, &mut out, &mut ws).unwrap();
        }
        assert_eq!(ws.fresh_allocations(), warm);
    }

    #[test]
    fn lmm_transpose_matches_materialized() {
        let ft = running_example();
        let x = x_for(6, 3, 3);
        let reference = figure2d_target().transpose().matmul(&x).unwrap();
        for s in [Strategy::Compressed, Strategy::Sparse] {
            assert!(ft.lmm_transpose(&x, s).unwrap().approx_eq(&reference, 1e-9));
        }
    }

    #[test]
    fn rmm_matches_materialized() {
        let ft = running_example();
        let x = x_for(2, 6, 4).transpose().transpose(); // 2×6
        let x = x.slice(0..2, 0..6).unwrap();
        let reference = x.matmul(&figure2d_target()).unwrap();
        let got = ft.rmm(&x, Strategy::Compressed).unwrap();
        assert!(got.approx_eq(&reference, 1e-9));
    }

    #[test]
    fn gram_matches_materialized() {
        let ft = running_example();
        let t = figure2d_target();
        let reference = t.gram();
        assert!(ft.gram().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn sums_match_materialized() {
        let ft = running_example();
        let t = figure2d_target();
        let cs = ft.col_sums();
        for (a, b) in cs.iter().zip(t.col_sums()) {
            assert!((a - b).abs() < 1e-9);
        }
        let rs = ft.row_sums();
        for (a, b) in rs.iter().zip(t.row_sums()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((ft.total_sum() - t.sum()).abs() < 1e-9);
    }

    #[test]
    fn shape_errors() {
        let ft = running_example();
        let bad = DenseMatrix::zeros(3, 2);
        assert!(ft.lmm(&bad, Strategy::Compressed).is_err());
        assert!(ft.lmm_transpose(&bad, Strategy::Compressed).is_err());
        assert!(ft
            .rmm(&DenseMatrix::zeros(2, 5), Strategy::Compressed)
            .is_err());
    }

    #[test]
    fn pk_fk_fanout_duplicates_dimension_rows() {
        // Classic Morpheus setting: the dimension row is reused by many
        // target rows; column sums must weight by the fan-out.
        let ft = disjoint_example();
        let t = ft.materialize();
        let cs = ft.col_sums();
        for (a, b) in cs.iter().zip(t.col_sums()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_factorized_lmm_equals_materialized(
            seed in 0u64..u64::MAX, n in 1usize..4,
        ) {
            // Random silo configuration: random sizes, random overlap.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let ft = random_factorized(&mut rng);
            let t = ft.materialize();
            let x = DenseMatrix::random_uniform(t.cols(), n, -1.0, 1.0, &mut rng);
            let reference = t.matmul(&x).unwrap();
            for s in [Strategy::Compressed, Strategy::Sparse] {
                prop_assert!(ft.lmm(&x, s).unwrap().approx_eq(&reference, 1e-9));
            }
            let y = DenseMatrix::random_uniform(t.rows(), n, -1.0, 1.0, &mut rng);
            let reference_t = t.transpose().matmul(&y).unwrap();
            for s in [Strategy::Compressed, Strategy::Sparse] {
                prop_assert!(ft.lmm_transpose(&y, s).unwrap().approx_eq(&reference_t, 1e-9));
            }
            prop_assert!(ft.gram().approx_eq(&t.gram(), 1e-8));
        }
    }

    /// Generates a random two-source factorized table with row and column
    /// overlaps (full-outer-join shape).
    fn random_factorized(rng: &mut rand::rngs::StdRng) -> FactorizedTable {
        use rand::Rng;
        let r1 = rng.gen_range(1usize..8);
        let r2 = rng.gen_range(1usize..8);
        let shared_cols = rng.gen_range(0..3usize);
        let own1 = rng.gen_range(1..4usize);
        let own2 = rng.gen_range(1..4usize);
        let c1 = shared_cols + own1;
        let c2 = shared_cols + own2;
        let ct = shared_cols + own1 + own2;
        // Row matching: each left row matches a distinct right row with p=0.5.
        let matched: Vec<(usize, usize)> = (0..r1.min(r2))
            .filter(|_| rng.gen_bool(0.5))
            .enumerate()
            .map(|(j, _)| (j, j))
            .collect();
        let matched_right: Vec<bool> = {
            let mut v = vec![false; r2];
            for &(_, r) in &matched {
                v[r] = true;
            }
            v
        };
        let rt = r1 + r2 - matched.len();
        // CI1: left rows 0..r1 then -1s.
        let mut ci1: Vec<i64> = (0..r1 as i64).collect();
        ci1.extend(std::iter::repeat_n(NO_MATCH, rt - r1));
        // CI2: matched rows at left positions, unmatched appended.
        let mut ci2: Vec<i64> = vec![NO_MATCH; rt];
        for &(l, r) in &matched {
            ci2[l] = r as i64;
        }
        let mut tail = r1;
        for (r, &m) in matched_right.iter().enumerate() {
            if !m {
                ci2[tail] = r as i64;
                tail += 1;
            }
        }
        // CM1: shared cols then own1; CM2: shared cols then own2 at the end.
        let mut cm1: Vec<i64> = Vec::with_capacity(ct);
        let mut cm2: Vec<i64> = Vec::with_capacity(ct);
        for j in 0..ct {
            if j < shared_cols {
                cm1.push(j as i64);
                cm2.push(j as i64);
            } else if j < shared_cols + own1 {
                cm1.push(j as i64);
                cm2.push(NO_MATCH);
            } else {
                cm1.push(NO_MATCH);
                cm2.push((j - own1) as i64);
            }
        }
        // Consistent shared values: build D2 so matched rows agree on
        // shared columns with D1.
        let d1 = DenseMatrix::random_uniform(r1, c1, -2.0, 2.0, rng);
        let mut d2 = DenseMatrix::random_uniform(r2, c2, -2.0, 2.0, rng);
        for &(l, r) in &matched {
            for c in 0..shared_cols {
                d2.set(r, c, d1.get(l, c));
            }
        }
        let mapping1 = MappingMatrix::new(cm1, c1).unwrap();
        let mapping2 = MappingMatrix::new(cm2, c2).unwrap();
        let indicator1 = IndicatorMatrix::new(ci1, r1).unwrap();
        let indicator2 = IndicatorMatrix::new(ci2, r2).unwrap();
        let red1 = RedundancyMatrix::all_ones(rt, ct);
        let red2 =
            RedundancyMatrix::against_earlier(&[(&indicator1, &mapping1)], &indicator2, &mapping2)
                .unwrap();
        let metadata = DiMetadata {
            target_columns: (0..ct).map(|i| format!("c{i}")).collect(),
            target_rows: rt,
            sources: vec![
                SourceMetadata {
                    name: "L".into(),
                    mapped_columns: (0..c1).map(|i| format!("l{i}")).collect(),
                    mapping: mapping1,
                    indicator: indicator1,
                    redundancy: red1,
                },
                SourceMetadata {
                    name: "R".into(),
                    mapped_columns: (0..c2).map(|i| format!("r{i}")).collect(),
                    mapping: mapping2,
                    indicator: indicator2,
                    redundancy: red2,
                },
            ],
        };
        FactorizedTable::new(metadata, vec![d1, d2]).unwrap()
    }
}
