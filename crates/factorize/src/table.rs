//! The factorized target table.

use crate::{FactorizeError, Result};
use amalur_integration::{DiMetadata, IntegrationResult};
use amalur_matrix::{DenseMatrix, NO_MATCH};

/// A target table kept in factorized form: one data matrix `Dₖ` per
/// source plus the DI metadata that defines how they assemble into `T`.
///
/// `T[i, t] = Dₖ[CIₖ[i], CMₖ[t]]` for the *first* source `k` (in base-
/// table order) that covers target row `i` and target column `t`; the
/// redundancy matrices `Rₖ` encode exactly that precedence.
#[derive(Debug, Clone)]
pub struct FactorizedTable {
    metadata: DiMetadata,
    data: Vec<DenseMatrix>,
}

impl FactorizedTable {
    /// Builds a factorized table, validating that every `Dₖ` matches the
    /// metadata's declared shape (`r_Sk × c_Sk`).
    ///
    /// # Errors
    /// [`FactorizeError::ShapeMismatch`] on any disagreement.
    pub fn new(metadata: DiMetadata, data: Vec<DenseMatrix>) -> Result<Self> {
        metadata.validate()?;
        if metadata.sources.len() != data.len() {
            return Err(FactorizeError::ShapeMismatch(format!(
                "{} sources in metadata but {} data matrices",
                metadata.sources.len(),
                data.len()
            )));
        }
        for (s, d) in metadata.sources.iter().zip(&data) {
            if d.cols() != s.mapping.source_cols() {
                return Err(FactorizeError::ShapeMismatch(format!(
                    "source {}: D has {} cols, mapping declares {}",
                    s.name,
                    d.cols(),
                    s.mapping.source_cols()
                )));
            }
            if d.rows() != s.indicator.source_rows() {
                return Err(FactorizeError::ShapeMismatch(format!(
                    "source {}: D has {} rows, indicator declares {}",
                    s.name,
                    d.rows(),
                    s.indicator.source_rows()
                )));
            }
        }
        Ok(Self { metadata, data })
    }

    /// Builds a factorized table directly from an integration planner's
    /// output.
    pub fn from_integration(result: IntegrationResult) -> Result<Self> {
        Self::new(result.metadata, result.source_data)
    }

    /// The DI metadata.
    pub fn metadata(&self) -> &DiMetadata {
        &self.metadata
    }

    /// The source data matrices `Dₖ`.
    pub fn source_data(&self) -> &[DenseMatrix] {
        &self.data
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.data.len()
    }

    /// Target table shape `(r_T, c_T)`.
    pub fn target_shape(&self) -> (usize, usize) {
        (self.metadata.target_rows, self.metadata.target_cols())
    }

    /// Total number of source cells Σ `r_Sk · c_Sk` — the storage the
    /// factorized representation actually holds.
    pub fn source_cells(&self) -> usize {
        self.data.iter().map(DenseMatrix::len).sum()
    }

    /// Target cells `r_T · c_T` — what materialization would allocate.
    pub fn target_cells(&self) -> usize {
        let (r, c) = self.target_shape();
        r * c
    }

    /// The intermediate contribution `Tₖ = IₖDₖMₖᵀ` of source `k`
    /// (Figure 4c), *without* redundancy masking.
    pub fn intermediate(&self, k: usize) -> Result<DenseMatrix> {
        let s = &self.metadata.sources[k];
        let gathered_cols = self.data[k].gather_cols(s.mapping.compressed())?;
        Ok(gathered_cols.gather_rows(s.indicator.compressed())?)
    }

    /// Materializes the target table `T = Σₖ (Tₖ ∘ Rₖ)` without building
    /// any `r_T × c_T` intermediate other than the output itself.
    pub fn materialize(&self) -> DenseMatrix {
        let (rows, cols) = self.target_shape();
        let mut out = DenseMatrix::zeros(rows, cols);
        for (s, d) in self.metadata.sources.iter().zip(&self.data) {
            let ci = s.indicator.compressed();
            let cm = s.mapping.compressed();
            // Per-row redundant column masks for this source.
            let zero_rows = s.redundancy.zero_cells_by_row();
            let mut zero_iter = zero_rows.iter().peekable();
            for (i, &src_row) in ci.iter().enumerate() {
                let zero_cols: &[usize] = match zero_iter.peek() {
                    Some((r, cols)) if *r == i => {
                        let cols = cols.as_slice();
                        zero_iter.next();
                        cols
                    }
                    _ => &[],
                };
                if src_row == NO_MATCH {
                    continue;
                }
                let src_row = src_row as usize;
                let d_row = d.row(src_row);
                let out_row = out.row_mut(i);
                for (t, &src_col) in cm.iter().enumerate() {
                    if src_col == NO_MATCH || zero_cols.binary_search(&t).is_ok() {
                        continue;
                    }
                    out_row[t] += d_row[src_col as usize];
                }
            }
        }
        out
    }

    /// Materializes a single target column as a vector — used to extract
    /// label columns cheaply (labels must exist centrally for supervised
    /// training even in the factorized regime).
    ///
    /// # Errors
    /// [`FactorizeError::OperandMismatch`] when `col` is out of range.
    pub fn materialize_column(&self, col: usize) -> Result<Vec<f64>> {
        let (rows, cols) = self.target_shape();
        if col >= cols {
            return Err(FactorizeError::OperandMismatch {
                op: "materialize_column",
                expected: (rows, cols),
                found: (rows, col),
            });
        }
        let mut out = vec![0.0; rows];
        for (s, d) in self.metadata.sources.iter().zip(&self.data) {
            let src_col = s.mapping.compressed()[col];
            if src_col == NO_MATCH {
                continue;
            }
            let src_col = src_col as usize;
            for (i, &src_row) in s.indicator.compressed().iter().enumerate() {
                if src_row == NO_MATCH || s.redundancy.get(i, col) == 0.0 {
                    continue;
                }
                out[i] += d.get(src_row as usize, src_col);
            }
        }
        Ok(out)
    }

    /// Returns a new factorized table without target column `col`
    /// (e.g. splitting the label column off the feature matrix). The
    /// source data matrices are unchanged — the dropped column merely
    /// becomes unmapped.
    ///
    /// # Errors
    /// [`FactorizeError::OperandMismatch`] when `col` is out of range.
    pub fn drop_target_column(&self, col: usize) -> Result<FactorizedTable> {
        use amalur_integration::{
            DupBlock, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
        };
        let (rows, cols) = self.target_shape();
        if col >= cols {
            return Err(FactorizeError::OperandMismatch {
                op: "drop_target_column",
                expected: (rows, cols),
                found: (rows, col),
            });
        }
        let mut target_columns = self.metadata.target_columns.clone();
        target_columns.remove(col);
        let mut sources = Vec::with_capacity(self.metadata.sources.len());
        for s in &self.metadata.sources {
            let mut cm = s.mapping.compressed().to_vec();
            cm.remove(col);
            let blocks: Vec<DupBlock> = s
                .redundancy
                .blocks()
                .iter()
                .map(|b| DupBlock {
                    rows: b.rows.clone(),
                    cols: b
                        .cols
                        .iter()
                        .filter(|&&c| c != col)
                        .map(|&c| if c > col { c - 1 } else { c })
                        .collect(),
                })
                .filter(|b| !b.cols.is_empty())
                .collect();
            sources.push(SourceMetadata {
                name: s.name.clone(),
                mapped_columns: s.mapped_columns.clone(),
                mapping: MappingMatrix::new(cm, s.mapping.source_cols())?,
                indicator: IndicatorMatrix::new(
                    s.indicator.compressed().to_vec(),
                    s.indicator.source_rows(),
                )?,
                redundancy: RedundancyMatrix::from_blocks(rows, cols - 1, blocks)?,
            });
        }
        FactorizedTable::new(
            DiMetadata {
                target_columns,
                target_rows: rows,
                sources,
            },
            self.data.clone(),
        )
    }

    /// Splits target column `label_col` off as the label vector `y`,
    /// returning `(features, y)` where `features` is the factorized table
    /// over the remaining columns.
    ///
    /// # Errors
    /// Propagates out-of-range errors from the split.
    pub fn split_label(&self, label_col: usize) -> Result<(FactorizedTable, DenseMatrix)> {
        let y = self.materialize_column(label_col)?;
        let features = self.drop_target_column(label_col)?;
        Ok((features, DenseMatrix::column_vector(&y)))
    }

    /// Per-row squared norms `‖T[i,:]‖²` without materialization.
    ///
    /// Because the redundancy masks give the masked contributions `T̃ₖ`
    /// disjoint supports, `T ∘ T = Σₖ T̃ₖ ∘ T̃ₖ` and the squared norms
    /// decompose per source. Needed by K-Means (distance computation) and
    /// GNMF (reconstruction loss).
    pub fn row_norms_sq(&self) -> Vec<f64> {
        let (rows, _) = self.target_shape();
        let mut out = vec![0.0; rows];
        for (s, d) in self.metadata.sources.iter().zip(&self.data) {
            let ci = s.indicator.compressed();
            let cm = s.mapping.compressed();
            let zero_rows = s.redundancy.zero_cells_by_row();
            let mut zero_iter = zero_rows.iter().peekable();
            for (i, &src_row) in ci.iter().enumerate() {
                let zero_cols: &[usize] = match zero_iter.peek() {
                    Some((r, cols)) if *r == i => {
                        let cols = cols.as_slice();
                        zero_iter.next();
                        cols
                    }
                    _ => &[],
                };
                if src_row == NO_MATCH {
                    continue;
                }
                let d_row = d.row(src_row as usize);
                let mut acc = 0.0;
                for (t, &src_col) in cm.iter().enumerate() {
                    if src_col == NO_MATCH || zero_cols.binary_search(&t).is_ok() {
                        continue;
                    }
                    let v = d_row[src_col as usize];
                    acc += v * v;
                }
                out[i] += acc;
            }
        }
        out
    }

    /// Tuple ratio `r_T / max r_Sk` and feature ratio `c_T / c_base` —
    /// the two parameters of Morpheus' decision heuristic (§IV-B).
    pub fn morpheus_ratios(&self) -> (f64, f64) {
        let (rt, ct) = self.target_shape();
        let max_rows = self
            .data
            .iter()
            .map(DenseMatrix::rows)
            .max()
            .unwrap_or(1)
            .max(1);
        let base_cols = self.data.first().map_or(1, DenseMatrix::cols).max(1);
        (rt as f64 / max_rows as f64, ct as f64 / base_cols as f64)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use amalur_integration::{
        DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
    };

    /// The running example in factorized form (Figure 4).
    pub(crate) fn running_example() -> FactorizedTable {
        let d1 = DenseMatrix::from_rows(&[
            vec![0.0, 20.0, 60.0],
            vec![1.0, 35.0, 58.0],
            vec![0.0, 22.0, 65.0],
            vec![1.0, 37.0, 70.0],
        ])
        .unwrap();
        let d2 = DenseMatrix::from_rows(&[
            vec![1.0, 45.0, 95.0],
            vec![0.0, 20.0, 97.0],
            vec![1.0, 37.0, 92.0],
        ])
        .unwrap();
        let cm1 = MappingMatrix::new(vec![0, 1, 2, NO_MATCH], 3).unwrap();
        let cm2 = MappingMatrix::new(vec![0, 1, NO_MATCH, 2], 3).unwrap();
        let ci1 = IndicatorMatrix::new(vec![0, 1, 2, 3, NO_MATCH, NO_MATCH], 4).unwrap();
        let ci2 = IndicatorMatrix::new(vec![NO_MATCH, NO_MATCH, NO_MATCH, 2, 0, 1], 3).unwrap();
        let r1 = RedundancyMatrix::all_ones(6, 4);
        let r2 = RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &ci2, &cm2).unwrap();
        let metadata = DiMetadata {
            target_columns: vec!["m".into(), "a".into(), "hr".into(), "o".into()],
            target_rows: 6,
            sources: vec![
                SourceMetadata {
                    name: "S1".into(),
                    mapped_columns: vec!["m".into(), "a".into(), "hr".into()],
                    mapping: cm1,
                    indicator: ci1,
                    redundancy: r1,
                },
                SourceMetadata {
                    name: "S2".into(),
                    mapped_columns: vec!["m".into(), "a".into(), "o".into()],
                    mapping: cm2,
                    indicator: ci2,
                    redundancy: r2,
                },
            ],
        };
        FactorizedTable::new(metadata, vec![d1, d2]).unwrap()
    }

    /// The materialized T of Figure 2d (rows: Jack, Sam, Ruby, Jane, Rose,
    /// Castiel; cols: m, a, hr, o; missing cells are 0).
    pub(crate) fn figure2d_target() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.0, 20.0, 60.0, 0.0],
            vec![1.0, 35.0, 58.0, 0.0],
            vec![0.0, 22.0, 65.0, 0.0],
            vec![1.0, 37.0, 70.0, 92.0],
            vec![1.0, 45.0, 0.0, 95.0],
            vec![0.0, 20.0, 0.0, 97.0],
        ])
        .unwrap()
    }

    #[test]
    fn materialize_reproduces_figure2d() {
        let ft = running_example();
        assert_eq!(ft.target_shape(), (6, 4));
        assert!(ft.materialize().approx_eq(&figure2d_target(), 1e-12));
    }

    #[test]
    fn intermediate_t2_has_unmasked_duplicates() {
        // Figure 4c: T2 contains Jane's (m, a) again — the red values.
        let ft = running_example();
        let t2 = ft.intermediate(1).unwrap();
        assert_eq!(t2.get(3, 0), 1.0); // duplicate m
        assert_eq!(t2.get(3, 1), 37.0); // duplicate a
        assert_eq!(t2.get(3, 3), 92.0); // genuine new o
        assert_eq!(t2.get(0, 0), 0.0); // Jack's row: no S2 contribution
                                       // Naive T1 + T2 would double-count Jane: T1+T2 ≠ T.
        let t1 = ft.intermediate(0).unwrap();
        let naive = t1.add(&t2).unwrap();
        assert!(!naive.approx_eq(&figure2d_target(), 1e-12));
    }

    #[test]
    fn materialize_column_extracts_labels() {
        let ft = running_example();
        // Column 0 is the mortality label.
        assert_eq!(
            ft.materialize_column(0).unwrap(),
            vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0]
        );
        // Column 3 is oxygen.
        assert_eq!(
            ft.materialize_column(3).unwrap(),
            vec![0.0, 0.0, 0.0, 92.0, 95.0, 97.0]
        );
        assert!(ft.materialize_column(9).is_err());
    }

    #[test]
    fn split_label_drops_column() {
        let ft = running_example();
        let (features, y) = ft.split_label(0).unwrap();
        assert_eq!(features.target_shape(), (6, 3));
        assert_eq!(features.metadata().target_columns, vec!["a", "hr", "o"]);
        assert_eq!(y.shape(), (6, 1));
        assert_eq!(y.col(0), vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        // Feature materialization equals T with col 0 removed.
        let t = figure2d_target();
        let expect = t.slice(0..6, 1..4).unwrap();
        assert!(features.materialize().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn drop_target_column_remaps_redundancy() {
        let ft = running_example();
        // Dropping column 0 (m) shifts the redundancy zero at (3, 1)=a to (3, 0).
        let dropped = ft.drop_target_column(0).unwrap();
        let r2 = &dropped.metadata().sources[1].redundancy;
        assert_eq!(r2.get(3, 0), 0.0); // a
        assert_eq!(r2.get(3, 2), 1.0); // o
        assert_eq!(r2.zero_count(), 1);
        // Dropping the redundant 'a' column (idx 1) removes one zero too.
        let dropped2 = ft.drop_target_column(1).unwrap();
        assert_eq!(dropped2.metadata().sources[1].redundancy.zero_count(), 1);
    }

    #[test]
    fn shape_validation() {
        let ft = running_example();
        let mut bad_data = ft.source_data().to_vec();
        bad_data[0] = DenseMatrix::zeros(4, 2); // wrong cols
        assert!(FactorizedTable::new(ft.metadata().clone(), bad_data).is_err());
        let mut bad_rows = ft.source_data().to_vec();
        bad_rows[1] = DenseMatrix::zeros(5, 3); // wrong rows
        assert!(FactorizedTable::new(ft.metadata().clone(), bad_rows).is_err());
        assert!(FactorizedTable::new(ft.metadata().clone(), vec![]).is_err());
    }

    #[test]
    fn storage_accounting() {
        let ft = running_example();
        assert_eq!(ft.source_cells(), 12 + 9);
        assert_eq!(ft.target_cells(), 24);
        let (tr, fr) = ft.morpheus_ratios();
        assert!((tr - 6.0 / 4.0).abs() < 1e-12);
        assert!((fr - 4.0 / 3.0).abs() < 1e-12);
    }
}
