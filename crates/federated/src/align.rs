//! DI-metadata-driven party alignment (§V-A).
//!
//! The paper rewrites the federated objective with the DI matrices:
//! `X_A = I₁D₁M₁ᵀ` and `X_B = I₂D₂M₂ᵀ` — each party's feature space *is*
//! its masked intermediate, aligned to the shared target rows. This
//! module materializes those views (per party, never the whole target),
//! which is exactly the data preparation VFL frameworks otherwise demand
//! as manual work.

use crate::{FederatedError, Result};
use amalur_factorize::FactorizedTable;
use amalur_matrix::DenseMatrix;

/// One party's aligned view of the integrated data.
#[derive(Debug, Clone)]
pub struct PartyView {
    /// Party (source table) name.
    pub name: String,
    /// Feature matrix `(Iₖ Dₖ Mₖᵀ) ∘ Rₖ`, restricted to this source's
    /// target columns: `target_rows × |own columns|`. Rows this party
    /// does not cover are zero — the §V-A convention for partially
    /// overlapping sample spaces.
    pub features: DenseMatrix,
    /// Names of the target columns this view carries.
    pub columns: Vec<String>,
}

/// Builds the per-party views for every source of a factorized table.
///
/// Redundant cells (shared columns owned by an earlier party) are
/// zeroed, so concatenating all views column-wise reproduces the target
/// table exactly — the invariant the VFL equivalence tests rely on.
///
/// # Errors
/// Propagates shape errors from the factorized ops.
pub fn party_views(ft: &FactorizedTable) -> Result<Vec<PartyView>> {
    let md = ft.metadata();
    let mut out = Vec::with_capacity(md.sources.len());
    for (k, s) in md.sources.iter().enumerate() {
        // Masked intermediate, then keep only this source's columns.
        let full = ft.intermediate(k)?;
        let masked = if s.redundancy.is_all_ones() {
            full
        } else {
            let mut m = full;
            for &(row, ref cols) in s.redundancy.zero_cells_by_row() {
                for &c in cols {
                    m.set(row, c, 0.0);
                }
            }
            m
        };
        let own_cols = s.mapping.mapped_target_cols();
        if own_cols.is_empty() {
            return Err(FederatedError::Misaligned(format!(
                "source {} maps no target columns",
                s.name
            )));
        }
        let idx: Vec<i64> = own_cols.iter().map(|&c| c as i64).collect();
        let features = masked.gather_cols(&idx)?;
        out.push(PartyView {
            name: s.name.clone(),
            features,
            columns: own_cols
                .iter()
                .map(|&c| md.target_columns[c].clone())
                .collect(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_data::TwoSourceSpec;

    fn table(shared_cols: usize) -> FactorizedTable {
        let spec = TwoSourceSpec {
            rows_s1: 40,
            cols_s1: 3,
            rows_s2: 8,
            cols_s2: 4,
            shared_cols,
            target_redundancy: true,
            row_coverage: 1.0,
            source_redundancy: false,
            seed: 5,
        };
        let (md, data) = amalur_data::generate_two_source(&spec).unwrap();
        FactorizedTable::new(md, data).unwrap()
    }

    #[test]
    fn views_have_aligned_rows_and_own_columns() {
        let ft = table(0);
        let views = party_views(&ft).unwrap();
        assert_eq!(views.len(), 2);
        let (rows, _) = ft.target_shape();
        assert_eq!(views[0].features.rows(), rows);
        assert_eq!(views[1].features.rows(), rows);
        assert_eq!(views[0].features.cols(), 3);
        assert_eq!(views[1].features.cols(), 4);
        assert_eq!(views[0].columns, vec!["f0", "f1", "f2"]);
    }

    #[test]
    fn concatenated_views_reproduce_target_without_overlap() {
        let ft = table(0);
        let views = party_views(&ft).unwrap();
        let concat = views[0].features.hstack(&views[1].features).unwrap();
        assert!(concat.approx_eq(&ft.materialize(), 1e-12));
    }

    #[test]
    fn overlapping_columns_are_split_not_duplicated() {
        let ft = table(2);
        let views = party_views(&ft).unwrap();
        let t = ft.materialize();
        // Shared target columns 0..2: party views partition each cell.
        for shared in 0..2usize {
            let a = views[0].features.col(shared);
            // Party 1's view also carries those target columns (its own
            // first two mapped columns).
            let b = views[1].features.col(shared);
            for (i, (va, vb)) in a.iter().zip(&b).enumerate() {
                let total = t.get(i, shared);
                assert!(
                    (va + vb - total).abs() < 1e-9,
                    "row {i}: {va} + {vb} != {total}"
                );
            }
        }
    }

    #[test]
    fn sum_of_view_predictions_equals_target_prediction() {
        // Σₖ Xₖ θₖ = T θ when θ is split by ownership — the §V-A identity.
        let ft = table(1);
        let views = party_views(&ft).unwrap();
        let (_, ct) = ft.target_shape();
        let theta = DenseMatrix::filled(ct, 1, 0.3);
        let reference = ft.materialize().matmul(&theta).unwrap();
        let mut sum = DenseMatrix::zeros(reference.rows(), 1);
        let md = ft.metadata();
        for (view, s) in views.iter().zip(&md.sources) {
            let own = s.mapping.mapped_target_cols();
            let theta_k =
                DenseMatrix::from_vec(own.len(), 1, own.iter().map(|&c| theta.get(c, 0)).collect())
                    .unwrap();
            sum.add_assign(&view.features.matmul(&theta_k).unwrap())
                .unwrap();
        }
        assert!(sum.approx_eq(&reference, 1e-9));
    }
}
