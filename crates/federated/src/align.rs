//! DI-metadata-driven party alignment (§V-A).
//!
//! The paper rewrites the federated objective with the DI matrices:
//! `X_A = I₁D₁M₁ᵀ` and `X_B = I₂D₂M₂ᵀ` — each party's feature space *is*
//! its masked intermediate, aligned to the shared target rows. This
//! module materializes those views (per party, never the whole target),
//! which is exactly the data preparation VFL frameworks otherwise demand
//! as manual work.

use crate::{FederatedError, Result};
use amalur_factorize::FactorizedTable;
use amalur_matrix::DenseMatrix;

/// One party's aligned view of the integrated data.
#[derive(Debug, Clone)]
pub struct PartyView {
    /// Party (source table) name.
    pub name: String,
    /// Feature matrix `(Iₖ Dₖ Mₖᵀ) ∘ Rₖ`, restricted to this source's
    /// target columns: `target_rows × |own columns|`. Rows this party
    /// does not cover are zero — the §V-A convention for partially
    /// overlapping sample spaces.
    pub features: DenseMatrix,
    /// Names of the target columns this view carries.
    pub columns: Vec<String>,
}

/// Builds the per-party views for every source of a factorized table.
///
/// Redundant cells (shared columns owned by an earlier party) are
/// zeroed, so concatenating all views column-wise reproduces the target
/// table exactly — the invariant the VFL equivalence tests rely on.
///
/// # Errors
/// Propagates shape errors from the factorized ops.
pub fn party_views(ft: &FactorizedTable) -> Result<Vec<PartyView>> {
    let md = ft.metadata();
    let mut out = Vec::with_capacity(md.sources.len());
    for (k, s) in md.sources.iter().enumerate() {
        // Masked intermediate, then keep only this source's columns.
        let full = ft.intermediate(k)?;
        let masked = if s.redundancy.is_all_ones() {
            full
        } else {
            let mut m = full;
            for &(row, ref cols) in s.redundancy.zero_cells_by_row() {
                for &c in cols {
                    m.set(row, c, 0.0);
                }
            }
            m
        };
        let own_cols = s.mapping.mapped_target_cols();
        if own_cols.is_empty() {
            return Err(FederatedError::Misaligned(format!(
                "source {} maps no target columns",
                s.name
            )));
        }
        let idx: Vec<i64> = own_cols.iter().map(|&c| c as i64).collect();
        let features = masked.gather_cols(&idx)?;
        out.push(PartyView {
            name: s.name.clone(),
            features,
            columns: own_cols
                .iter()
                .map(|&c| md.target_columns[c].clone())
                .collect(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_data::TwoSourceSpec;

    fn table(shared_cols: usize) -> FactorizedTable {
        let spec = TwoSourceSpec {
            rows_s1: 40,
            cols_s1: 3,
            rows_s2: 8,
            cols_s2: 4,
            shared_cols,
            target_redundancy: true,
            row_coverage: 1.0,
            source_redundancy: false,
            seed: 5,
        };
        let (md, data) = amalur_data::generate_two_source(&spec).unwrap();
        FactorizedTable::new(md, data).unwrap()
    }

    #[test]
    fn views_have_aligned_rows_and_own_columns() {
        let ft = table(0);
        let views = party_views(&ft).unwrap();
        assert_eq!(views.len(), 2);
        let (rows, _) = ft.target_shape();
        assert_eq!(views[0].features.rows(), rows);
        assert_eq!(views[1].features.rows(), rows);
        assert_eq!(views[0].features.cols(), 3);
        assert_eq!(views[1].features.cols(), 4);
        assert_eq!(views[0].columns, vec!["f0", "f1", "f2"]);
    }

    #[test]
    fn concatenated_views_reproduce_target_without_overlap() {
        let ft = table(0);
        let views = party_views(&ft).unwrap();
        let concat = views[0].features.hstack(&views[1].features).unwrap();
        assert!(concat.approx_eq(&ft.materialize(), 1e-12));
    }

    #[test]
    fn overlapping_columns_are_split_not_duplicated() {
        let ft = table(2);
        let views = party_views(&ft).unwrap();
        let t = ft.materialize();
        // Shared target columns 0..2: party views partition each cell.
        for shared in 0..2usize {
            let a = views[0].features.col(shared);
            // Party 1's view also carries those target columns (its own
            // first two mapped columns).
            let b = views[1].features.col(shared);
            for (i, (va, vb)) in a.iter().zip(&b).enumerate() {
                let total = t.get(i, shared);
                assert!(
                    (va + vb - total).abs() < 1e-9,
                    "row {i}: {va} + {vb} != {total}"
                );
            }
        }
    }

    #[test]
    fn sum_of_view_predictions_equals_target_prediction() {
        // Σₖ Xₖ θₖ = T θ when θ is split by ownership — the §V-A identity.
        let ft = table(1);
        let views = party_views(&ft).unwrap();
        let (_, ct) = ft.target_shape();
        let theta = DenseMatrix::filled(ct, 1, 0.3);
        let reference = ft.materialize().matmul(&theta).unwrap();
        let mut sum = DenseMatrix::zeros(reference.rows(), 1);
        let md = ft.metadata();
        for (view, s) in views.iter().zip(&md.sources) {
            let own = s.mapping.mapped_target_cols();
            let theta_k =
                DenseMatrix::from_vec(own.len(), 1, own.iter().map(|&c| theta.get(c, 0)).collect())
                    .unwrap();
            sum.add_assign(&view.features.matmul(&theta_k).unwrap())
                .unwrap();
        }
        assert!(sum.approx_eq(&reference, 1e-9));
    }

    // --- hand-built edge cases: errors, never panics --------------------

    use amalur_integration::{
        DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
    };
    use amalur_matrix::NO_MATCH;

    /// Two single-column sources over a hand-specified row alignment.
    fn two_source_table(ci1: Vec<i64>, ci2: Vec<i64>, target_rows: usize) -> FactorizedTable {
        let source = |name: &str, cm: Vec<i64>, ci: Vec<i64>, rows: usize| SourceMetadata {
            name: name.into(),
            mapped_columns: vec![format!("{name}_c0")],
            mapping: MappingMatrix::new(cm, 1).unwrap(),
            indicator: IndicatorMatrix::new(ci, rows).unwrap(),
            redundancy: RedundancyMatrix::all_ones(target_rows, 2),
        };
        let md = DiMetadata {
            target_columns: vec!["a".into(), "b".into()],
            target_rows,
            sources: vec![
                source("s1", vec![0, NO_MATCH], ci1, 3),
                source("s2", vec![NO_MATCH, 0], ci2, 3),
            ],
        };
        let d = |vals: &[f64]| DenseMatrix::from_vec(3, 1, vals.to_vec()).unwrap();
        FactorizedTable::new(md, vec![d(&[1.0, 2.0, 3.0]), d(&[10.0, 20.0, 30.0])]).unwrap()
    }

    #[test]
    fn empty_intersection_yields_views_training_rejects() {
        // An inner join that matched nothing: zero target rows. The
        // views materialize fine (0-row features) and training turns
        // them into a typed error, not a NaN run or a panic.
        let ft = two_source_table(vec![], vec![], 0);
        let views = party_views(&ft).unwrap();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].features.rows(), 0);
        let features: Vec<DenseMatrix> = views.into_iter().map(|v| v.features).collect();
        let y = DenseMatrix::zeros(0, 1);
        assert!(matches!(
            crate::vfl::train_vfl(&features, &y, &crate::vfl::VflConfig::default()),
            Err(FederatedError::Misaligned(_))
        ));
    }

    #[test]
    fn single_party_view_is_the_whole_target() {
        let md = DiMetadata {
            target_columns: vec!["a".into(), "b".into()],
            target_rows: 3,
            sources: vec![SourceMetadata {
                name: "only".into(),
                mapped_columns: vec!["a".into(), "b".into()],
                mapping: MappingMatrix::new(vec![0, 1], 2).unwrap(),
                indicator: IndicatorMatrix::new(vec![0, 1, 2], 3).unwrap(),
                redundancy: RedundancyMatrix::all_ones(3, 2),
            }],
        };
        let data = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let ft = FactorizedTable::new(md, vec![data]).unwrap();
        let views = party_views(&ft).unwrap();
        assert_eq!(views.len(), 1);
        assert!(views[0].features.approx_eq(&ft.materialize(), 1e-12));
        assert_eq!(views[0].columns, vec!["a", "b"]);
    }

    #[test]
    fn duplicate_join_keys_repeat_rows_without_panic() {
        // Two target rows resolve to the same source row (duplicate join
        // keys): the view repeats the row rather than failing.
        let ft = two_source_table(vec![0, 0, 1], vec![2, 2, 0], 3);
        let views = party_views(&ft).unwrap();
        assert_eq!(views[0].features.col(0), vec![1.0, 1.0, 2.0]);
        assert_eq!(views[1].features.col(0), vec![30.0, 30.0, 10.0]);
    }

    #[test]
    fn source_mapping_no_columns_is_a_typed_error() {
        let md = DiMetadata {
            target_columns: vec!["a".into()],
            target_rows: 2,
            sources: vec![
                SourceMetadata {
                    name: "full".into(),
                    mapped_columns: vec!["a".into()],
                    mapping: MappingMatrix::new(vec![0], 1).unwrap(),
                    indicator: IndicatorMatrix::new(vec![0, 1], 2).unwrap(),
                    redundancy: RedundancyMatrix::all_ones(2, 1),
                },
                SourceMetadata {
                    name: "hollow".into(),
                    mapped_columns: vec![],
                    mapping: MappingMatrix::new(vec![NO_MATCH], 0).unwrap(),
                    indicator: IndicatorMatrix::new(vec![0, 1], 2).unwrap(),
                    redundancy: RedundancyMatrix::all_ones(2, 1),
                },
            ],
        };
        let ft = FactorizedTable::new(
            md,
            vec![
                DenseMatrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap(),
                DenseMatrix::zeros(2, 0),
            ],
        )
        .unwrap();
        match party_views(&ft) {
            Err(FederatedError::Misaligned(m)) => assert!(m.contains("hollow")),
            other => panic!("expected Misaligned, got {other:?}"),
        }
    }
}
