//! Round-level orchestrator checkpoints.
//!
//! A [`Checkpoint`] freezes everything the FedAvg orchestrator needs to
//! continue a run as if it had never stopped: the round counter, the
//! global model, the loss history, the communication counters, the
//! consecutive-quorum-failure count, and the orchestrator RNG cursor
//! (seed position of the DP-noise stream). Fault decisions need no
//! state here — the transport contract (see [`crate::transport`])
//! makes them pure functions of the message identity.
//!
//! # Format (`amalur-fedavg-checkpoint/v1`)
//!
//! JSON with every `f64` stored as its IEEE-754 bit pattern in
//! 16-digit lowercase hex (`"3fe0000000000000"`), because a
//! decimal-formatted float does not round-trip bit-exactly and the
//! resume guarantee is *bit identity*, not approximate equality.
//! Counters are plain integers; `crypto_time` is nanoseconds.

use crate::protocol::CommStats;
use crate::{FederatedError, Result};
use serde::Value;

/// Schema tag written into every checkpoint.
pub const CHECKPOINT_SCHEMA: &str = "amalur-fedavg-checkpoint/v1";

/// Frozen orchestrator state (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Next round to execute (rounds `0..round` are complete).
    pub round: usize,
    /// Global model coefficients (`d` values).
    pub global: Vec<f64>,
    /// Per-round union loss recorded so far.
    pub loss_history: Vec<f64>,
    /// Communication accounting so far.
    pub comm: CommStats,
    /// Orchestrator RNG cursor: number of 64-bit draws consumed from
    /// the seeded DP/jitter stream.
    pub rng_draws: u64,
    /// Consecutive quorum-failed rounds leading into `round`.
    pub quorum_failures: usize,
}

impl Checkpoint {
    /// Serializes to the v1 JSON format.
    ///
    /// # Errors
    /// [`FederatedError::Checkpoint`] when the value tree fails to
    /// serialize (not expected for well-formed checkpoints).
    pub fn to_json(&self) -> Result<String> {
        let bits = |xs: &[f64]| {
            Value::Array(
                xs.iter()
                    .map(|x| Value::Str(format!("{:016x}", x.to_bits())))
                    .collect(),
            )
        };
        let int = |v: usize| Value::Int(v as i64);
        let comm = Value::Object(vec![
            ("bytes_up".into(), int(self.comm.bytes_up)),
            ("bytes_down".into(), int(self.comm.bytes_down)),
            ("messages".into(), int(self.comm.messages)),
            (
                "crypto_time_ns".into(),
                int(self.comm.crypto_time.as_nanos() as usize),
            ),
            ("retries".into(), int(self.comm.retries)),
            ("drops".into(), int(self.comm.drops)),
            ("timeouts".into(), int(self.comm.timeouts)),
            ("stragglers".into(), int(self.comm.stragglers)),
            ("duplicates".into(), int(self.comm.duplicates)),
            ("corrupt_rejected".into(), int(self.comm.corrupt_rejected)),
            ("stale_rejected".into(), int(self.comm.stale_rejected)),
            ("crash_outages".into(), int(self.comm.crash_outages)),
            ("rounds_degraded".into(), int(self.comm.rounds_degraded)),
            ("rounds_skipped".into(), int(self.comm.rounds_skipped)),
        ]);
        let root = Value::Object(vec![
            ("schema".into(), Value::Str(CHECKPOINT_SCHEMA.into())),
            ("round".into(), int(self.round)),
            ("rng_draws".into(), Value::Str(self.rng_draws.to_string())),
            ("quorum_failures".into(), int(self.quorum_failures)),
            ("global_bits".into(), bits(&self.global)),
            ("loss_bits".into(), bits(&self.loss_history)),
            ("comm".into(), comm),
        ]);
        serde_json::to_string_pretty(&ValueWrap(root))
            .map_err(|e| FederatedError::Checkpoint(e.to_string()))
    }

    /// Parses the v1 JSON format.
    ///
    /// # Errors
    /// [`FederatedError::Checkpoint`] on malformed input or a schema
    /// mismatch.
    pub fn from_json(text: &str) -> Result<Self> {
        let err = |m: String| FederatedError::Checkpoint(m);
        let root: Value = serde_json::from_str::<ValueWrap>(text)
            .map(|w| w.0)
            .map_err(|e| err(e.to_string()))?;
        let schema = get_str(&root, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(err(format!("unknown checkpoint schema `{schema}`")));
        }
        let comm_v = root
            .get("comm")
            .ok_or_else(|| err("missing field `comm`".into()))?;
        let comm = CommStats {
            bytes_up: get_usize(comm_v, "bytes_up")?,
            bytes_down: get_usize(comm_v, "bytes_down")?,
            messages: get_usize(comm_v, "messages")?,
            crypto_time: std::time::Duration::from_nanos(
                get_usize(comm_v, "crypto_time_ns")? as u64
            ),
            retries: get_usize(comm_v, "retries")?,
            drops: get_usize(comm_v, "drops")?,
            timeouts: get_usize(comm_v, "timeouts")?,
            stragglers: get_usize(comm_v, "stragglers")?,
            duplicates: get_usize(comm_v, "duplicates")?,
            corrupt_rejected: get_usize(comm_v, "corrupt_rejected")?,
            stale_rejected: get_usize(comm_v, "stale_rejected")?,
            crash_outages: get_usize(comm_v, "crash_outages")?,
            rounds_degraded: get_usize(comm_v, "rounds_degraded")?,
            rounds_skipped: get_usize(comm_v, "rounds_skipped")?,
        };
        Ok(Self {
            round: get_usize(&root, "round")?,
            global: get_bits(&root, "global_bits")?,
            loss_history: get_bits(&root, "loss_bits")?,
            comm,
            rng_draws: get_str(&root, "rng_draws")?
                .parse::<u64>()
                .map_err(|e| err(format!("rng_draws: {e}")))?,
            quorum_failures: get_usize(&root, "quorum_failures")?,
        })
    }
}

/// Adapter: the serde_json shim serializes `Serialize` types; a raw
/// [`Value`] tree is its own serialization.
struct ValueWrap(Value);

impl serde::Serialize for ValueWrap {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl serde::Deserialize for ValueWrap {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::DeError> {
        Ok(ValueWrap(v.clone()))
    }
}

fn get_str(v: &Value, key: &str) -> Result<String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        other => Err(FederatedError::Checkpoint(format!(
            "field `{key}`: expected string, found {other:?}"
        ))),
    }
}

fn get_usize(v: &Value, key: &str) -> Result<usize> {
    match v.get(key) {
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as usize),
        other => Err(FederatedError::Checkpoint(format!(
            "field `{key}`: expected non-negative integer, found {other:?}"
        ))),
    }
}

fn get_bits(v: &Value, key: &str) -> Result<Vec<f64>> {
    let items = match v.get(key) {
        Some(Value::Array(items)) => items,
        other => {
            return Err(FederatedError::Checkpoint(format!(
                "field `{key}`: expected array, found {other:?}"
            )))
        }
    };
    items
        .iter()
        .map(|item| match item {
            Value::Str(s) => u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|e| {
                FederatedError::Checkpoint(format!("field `{key}`: bad hex `{s}`: {e}"))
            }),
            other => Err(FederatedError::Checkpoint(format!(
                "field `{key}`: expected hex string, found {other:?}"
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            round: 12,
            global: vec![1.5, -0.25, f64::MIN_POSITIVE, -0.0, 1e300],
            loss_history: (0..12).map(|i| 1.0 / (i as f64 + 1.0) + 0.123).collect(),
            comm: CommStats {
                bytes_up: 960,
                bytes_down: 960,
                messages: 80,
                crypto_time: std::time::Duration::from_nanos(12345),
                retries: 7,
                drops: 5,
                timeouts: 2,
                stragglers: 3,
                duplicates: 1,
                corrupt_rejected: 1,
                stale_rejected: 2,
                crash_outages: 4,
                rounds_degraded: 3,
                rounds_skipped: 1,
            },
            rng_draws: u64::MAX - 3, // must survive as a u64, not an i64
            quorum_failures: 1,
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let ck = sample();
        let parsed = Checkpoint::from_json(&ck.to_json().unwrap()).unwrap();
        assert_eq!(parsed.round, ck.round);
        assert_eq!(parsed.rng_draws, ck.rng_draws);
        assert_eq!(parsed.quorum_failures, ck.quorum_failures);
        for (a, b) in ck.global.iter().zip(&parsed.global) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in ck.loss_history.iter().zip(&parsed.loss_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(parsed.comm.retries, 7);
        assert_eq!(parsed.comm.crypto_time.as_nanos(), 12345);
        assert_eq!(parsed.comm.rounds_skipped, 1);
    }

    #[test]
    fn rejects_foreign_schema_and_garbage() {
        assert!(matches!(
            Checkpoint::from_json("{\"schema\": \"other/v9\"}"),
            Err(FederatedError::Checkpoint(_))
        ));
        assert!(Checkpoint::from_json("not json").is_err());
        let truncated = sample()
            .to_json()
            .unwrap()
            .replace("\"round\"", "\"wrong\"");
        assert!(Checkpoint::from_json(&truncated).is_err());
    }
}
