//! Error type for federated training.

use std::fmt;

/// Convenience alias for federated results.
pub type Result<T> = std::result::Result<T, FederatedError>;

/// Errors produced by the federated substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum FederatedError {
    /// Parties disagree on the number of aligned rows, or labels mismatch.
    Misaligned(String),
    /// Invalid configuration (no parties, zero epochs, bad privacy params).
    InvalidConfig(String),
    /// A party disconnected or sent an unexpected message.
    Protocol(String),
    /// Error bubbled up from the crypto layer.
    Crypto(String),
    /// Error bubbled up from the compute layer.
    Compute(String),
    /// Too few parties responded for too many consecutive rounds — the
    /// orchestrator degraded as far as its quorum policy allows and
    /// gave up instead of hanging.
    QuorumLost {
        /// Round at which the run was abandoned.
        round: usize,
        /// Parties that responded in that round.
        responded: usize,
        /// Responders the quorum policy required.
        needed: usize,
    },
    /// A checkpoint could not be parsed or does not match the run.
    Checkpoint(String),
}

impl fmt::Display for FederatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederatedError::Misaligned(m) => write!(f, "misaligned parties: {m}"),
            FederatedError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            FederatedError::Protocol(m) => write!(f, "protocol error: {m}"),
            FederatedError::Crypto(m) => write!(f, "crypto error: {m}"),
            FederatedError::Compute(m) => write!(f, "compute error: {m}"),
            FederatedError::QuorumLost {
                round,
                responded,
                needed,
            } => write!(
                f,
                "quorum lost at round {round}: {responded} of the required {needed} parties responded"
            ),
            FederatedError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for FederatedError {}

impl From<amalur_crypto::CryptoError> for FederatedError {
    fn from(e: amalur_crypto::CryptoError) -> Self {
        FederatedError::Crypto(e.to_string())
    }
}

impl From<amalur_matrix::MatrixError> for FederatedError {
    fn from(e: amalur_matrix::MatrixError) -> Self {
        FederatedError::Compute(e.to_string())
    }
}

impl From<amalur_factorize::FactorizeError> for FederatedError {
    fn from(e: amalur_factorize::FactorizeError) -> Self {
        FederatedError::Compute(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(FederatedError::Misaligned("x".into())
            .to_string()
            .contains("misaligned"));
        let e: FederatedError = amalur_crypto::CryptoError::NotInvertible.into();
        assert!(matches!(e, FederatedError::Crypto(_)));
        let e: FederatedError = amalur_matrix::MatrixError::Singular.into();
        assert!(matches!(e, FederatedError::Compute(_)));
    }
}
