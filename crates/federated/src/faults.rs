//! Deterministic fault injection for the federated wire.
//!
//! A [`FaultPlan`] describes *how* a deployment misbehaves — message
//! drop rate, straggler rate and delay, duplicated deliveries, in-flight
//! corruption, stale retransmissions, and per-party crash/recovery
//! windows — and a seed that makes every injected fault reproducible.
//! [`FaultyTransport`] turns the plan into a [`Transport`]: the fate of
//! each message attempt is a pure hash of the plan seed and the
//! message's identity, so the same plan always produces the same
//! failure schedule (the property the trajectory-determinism proptests
//! pin), and checkpoint/resume never needs to persist transport state.

use crate::transport::{decision_rng, Direction, Fate, MessageMeta, Transport, DEFAULT_RTT_MS};
use crate::{FederatedError, Result};
use rand::Rng;

/// One party outage: the party is down for rounds `[from_round,
/// until_round)` and recovers after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Crashed party index.
    pub party: usize,
    /// First round of the outage (inclusive).
    pub from_round: usize,
    /// First round the party is back up (exclusive end; use
    /// `usize::MAX` for a permanent crash).
    pub until_round: usize,
}

impl CrashWindow {
    /// A party that never comes back.
    pub fn permanent(party: usize, from_round: usize) -> Self {
        Self {
            party,
            from_round,
            until_round: usize::MAX,
        }
    }
}

/// A seeded description of an unreliable deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed driving every fault decision.
    pub seed: u64,
    /// Probability a message attempt is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is a straggler (slowed by
    /// [`Self::straggler_delay_ms`] on top of the RTT).
    pub straggler_prob: f64,
    /// Extra one-way delay a straggler suffers, in virtual ms.
    pub straggler_delay_ms: u64,
    /// Probability a delivered message arrives twice.
    pub duplicate_prob: f64,
    /// Probability a delivered payload is damaged in flight.
    pub corrupt_prob: f64,
    /// Probability an uplink delivery carries a stale round tag (a
    /// delayed retransmission from the previous round).
    pub stale_prob: f64,
    /// Party crash/recovery schedule.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan that injects nothing — [`FaultyTransport`] over this plan
    /// behaves exactly like [`crate::ReliableTransport`].
    pub fn reliable(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            straggler_prob: 0.0,
            straggler_delay_ms: 1_000,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
            stale_prob: 0.0,
            crashes: Vec::new(),
        }
    }

    /// The baseline grid used by the CI smoke and the benchmarks:
    /// `drop_prob` drops plus `straggler_prob` stragglers.
    pub fn grid(seed: u64, drop_prob: f64, straggler_prob: f64) -> Self {
        Self {
            drop_prob,
            straggler_prob,
            ..Self::reliable(seed)
        }
    }

    /// Validates that every probability is a probability and the
    /// exclusive outcomes don't overbook the unit interval.
    ///
    /// # Errors
    /// [`FederatedError::InvalidConfig`] on out-of-range parameters.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("straggler_prob", self.straggler_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("stale_prob", self.stale_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(FederatedError::InvalidConfig(format!(
                    "fault plan: {name} = {p} is not a probability"
                )));
            }
        }
        let exclusive = self.drop_prob + self.corrupt_prob + self.stale_prob;
        if exclusive > 1.0 {
            return Err(FederatedError::InvalidConfig(format!(
                "fault plan: drop + corrupt + stale = {exclusive} exceeds 1"
            )));
        }
        Ok(())
    }
}

/// A [`Transport`] that misbehaves exactly as its [`FaultPlan`] says.
#[derive(Debug, Clone)]
pub struct FaultyTransport {
    plan: FaultPlan,
    rtt_ms: u64,
}

impl FaultyTransport {
    /// Builds the transport, validating the plan.
    ///
    /// # Errors
    /// [`FederatedError::InvalidConfig`] for invalid fault parameters.
    pub fn new(plan: FaultPlan) -> Result<Self> {
        plan.validate()?;
        Ok(Self {
            plan,
            rtt_ms: DEFAULT_RTT_MS,
        })
    }

    /// The plan this transport executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Transport for FaultyTransport {
    fn fate(&mut self, meta: &MessageMeta) -> Fate {
        let p = &self.plan;
        let mut rng = decision_rng(
            p.seed,
            meta.round,
            meta.party,
            meta.direction,
            meta.attempt,
            0xFA17,
        );
        // One draw decides between the exclusive outcomes (drop,
        // corrupt, stale, clean delivery); further draws refine the
        // delivery (straggling, duplication).
        let u: f64 = rng.gen();
        if u < p.drop_prob {
            return Fate::Dropped;
        }
        let straggle: f64 = rng.gen();
        let delay_ms = if straggle < p.straggler_prob {
            self.rtt_ms + p.straggler_delay_ms
        } else {
            self.rtt_ms
        };
        if u < p.drop_prob + p.corrupt_prob {
            return Fate::Corrupted { delay_ms };
        }
        if u < p.drop_prob + p.corrupt_prob + p.stale_prob
            && meta.direction == Direction::Up
            && meta.round > 0
        {
            return Fate::Stale {
                delay_ms,
                stale_round: meta.round - 1,
            };
        }
        let dup: f64 = rng.gen();
        let copies = if dup < p.duplicate_prob { 2 } else { 1 };
        Fate::Delivered { delay_ms, copies }
    }

    fn available(&self, party: usize, round: usize) -> bool {
        !self
            .plan
            .crashes
            .iter()
            .any(|w| w.party == party && (w.from_round..w.until_round).contains(&round))
    }

    fn rtt_ms(&self) -> u64 {
        self.rtt_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(round: usize, party: usize, attempt: usize) -> MessageMeta {
        MessageMeta {
            round,
            party,
            direction: Direction::Up,
            attempt,
            bytes: 24,
        }
    }

    #[test]
    fn zero_fault_plan_is_reliable() {
        let mut t = FaultyTransport::new(FaultPlan::reliable(1)).unwrap();
        for r in 0..20 {
            for k in 0..4 {
                assert_eq!(
                    t.fate(&meta(r, k, 0)),
                    Fate::Delivered {
                        delay_ms: DEFAULT_RTT_MS,
                        copies: 1
                    }
                );
                assert!(t.available(k, r));
            }
        }
    }

    #[test]
    fn fates_are_deterministic_in_the_seed() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            straggler_prob: 0.2,
            duplicate_prob: 0.1,
            corrupt_prob: 0.1,
            stale_prob: 0.1,
            ..FaultPlan::reliable(42)
        };
        let mut a = FaultyTransport::new(plan.clone()).unwrap();
        let mut b = FaultyTransport::new(plan.clone()).unwrap();
        let mut other = FaultyTransport::new(FaultPlan { seed: 43, ..plan }).unwrap();
        let mut diverged = false;
        for r in 0..50 {
            for attempt in 0..3 {
                let m = meta(r, r % 3, attempt);
                assert_eq!(a.fate(&m), b.fate(&m));
                if a.fate(&m) != other.fate(&m) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds produced identical schedules");
    }

    #[test]
    fn drop_rate_is_respected() {
        let mut t = FaultyTransport::new(FaultPlan::grid(7, 0.2, 0.0)).unwrap();
        let n = 10_000;
        let drops = (0..n)
            .filter(|&r| t.fate(&meta(r, 0, 0)) == Fate::Dropped)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.17..0.23).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn stragglers_are_slow_but_delivered() {
        let mut t = FaultyTransport::new(FaultPlan::grid(7, 0.0, 0.3)).unwrap();
        let mut slow = 0;
        for r in 0..1_000 {
            match t.fate(&meta(r, 1, 0)) {
                Fate::Delivered { delay_ms, .. } => {
                    if delay_ms > DEFAULT_RTT_MS {
                        assert_eq!(delay_ms, DEFAULT_RTT_MS + 1_000);
                        slow += 1;
                    }
                }
                other => panic!("unexpected fate {other:?}"),
            }
        }
        assert!((200..400).contains(&slow), "straggler count {slow}");
    }

    #[test]
    fn stale_only_on_uplink_after_round_zero() {
        let plan = FaultPlan {
            stale_prob: 1.0,
            ..FaultPlan::reliable(3)
        };
        let mut t = FaultyTransport::new(plan).unwrap();
        // Round 0 has no earlier round to be stale from.
        assert!(matches!(t.fate(&meta(0, 0, 0)), Fate::Delivered { .. }));
        match t.fate(&meta(5, 0, 0)) {
            Fate::Stale { stale_round, .. } => assert_eq!(stale_round, 4),
            other => panic!("expected stale, got {other:?}"),
        }
        // Downlink broadcasts are never retagged.
        let down = MessageMeta {
            direction: Direction::Down,
            ..meta(5, 0, 0)
        };
        assert!(matches!(t.fate(&down), Fate::Delivered { .. }));
    }

    #[test]
    fn crash_windows_control_availability() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow {
                    party: 1,
                    from_round: 2,
                    until_round: 5,
                },
                CrashWindow::permanent(2, 10),
            ],
            ..FaultPlan::reliable(0)
        };
        let t = FaultyTransport::new(plan).unwrap();
        assert!(t.available(1, 1));
        assert!(!t.available(1, 2));
        assert!(!t.available(1, 4));
        assert!(t.available(1, 5));
        assert!(t.available(2, 9));
        assert!(!t.available(2, 10));
        assert!(!t.available(2, 1_000_000));
        assert!(t.available(0, 3));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(FaultyTransport::new(FaultPlan {
            drop_prob: 1.5,
            ..FaultPlan::reliable(0)
        })
        .is_err());
        assert!(FaultyTransport::new(FaultPlan {
            drop_prob: 0.5,
            corrupt_prob: 0.4,
            stale_prob: 0.2,
            ..FaultPlan::reliable(0)
        })
        .is_err());
        assert!(FaultyTransport::new(FaultPlan {
            straggler_prob: f64::NAN,
            ..FaultPlan::reliable(0)
        })
        .is_err());
    }
}
