//! Horizontal federated learning: fault-tolerant FedAvg over the union
//! scenario.
//!
//! Example 4 / HFL: "data sources share feature columns but not data
//! samples". Every silo trains locally on its own rows; the orchestrator
//! averages the models weighted by sample counts. With one local epoch
//! and full participation the round is algebraically identical to a
//! centralized GD step on the union (the weighted average of per-silo
//! gradients *is* the union gradient), which the tests verify; more
//! local epochs trade accuracy per round for fewer communication
//! rounds. Updates can be noised with the Laplace mechanism before
//! leaving a silo (§V-B's differential privacy option).
//!
//! # Fault tolerance
//!
//! All messages ride on a [`Transport`] (see [`crate::transport`]).
//! Each round, per party, the orchestrator broadcasts the model and
//! awaits a round-tagged, checksummed [`Envelope`], retrying with
//! exponential backoff + deterministic jitter under a per-round virtual
//! deadline ([`RetryPolicy`]). Corrupt envelopes (checksum failure) and
//! stale envelopes (old round tag) are rejected and retried; duplicated
//! deliveries are deduplicated but *accounted* per copy (see
//! [`CommStats`]). The round aggregates as soon as the responders meet
//! the [`QuorumPolicy`], reweighting FedAvg by the responding sample
//! counts; a round below quorum leaves the model untouched, and after
//! `patience` consecutive such rounds the run returns
//! [`FederatedError::QuorumLost`] instead of hanging.
//!
//! [`FedAvgOrchestrator`] exposes the round loop step-by-step so runs
//! can be checkpointed ([`Checkpoint`]) and resumed bit-identically.

use crate::checkpoint::Checkpoint;
use crate::protocol::CommStats;
use crate::transport::{
    backoff_ms, CursorRng, Direction, Envelope, Fate, MessageMeta, ReliableTransport, Transport,
};
use crate::{FederatedError, Result};
use amalur_crypto::dp::LaplaceMechanism;
use amalur_matrix::DenseMatrix;
use amalur_obs::{span, Histogram, HistogramSnapshot, MetricsRegistry, VirtualClock};

/// One silo's local samples (aligned schemas across silos).
#[derive(Debug, Clone)]
pub struct PartySamples {
    /// Silo name.
    pub name: String,
    /// Local feature matrix (`rows × d`, same `d` for every silo).
    pub x: DenseMatrix,
    /// Local labels (`rows × 1`).
    pub y: DenseMatrix,
}

/// Retry/timeout/backoff policy for one logical message exchange.
///
/// Time is virtual (milliseconds of simulated wall clock); no real
/// sleeping happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delivery attempts per party per round (first try included).
    pub max_attempts: usize,
    /// Per-round virtual deadline per party; replies landing after it
    /// count as timeouts.
    pub deadline_ms: u64,
    /// Virtual time the orchestrator waits before declaring one
    /// attempt lost.
    pub attempt_timeout_ms: u64,
    /// Base of the exponential backoff between attempts.
    pub backoff_base_ms: u64,
    /// Jitter fraction applied on top of the exponential backoff
    /// (deterministic per message, seeded from the run seed).
    pub backoff_jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            deadline_ms: 2_000,
            attempt_timeout_ms: 200,
            backoff_base_ms: 100,
            backoff_jitter: 0.2,
        }
    }
}

/// When a round may proceed without everyone, and when to give up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuorumPolicy {
    /// Minimum responding fraction of parties for a round to aggregate
    /// (e.g. `2.0 / 3.0`); at least one responder is always required.
    pub min_fraction: f64,
    /// Consecutive below-quorum rounds tolerated before the run is
    /// abandoned with [`FederatedError::QuorumLost`].
    pub patience: usize,
}

impl Default for QuorumPolicy {
    fn default() -> Self {
        Self {
            min_fraction: 2.0 / 3.0,
            patience: 3,
        }
    }
}

impl QuorumPolicy {
    /// Responders required out of `n_parties`.
    pub fn needed(&self, n_parties: usize) -> usize {
        ((self.min_fraction * n_parties as f64).ceil() as usize).clamp(1, n_parties)
    }
}

/// Configuration for [`train_fedavg`].
#[derive(Debug, Clone)]
pub struct HflConfig {
    /// Communication rounds.
    pub rounds: usize,
    /// Local gradient steps per round.
    pub local_epochs: usize,
    /// Learning rate for the local steps.
    pub learning_rate: f64,
    /// Optional differential privacy on the model deltas leaving a silo:
    /// `(sensitivity, epsilon)`.
    pub dp: Option<(f64, f64)>,
    /// RNG seed (DP noise, backoff jitter).
    pub seed: u64,
    /// Retry/timeout/backoff policy.
    pub retry: RetryPolicy,
    /// Partial-aggregation quorum policy.
    pub quorum: QuorumPolicy,
}

impl Default for HflConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            local_epochs: 1,
            learning_rate: 0.1,
            dp: None,
            seed: 42,
            retry: RetryPolicy::default(),
            quorum: QuorumPolicy::default(),
        }
    }
}

/// One event on a round's virtual timeline (all times are virtual
/// milliseconds within the party's round, never wall clock — seeded
/// runs replay bit-identically, instrumentation included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundEvent {
    /// The round the event belongs to.
    pub round: usize,
    /// The party involved, or `None` for orchestrator-level events
    /// (quorum outcomes).
    pub party: Option<usize>,
    /// Virtual milliseconds since the party's round started.
    pub at_ms: u64,
    /// What happened.
    pub kind: RoundEventKind,
}

/// The kinds of [`RoundEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundEventKind {
    /// The party was inside a crash window; no attempts were made.
    Crashed,
    /// A retry attempt started (attempt index ≥ 1).
    Retry {
        /// The attempt number (first try is 0, so retries start at 1).
        attempt: usize,
    },
    /// Exponential backoff (with deterministic jitter) before a retry.
    Backoff {
        /// Virtual milliseconds waited.
        wait_ms: u64,
    },
    /// The per-round deadline passed (or the retry budget ran out)
    /// without an accepted reply; the party is missing this round.
    DeadlineExceeded,
    /// The party's update was accepted.
    Responded,
    /// Every party responded and the round aggregated fully.
    QuorumFull {
        /// Parties whose updates were aggregated.
        responded: usize,
    },
    /// Quorum met with partial participation; aggregation reweighted.
    QuorumDegraded {
        /// Parties whose updates were aggregated.
        responded: usize,
        /// Responders the quorum policy required.
        needed: usize,
    },
    /// Below quorum: the round left the model untouched.
    QuorumSkipped {
        /// Parties that did respond.
        responded: usize,
        /// Responders the quorum policy required.
        needed: usize,
    },
}

/// The trained global model.
#[derive(Debug, Clone)]
pub struct HflResult {
    /// Global coefficient vector (`d × 1`).
    pub global: DenseMatrix,
    /// Per-round global training loss over the union.
    pub loss_history: Vec<f64>,
    /// Communication accounting.
    pub comm: CommStats,
    /// Per-round timeline: deadlines, retries, backoffs and quorum
    /// outcomes, in execution order. Observability only — NOT part of a
    /// [`Checkpoint`], so a resumed run's timeline covers only the
    /// rounds since the resume (model/loss/comm replay is unaffected).
    pub timeline: Vec<RoundEvent>,
    /// Distribution of virtual round durations (µs; a round's duration
    /// is its slowest party's virtual elapsed time), recorded through a
    /// [`VirtualClock`]-driven span so seeded runs stay deterministic.
    /// Same checkpoint caveat as [`Self::timeline`].
    pub round_us: HistogramSnapshot,
}

impl HflResult {
    /// Bridges this run into a metrics registry:
    /// [`CommStats::to_metrics`] plus the virtual round-duration
    /// histogram under `federated.round.virtual_us` — so federated
    /// bench bins emit the same `amalur-obs/v1` dump as the serving
    /// layer.
    pub fn to_metrics(&self, reg: &MetricsRegistry) {
        self.comm.to_metrics(reg);
        reg.histogram("federated.round.virtual_us")
            .merge_snapshot(&self.round_us);
    }
}

/// What one party did in one round.
enum PartyRoundOutcome {
    /// The party's update arrived in time.
    Responded(DenseMatrix),
    /// The party was crashed, timed out, or exhausted its retries.
    Missing,
}

/// The fault-tolerant FedAvg round loop, exposed step-by-step so runs
/// can be checkpointed and resumed (see the module docs).
pub struct FedAvgOrchestrator<'a, T: Transport> {
    parties: &'a [PartySamples],
    config: &'a HflConfig,
    transport: &'a mut T,
    mechanism: Option<LaplaceMechanism>,
    rng: CursorRng,
    global: DenseMatrix,
    d: usize,
    round: usize,
    quorum_failures: usize,
    loss_history: Vec<f64>,
    comm: CommStats,
    // Observability state; excluded from Checkpoint (see HflResult).
    timeline: Vec<RoundEvent>,
    vclock: VirtualClock,
    round_us: Histogram,
}

impl<'a, T: Transport> FedAvgOrchestrator<'a, T> {
    /// Validates the inputs and builds a fresh run at round zero.
    ///
    /// # Errors
    /// * [`FederatedError::InvalidConfig`] for empty inputs, bad DP
    ///   params, zero feature dimensions or a degenerate retry policy.
    /// * [`FederatedError::Misaligned`] for inconsistent feature widths
    ///   or label shapes.
    pub fn new(
        parties: &'a [PartySamples],
        config: &'a HflConfig,
        transport: &'a mut T,
    ) -> Result<Self> {
        let d = validate(parties, config)?;
        let mechanism = match config.dp {
            Some((sensitivity, epsilon)) => Some(LaplaceMechanism::new(sensitivity, epsilon)?),
            None => None,
        };
        Ok(Self {
            parties,
            config,
            transport,
            mechanism,
            rng: CursorRng::new(config.seed),
            global: DenseMatrix::zeros(d, 1),
            d,
            round: 0,
            quorum_failures: 0,
            loss_history: Vec::with_capacity(config.rounds),
            comm: CommStats::default(),
            timeline: Vec::new(),
            vclock: VirtualClock::new(),
            round_us: Histogram::new(),
        })
    }

    /// Rebuilds a run mid-flight from a [`Checkpoint`], restoring the
    /// model, the round counter, the accounting, and the RNG cursor.
    /// Continuing produces bit-identical state to the uninterrupted
    /// run, provided `parties`, `config` and the transport's fault
    /// schedule are the ones the checkpoint was taken under.
    ///
    /// # Errors
    /// Validation errors as in [`Self::new`], plus
    /// [`FederatedError::Checkpoint`] when the checkpoint's shape does
    /// not match `parties`/`config`.
    pub fn resume(
        parties: &'a [PartySamples],
        config: &'a HflConfig,
        transport: &'a mut T,
        checkpoint: &Checkpoint,
    ) -> Result<Self> {
        let d = validate(parties, config)?;
        if checkpoint.global.len() != d {
            return Err(FederatedError::Checkpoint(format!(
                "checkpointed model has {} coefficients, parties have {d} features",
                checkpoint.global.len()
            )));
        }
        if checkpoint.round > config.rounds || checkpoint.loss_history.len() != checkpoint.round {
            return Err(FederatedError::Checkpoint(format!(
                "checkpoint at round {} with {} loss entries does not fit a {}-round run",
                checkpoint.round,
                checkpoint.loss_history.len(),
                config.rounds
            )));
        }
        let mechanism = match config.dp {
            Some((sensitivity, epsilon)) => Some(LaplaceMechanism::new(sensitivity, epsilon)?),
            None => None,
        };
        Ok(Self {
            parties,
            config,
            transport,
            mechanism,
            rng: CursorRng::restore(config.seed, checkpoint.rng_draws),
            global: DenseMatrix::column_vector(&checkpoint.global),
            d,
            round: checkpoint.round,
            quorum_failures: checkpoint.quorum_failures,
            loss_history: checkpoint.loss_history.clone(),
            comm: checkpoint.comm,
            timeline: Vec::new(),
            vclock: VirtualClock::new(),
            round_us: Histogram::new(),
        })
    }

    /// The next round to execute.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether every configured round has run.
    pub fn is_done(&self) -> bool {
        self.round >= self.config.rounds
    }

    /// Freezes the current state (taken between rounds).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            round: self.round,
            global: self.global.as_slice().to_vec(),
            loss_history: self.loss_history.clone(),
            comm: self.comm,
            rng_draws: self.rng.draws(),
            quorum_failures: self.quorum_failures,
        }
    }

    /// Executes one communication round.
    ///
    /// # Errors
    /// [`FederatedError::QuorumLost`] when quorum has been missed for
    /// more consecutive rounds than the policy tolerates; compute
    /// errors from the local training steps.
    pub fn step(&mut self) -> Result<()> {
        let n_parties = self.parties.len();
        let needed = self.config.quorum.needed(n_parties);

        // Global loss over the union before the round (for the history).
        let total_rows: usize = self.parties.iter().map(|p| p.x.rows()).sum();
        let mut loss = 0.0;
        for p in self.parties {
            let resid = p.x.matmul(&self.global)?.sub(&p.y)?;
            loss += resid.frobenius_norm_sq();
        }
        self.loss_history.push(loss / (2.0 * total_rows as f64));

        // Collect updates from whoever responds in time. The round's
        // virtual duration is its slowest party (parties run in
        // parallel in the modeled deployment).
        let mut responders: Vec<(usize, DenseMatrix)> = Vec::with_capacity(n_parties);
        let mut round_elapsed_ms: u64 = 0;
        for k in 0..n_parties {
            let (outcome, elapsed_ms) = self.run_party_round(k)?;
            round_elapsed_ms = round_elapsed_ms.max(elapsed_ms);
            if let PartyRoundOutcome::Responded(theta) = outcome {
                responders.push((k, theta));
            }
        }
        {
            // Span over the virtual clock: deterministic for a given
            // seed + fault schedule, and recorded in the same histogram
            // vocabulary as the wall-clock serving spans.
            let _round_span = span(&self.vclock, &self.round_us);
            self.vclock.advance_ms(round_elapsed_ms);
        }
        let quorum_kind = if responders.len() >= n_parties {
            RoundEventKind::QuorumFull {
                responded: responders.len(),
            }
        } else if responders.len() >= needed {
            RoundEventKind::QuorumDegraded {
                responded: responders.len(),
                needed,
            }
        } else {
            RoundEventKind::QuorumSkipped {
                responded: responders.len(),
                needed,
            }
        };
        self.timeline.push(RoundEvent {
            round: self.round,
            party: None,
            at_ms: round_elapsed_ms,
            kind: quorum_kind,
        });

        if responders.len() < needed {
            self.comm.rounds_skipped += 1;
            self.quorum_failures += 1;
            if self.quorum_failures > self.config.quorum.patience {
                return Err(FederatedError::QuorumLost {
                    round: self.round,
                    responded: responders.len(),
                    needed,
                });
            }
        } else {
            if responders.len() < n_parties {
                self.comm.rounds_degraded += 1;
            }
            self.quorum_failures = 0;
            // FedAvg reweighted by the responding sample counts.
            let responding_rows: usize = responders
                .iter()
                .map(|&(k, _)| self.parties[k].x.rows())
                .sum();
            let mut aggregate = DenseMatrix::zeros(self.d, 1);
            for (k, theta) in &responders {
                let w = self.parties[*k].x.rows() as f64 / responding_rows as f64;
                aggregate.axpy_assign(w, theta)?;
            }
            self.global = aggregate;
        }
        self.round += 1;
        Ok(())
    }

    /// Finishes the run and hands back the result.
    pub fn finish(self) -> HflResult {
        HflResult {
            global: self.global,
            loss_history: self.loss_history,
            comm: self.comm,
            timeline: self.timeline,
            round_us: self.round_us.snapshot(),
        }
    }

    /// One party's full round: broadcast-with-retry, local training,
    /// upload-with-retry, all under the virtual deadline.
    fn run_party_round(&mut self, k: usize) -> Result<(PartyRoundOutcome, u64)> {
        let round = self.round;
        let retry = self.config.retry;
        if !self.transport.available(k, round) {
            self.comm.crash_outages += 1;
            self.timeline.push(RoundEvent {
                round,
                party: Some(k),
                at_ms: 0,
                kind: RoundEventKind::Crashed,
            });
            return Ok((PartyRoundOutcome::Missing, 0));
        }
        let bytes = self.d * 8;
        let rtt = self.transport.rtt_ms();
        let mut elapsed: u64 = 0;
        for attempt in 0..retry.max_attempts {
            if attempt > 0 {
                self.comm.retries += 1;
                let wait_ms = backoff_ms(
                    retry.backoff_base_ms,
                    retry.backoff_jitter,
                    self.config.seed,
                    round,
                    k,
                    attempt,
                );
                self.timeline.push(RoundEvent {
                    round,
                    party: Some(k),
                    at_ms: elapsed,
                    kind: RoundEventKind::Retry { attempt },
                });
                self.timeline.push(RoundEvent {
                    round,
                    party: Some(k),
                    at_ms: elapsed,
                    kind: RoundEventKind::Backoff { wait_ms },
                });
                elapsed += wait_ms;
            }
            if elapsed > retry.deadline_ms {
                break;
            }

            // --- downlink: broadcast the global model -------------------
            let down_meta = MessageMeta {
                round,
                party: k,
                direction: Direction::Down,
                attempt,
                bytes,
            };
            self.comm.record_attempt(Direction::Down, bytes);
            match self.transport.fate(&down_meta) {
                Fate::Dropped => {
                    self.comm.drops += 1;
                    elapsed += retry.attempt_timeout_ms;
                    continue;
                }
                Fate::Corrupted { delay_ms } | Fate::Stale { delay_ms, .. } => {
                    // The party discards the damaged/stale broadcast and
                    // stays silent; the orchestrator times the attempt out.
                    self.comm.corrupt_rejected += 1;
                    if delay_ms > rtt {
                        self.comm.stragglers += 1;
                    }
                    elapsed += delay_ms.max(retry.attempt_timeout_ms);
                    continue;
                }
                Fate::Delivered { delay_ms, copies } => {
                    self.comm
                        .record_duplicates(Direction::Down, bytes, copies - 1);
                    if delay_ms > rtt {
                        self.comm.stragglers += 1;
                    }
                    elapsed += delay_ms;
                }
            }
            if elapsed > retry.deadline_ms {
                break;
            }

            // --- local training in the silo -----------------------------
            let theta = self.local_update(k)?;

            // --- uplink: round-tagged, checksummed envelope -------------
            let p = &self.parties[k];
            let mut env = Envelope::new(round, k, p.x.rows(), theta.as_slice().to_vec());
            let up_meta = MessageMeta {
                round,
                party: k,
                direction: Direction::Up,
                attempt,
                bytes,
            };
            self.comm.record_attempt(Direction::Up, bytes);
            match self.transport.fate(&up_meta) {
                Fate::Dropped => {
                    self.comm.drops += 1;
                    elapsed += retry.attempt_timeout_ms;
                    continue;
                }
                Fate::Corrupted { delay_ms } => {
                    env.corrupt_in_flight(self.config.seed ^ (round as u64) << 16 ^ attempt as u64);
                    debug_assert!(!env.verify());
                    self.comm.corrupt_rejected += 1;
                    if delay_ms > rtt {
                        self.comm.stragglers += 1;
                    }
                    elapsed += delay_ms.max(retry.attempt_timeout_ms);
                    continue;
                }
                Fate::Stale {
                    delay_ms,
                    stale_round,
                } => {
                    env.round = stale_round;
                    debug_assert!(env.round != round);
                    self.comm.stale_rejected += 1;
                    if delay_ms > rtt {
                        self.comm.stragglers += 1;
                    }
                    elapsed += delay_ms.max(retry.attempt_timeout_ms);
                    continue;
                }
                Fate::Delivered { delay_ms, copies } => {
                    self.comm
                        .record_duplicates(Direction::Up, bytes, copies - 1);
                    if delay_ms > rtt {
                        self.comm.stragglers += 1;
                    }
                    elapsed += delay_ms;
                    if elapsed > retry.deadline_ms {
                        // The straggler's update landed after the round
                        // closed — too late to aggregate.
                        break;
                    }
                    // Accept: tag and integrity both check out.
                    if env.round == round && env.verify() {
                        self.timeline.push(RoundEvent {
                            round,
                            party: Some(k),
                            at_ms: elapsed,
                            kind: RoundEventKind::Responded,
                        });
                        return Ok((
                            PartyRoundOutcome::Responded(DenseMatrix::column_vector(&env.payload)),
                            elapsed,
                        ));
                    }
                    // Unreachable on honest transports; count and retry.
                    self.comm.corrupt_rejected += 1;
                }
            }
        }
        self.comm.timeouts += 1;
        self.timeline.push(RoundEvent {
            round,
            party: Some(k),
            at_ms: elapsed,
            kind: RoundEventKind::DeadlineExceeded,
        });
        // The party consumed virtual time up to its deadline (or its
        // last attempt's completion, whichever came first).
        Ok((PartyRoundOutcome::Missing, elapsed.min(retry.deadline_ms)))
    }

    /// The silo-side computation: `local_epochs` GD steps from the
    /// current global model, optionally privatized before upload.
    fn local_update(&mut self, k: usize) -> Result<DenseMatrix> {
        let p = &self.parties[k];
        let mut theta = self.global.clone();
        let n_local = p.x.rows().max(1) as f64;
        for _ in 0..self.config.local_epochs {
            let resid = p.x.matmul(&theta)?.sub(&p.y)?;
            let grad = p.x.transpose_matmul(&resid)?;
            theta.axpy_assign(-self.config.learning_rate / n_local, &grad)?;
        }
        if let Some(m) = &self.mechanism {
            m.privatize(theta.as_mut_slice(), &mut self.rng);
        }
        Ok(theta)
    }
}

/// Shared input validation; returns the feature dimension `d`.
fn validate(parties: &[PartySamples], config: &HflConfig) -> Result<usize> {
    if parties.is_empty() || config.rounds == 0 || config.local_epochs == 0 {
        return Err(FederatedError::InvalidConfig(
            "need parties, rounds and local epochs".into(),
        ));
    }
    if config.retry.max_attempts == 0 {
        return Err(FederatedError::InvalidConfig(
            "retry policy needs at least one attempt".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.quorum.min_fraction) {
        return Err(FederatedError::InvalidConfig(format!(
            "quorum fraction {} is not in [0, 1]",
            config.quorum.min_fraction
        )));
    }
    let d = parties[0].x.cols();
    if d == 0 {
        return Err(FederatedError::Misaligned(
            "parties have zero feature columns".into(),
        ));
    }
    let total_rows: usize = parties.iter().map(|p| p.x.rows()).sum();
    if total_rows == 0 {
        return Err(FederatedError::InvalidConfig("no training rows".into()));
    }
    for p in parties {
        if p.x.cols() != d {
            return Err(FederatedError::Misaligned(format!(
                "silo {} has {} features, expected {d}",
                p.name,
                p.x.cols()
            )));
        }
        if p.y.rows() != p.x.rows() || p.y.cols() != 1 {
            return Err(FederatedError::Misaligned(format!(
                "silo {} labels are {}x{}",
                p.name,
                p.y.rows(),
                p.y.cols()
            )));
        }
    }
    Ok(d)
}

/// Runs FedAvg over the silos on a perfectly reliable in-process
/// network (the pre-fault-model behavior).
///
/// # Errors
/// * [`FederatedError::InvalidConfig`] for empty inputs or bad DP params.
/// * [`FederatedError::Misaligned`] for inconsistent feature widths or
///   label shapes.
pub fn train_fedavg(parties: &[PartySamples], config: &HflConfig) -> Result<HflResult> {
    let mut transport = ReliableTransport;
    train_fedavg_with_transport(parties, config, &mut transport)
}

/// Runs FedAvg over the silos on the given transport, with the full
/// retry/quorum machinery (see the module docs).
///
/// # Errors
/// Validation errors as in [`train_fedavg`], plus
/// [`FederatedError::QuorumLost`] when the quorum policy gives up.
pub fn train_fedavg_with_transport<T: Transport>(
    parties: &[PartySamples],
    config: &HflConfig,
    transport: &mut T,
) -> Result<HflResult> {
    let mut orchestrator = FedAvgOrchestrator::new(parties, config, transport)?;
    while !orchestrator.is_done() {
        orchestrator.step()?;
    }
    Ok(orchestrator.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Splits a common linear dataset across `k` silos.
    fn silos(
        k: usize,
        rows_each: usize,
        seed: u64,
    ) -> (Vec<PartySamples>, DenseMatrix, DenseMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let truth = [2.0, -1.0, 0.5];
        let mut parties = Vec::new();
        let mut all_x: Option<DenseMatrix> = None;
        let mut all_y: Vec<f64> = Vec::new();
        for i in 0..k {
            let x = DenseMatrix::random_uniform(rows_each, 3, -1.0, 1.0, &mut rng);
            let y: Vec<f64> = (0..rows_each)
                .map(|r| {
                    (0..3).map(|c| x.get(r, c) * truth[c]).sum::<f64>() + rng.gen_range(-0.01..0.01)
                })
                .collect();
            all_x = Some(match all_x {
                None => x.clone(),
                Some(prev) => prev.vstack(&x).unwrap(),
            });
            all_y.extend_from_slice(&y);
            parties.push(PartySamples {
                name: format!("silo{i}"),
                x,
                y: DenseMatrix::column_vector(&y),
            });
        }
        (parties, all_x.unwrap(), DenseMatrix::column_vector(&all_y))
    }

    #[test]
    fn timeline_is_deterministic_and_exports_to_metrics() {
        let (parties, _, _) = silos(3, 20, 5);
        let config = HflConfig {
            rounds: 8,
            ..HflConfig::default()
        };
        let run = |seed: u64| {
            let mut t =
                crate::FaultyTransport::new(crate::FaultPlan::grid(seed, 0.2, 0.1)).unwrap();
            train_fedavg_with_transport(&parties, &config, &mut t).unwrap()
        };
        let a = run(9);
        let b = run(9);
        // Instrumentation is part of the deterministic replay: same
        // seed + fault schedule → identical timeline and durations.
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.round_us, b.round_us);
        assert_ne!(a.timeline, run(10).timeline, "seed changes the timeline");

        // Exactly one quorum outcome per round, and the lossy grid
        // produced at least one retry/backoff pair.
        let quorums = a
            .timeline
            .iter()
            .filter(|e| {
                e.party.is_none()
                    && matches!(
                        e.kind,
                        RoundEventKind::QuorumFull { .. }
                            | RoundEventKind::QuorumDegraded { .. }
                            | RoundEventKind::QuorumSkipped { .. }
                    )
            })
            .count();
        assert_eq!(quorums, config.rounds);
        assert!(a
            .timeline
            .iter()
            .any(|e| matches!(e.kind, RoundEventKind::Retry { .. })));
        assert_eq!(a.round_us.count(), config.rounds as u64);

        // The registry bridge exposes comm counters and the round
        // histogram in the shared dump format.
        let reg = MetricsRegistry::new();
        a.to_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("federated.comm.retries"),
            Some(a.comm.retries as u64)
        );
        assert_eq!(
            snap.histogram("federated.round.virtual_us")
                .unwrap()
                .count(),
            config.rounds as u64
        );
        assert!(snap.to_json(0).contains("federated.comm.messages"));
    }

    /// Centralized GD on the union with the same update rule.
    fn centralized(x: &DenseMatrix, y: &DenseMatrix, steps: usize, lr: f64) -> DenseMatrix {
        let n = x.rows() as f64;
        let mut theta = DenseMatrix::zeros(x.cols(), 1);
        for _ in 0..steps {
            let resid = x.matmul(&theta).unwrap().sub(y).unwrap();
            let grad = x.transpose_matmul(&resid).unwrap();
            theta.axpy_assign(-lr / n, &grad).unwrap();
        }
        theta
    }

    #[test]
    fn single_local_epoch_equals_centralized_gd() {
        // Equal silo sizes → the weighted average of local steps is the
        // exact centralized step.
        let (parties, all_x, all_y) = silos(3, 40, 1);
        let config = HflConfig {
            rounds: 30,
            local_epochs: 1,
            learning_rate: 0.2,
            ..HflConfig::default()
        };
        let result = train_fedavg(&parties, &config).unwrap();
        let reference = centralized(&all_x, &all_y, 30, 0.2);
        assert!(
            result.global.approx_eq(&reference, 1e-9),
            "max diff {:?}",
            result.global.max_abs_diff(&reference)
        );
    }

    #[test]
    fn unequal_silos_still_converge() {
        let (mut parties, _, _) = silos(2, 60, 2);
        // Shrink the second silo to 10 rows.
        parties[1] = PartySamples {
            name: parties[1].name.clone(),
            x: parties[1].x.slice(0..10, 0..3).unwrap(),
            y: DenseMatrix::column_vector(&parties[1].y.col(0)[..10]),
        };
        let config = HflConfig {
            rounds: 200,
            local_epochs: 3,
            learning_rate: 0.2,
            ..HflConfig::default()
        };
        let result = train_fedavg(&parties, &config).unwrap();
        assert!((result.global.get(0, 0) - 2.0).abs() < 0.05);
        assert!((result.global.get(1, 0) + 1.0).abs() < 0.05);
        assert!(result.loss_history.first().unwrap() > result.loss_history.last().unwrap());
    }

    #[test]
    fn more_local_epochs_need_fewer_rounds() {
        let (parties, _, _) = silos(3, 40, 3);
        let loss_after = |local_epochs: usize| {
            let config = HflConfig {
                rounds: 10,
                local_epochs,
                learning_rate: 0.2,
                ..HflConfig::default()
            };
            *train_fedavg(&parties, &config)
                .unwrap()
                .loss_history
                .last()
                .unwrap()
        };
        assert!(loss_after(5) < loss_after(1));
    }

    #[test]
    fn dp_noise_perturbs_but_preserves_signal() {
        let (parties, _, _) = silos(3, 100, 4);
        let clean = train_fedavg(
            &parties,
            &HflConfig {
                rounds: 50,
                learning_rate: 0.3,
                ..HflConfig::default()
            },
        )
        .unwrap();
        let noisy = train_fedavg(
            &parties,
            &HflConfig {
                rounds: 50,
                learning_rate: 0.3,
                dp: Some((0.01, 1.0)),
                ..HflConfig::default()
            },
        )
        .unwrap();
        assert!(!noisy.global.approx_eq(&clean.global, 1e-12)); // noise applied
        assert!(noisy.global.approx_eq(&clean.global, 0.5)); // signal survives
    }

    #[test]
    fn validation_errors() {
        let (parties, _, _) = silos(2, 10, 5);
        assert!(train_fedavg(&[], &HflConfig::default()).is_err());
        assert!(train_fedavg(
            &parties,
            &HflConfig {
                rounds: 0,
                ..HflConfig::default()
            }
        )
        .is_err());
        let mut bad = parties.clone();
        bad[1].x = DenseMatrix::zeros(10, 5);
        assert!(train_fedavg(&bad, &HflConfig::default()).is_err());
        let mut bad_y = parties.clone();
        bad_y[0].y = DenseMatrix::zeros(3, 1);
        assert!(train_fedavg(&bad_y, &HflConfig::default()).is_err());
        // Bad DP parameters.
        assert!(train_fedavg(
            &parties,
            &HflConfig {
                dp: Some((1.0, -1.0)),
                ..HflConfig::default()
            }
        )
        .is_err());
        // Degenerate retry/quorum policies are typed errors, not hangs.
        assert!(matches!(
            train_fedavg(
                &parties,
                &HflConfig {
                    retry: RetryPolicy {
                        max_attempts: 0,
                        ..RetryPolicy::default()
                    },
                    ..HflConfig::default()
                }
            ),
            Err(FederatedError::InvalidConfig(_))
        ));
        assert!(matches!(
            train_fedavg(
                &parties,
                &HflConfig {
                    quorum: QuorumPolicy {
                        min_fraction: 1.5,
                        patience: 1
                    },
                    ..HflConfig::default()
                }
            ),
            Err(FederatedError::InvalidConfig(_))
        ));
        // Zero-width features degrade instead of panicking downstream.
        let zero_d = vec![PartySamples {
            name: "empty".into(),
            x: DenseMatrix::zeros(4, 0),
            y: DenseMatrix::zeros(4, 1),
        }];
        assert!(matches!(
            train_fedavg(&zero_d, &HflConfig::default()),
            Err(FederatedError::Misaligned(_))
        ));
    }

    #[test]
    fn comm_stats_grow_with_rounds_and_parties() {
        let (parties, _, _) = silos(4, 10, 6);
        let run = |rounds| {
            train_fedavg(
                &parties,
                &HflConfig {
                    rounds,
                    ..HflConfig::default()
                },
            )
            .unwrap()
            .comm
        };
        let short = run(5);
        let long = run(10);
        assert_eq!(long.total_bytes(), short.total_bytes() * 2);
        assert_eq!(long.messages, short.messages * 2);
        // A reliable run records no fault handling at all.
        assert_eq!(long.fault_events(), 0);
        assert_eq!(long.retries, 0);
        assert_eq!(long.rounds_degraded, 0);
    }

    #[test]
    fn quorum_policy_needed_rounds_up() {
        let q = QuorumPolicy {
            min_fraction: 2.0 / 3.0,
            patience: 1,
        };
        assert_eq!(q.needed(3), 2);
        assert_eq!(q.needed(4), 3);
        assert_eq!(q.needed(6), 4);
        assert_eq!(
            QuorumPolicy {
                min_fraction: 0.0,
                patience: 1
            }
            .needed(5),
            1,
            "at least one responder is always required"
        );
    }

    #[test]
    fn orchestrator_steps_match_wrapper() {
        let (parties, _, _) = silos(3, 20, 7);
        let config = HflConfig {
            rounds: 12,
            learning_rate: 0.2,
            ..HflConfig::default()
        };
        let whole = train_fedavg(&parties, &config).unwrap();
        let mut transport = ReliableTransport;
        let mut orch = FedAvgOrchestrator::new(&parties, &config, &mut transport).unwrap();
        assert_eq!(orch.round(), 0);
        while !orch.is_done() {
            orch.step().unwrap();
        }
        let stepped = orch.finish();
        assert_eq!(
            whole.global.as_slice(),
            stepped.global.as_slice(),
            "step-by-step execution must be bit-identical to the wrapper"
        );
        assert_eq!(whole.loss_history, stepped.loss_history);
        assert_eq!(whole.comm, stepped.comm);
    }
}
