//! Horizontal federated learning: FedAvg over the union scenario.
//!
//! Example 4 / HFL: "data sources share feature columns but not data
//! samples". Every silo trains locally on its own rows; the orchestrator
//! averages the models weighted by sample counts. With one local epoch
//! the round is algebraically identical to a centralized GD step on the
//! union (the weighted average of per-silo gradients *is* the union
//! gradient), which the tests verify; more local epochs trade accuracy
//! per round for fewer communication rounds. Updates can be noised with
//! the Laplace mechanism before leaving a silo (§V-B's differential
//! privacy option).

use crate::protocol::CommStats;
use crate::{FederatedError, Result};
use amalur_crypto::dp::LaplaceMechanism;
use amalur_matrix::DenseMatrix;
use rand::SeedableRng;

/// One silo's local samples (aligned schemas across silos).
#[derive(Debug, Clone)]
pub struct PartySamples {
    /// Silo name.
    pub name: String,
    /// Local feature matrix (`rows × d`, same `d` for every silo).
    pub x: DenseMatrix,
    /// Local labels (`rows × 1`).
    pub y: DenseMatrix,
}

/// Configuration for [`train_fedavg`].
#[derive(Debug, Clone)]
pub struct HflConfig {
    /// Communication rounds.
    pub rounds: usize,
    /// Local gradient steps per round.
    pub local_epochs: usize,
    /// Learning rate for the local steps.
    pub learning_rate: f64,
    /// Optional differential privacy on the model deltas leaving a silo:
    /// `(sensitivity, epsilon)`.
    pub dp: Option<(f64, f64)>,
    /// RNG seed (DP noise).
    pub seed: u64,
}

impl Default for HflConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            local_epochs: 1,
            learning_rate: 0.1,
            dp: None,
            seed: 42,
        }
    }
}

/// The trained global model.
#[derive(Debug, Clone)]
pub struct HflResult {
    /// Global coefficient vector (`d × 1`).
    pub global: DenseMatrix,
    /// Per-round global training loss over the union.
    pub loss_history: Vec<f64>,
    /// Communication accounting.
    pub comm: CommStats,
}

/// Runs FedAvg over the silos.
///
/// # Errors
/// * [`FederatedError::InvalidConfig`] for empty inputs or bad DP params.
/// * [`FederatedError::Misaligned`] for inconsistent feature widths or
///   label shapes.
pub fn train_fedavg(parties: &[PartySamples], config: &HflConfig) -> Result<HflResult> {
    if parties.is_empty() || config.rounds == 0 || config.local_epochs == 0 {
        return Err(FederatedError::InvalidConfig(
            "need parties, rounds and local epochs".into(),
        ));
    }
    let d = parties[0].x.cols();
    let total_rows: usize = parties.iter().map(|p| p.x.rows()).sum();
    if total_rows == 0 {
        return Err(FederatedError::InvalidConfig("no training rows".into()));
    }
    for p in parties {
        if p.x.cols() != d {
            return Err(FederatedError::Misaligned(format!(
                "silo {} has {} features, expected {d}",
                p.name,
                p.x.cols()
            )));
        }
        if p.y.rows() != p.x.rows() || p.y.cols() != 1 {
            return Err(FederatedError::Misaligned(format!(
                "silo {} labels are {}x{}",
                p.name,
                p.y.rows(),
                p.y.cols()
            )));
        }
    }
    let mechanism = match config.dp {
        Some((sensitivity, epsilon)) => Some(LaplaceMechanism::new(sensitivity, epsilon)?),
        None => None,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    let mut global = DenseMatrix::zeros(d, 1);
    let mut loss_history = Vec::with_capacity(config.rounds);
    let mut comm = CommStats::default();

    for _round in 0..config.rounds {
        // Global loss over the union before the round (for the history).
        let mut loss = 0.0;
        for p in parties {
            let resid = p.x.matmul(&global)?.sub(&p.y)?;
            loss += resid.frobenius_norm_sq();
        }
        loss_history.push(loss / (2.0 * total_rows as f64));

        // Local training in each silo.
        let mut aggregate = DenseMatrix::zeros(d, 1);
        for p in parties {
            comm.bytes_down += d * 8; // broadcast of the global model
            comm.messages += 1;
            let mut theta = global.clone();
            let n_local = p.x.rows().max(1) as f64;
            for _ in 0..config.local_epochs {
                let resid = p.x.matmul(&theta)?.sub(&p.y)?;
                let grad = p.x.transpose_matmul(&resid)?;
                theta.axpy_assign(-config.learning_rate / n_local, &grad)?;
            }
            // Optionally privatize the update before it leaves the silo.
            if let Some(m) = &mechanism {
                m.privatize(theta.as_mut_slice(), &mut rng);
            }
            comm.bytes_up += d * 8;
            comm.messages += 1;
            // Weighted contribution to the average.
            aggregate.axpy_assign(p.x.rows() as f64 / total_rows as f64, &theta)?;
        }
        global = aggregate;
    }

    Ok(HflResult {
        global,
        loss_history,
        comm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Splits a common linear dataset across `k` silos.
    fn silos(
        k: usize,
        rows_each: usize,
        seed: u64,
    ) -> (Vec<PartySamples>, DenseMatrix, DenseMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let truth = [2.0, -1.0, 0.5];
        let mut parties = Vec::new();
        let mut all_x: Option<DenseMatrix> = None;
        let mut all_y: Vec<f64> = Vec::new();
        for i in 0..k {
            let x = DenseMatrix::random_uniform(rows_each, 3, -1.0, 1.0, &mut rng);
            let y: Vec<f64> = (0..rows_each)
                .map(|r| {
                    (0..3).map(|c| x.get(r, c) * truth[c]).sum::<f64>() + rng.gen_range(-0.01..0.01)
                })
                .collect();
            all_x = Some(match all_x {
                None => x.clone(),
                Some(prev) => prev.vstack(&x).unwrap(),
            });
            all_y.extend_from_slice(&y);
            parties.push(PartySamples {
                name: format!("silo{i}"),
                x,
                y: DenseMatrix::column_vector(&y),
            });
        }
        (parties, all_x.unwrap(), DenseMatrix::column_vector(&all_y))
    }

    /// Centralized GD on the union with the same update rule.
    fn centralized(x: &DenseMatrix, y: &DenseMatrix, steps: usize, lr: f64) -> DenseMatrix {
        let n = x.rows() as f64;
        let mut theta = DenseMatrix::zeros(x.cols(), 1);
        for _ in 0..steps {
            let resid = x.matmul(&theta).unwrap().sub(y).unwrap();
            let grad = x.transpose_matmul(&resid).unwrap();
            theta.axpy_assign(-lr / n, &grad).unwrap();
        }
        theta
    }

    #[test]
    fn single_local_epoch_equals_centralized_gd() {
        // Equal silo sizes → the weighted average of local steps is the
        // exact centralized step.
        let (parties, all_x, all_y) = silos(3, 40, 1);
        let config = HflConfig {
            rounds: 30,
            local_epochs: 1,
            learning_rate: 0.2,
            ..HflConfig::default()
        };
        let result = train_fedavg(&parties, &config).unwrap();
        let reference = centralized(&all_x, &all_y, 30, 0.2);
        assert!(
            result.global.approx_eq(&reference, 1e-9),
            "max diff {:?}",
            result.global.max_abs_diff(&reference)
        );
    }

    #[test]
    fn unequal_silos_still_converge() {
        let (mut parties, _, _) = silos(2, 60, 2);
        // Shrink the second silo to 10 rows.
        let small_rows: Vec<usize> = (0..10).collect();
        parties[1] = PartySamples {
            name: parties[1].name.clone(),
            x: parties[1].x.slice(0..10, 0..3).unwrap(),
            y: DenseMatrix::column_vector(&parties[1].y.col(0)[..10]),
        };
        let _ = small_rows;
        let config = HflConfig {
            rounds: 200,
            local_epochs: 3,
            learning_rate: 0.2,
            ..HflConfig::default()
        };
        let result = train_fedavg(&parties, &config).unwrap();
        assert!((result.global.get(0, 0) - 2.0).abs() < 0.05);
        assert!((result.global.get(1, 0) + 1.0).abs() < 0.05);
        assert!(result.loss_history.first().unwrap() > result.loss_history.last().unwrap());
    }

    #[test]
    fn more_local_epochs_need_fewer_rounds() {
        let (parties, _, _) = silos(3, 40, 3);
        let loss_after = |local_epochs: usize| {
            let config = HflConfig {
                rounds: 10,
                local_epochs,
                learning_rate: 0.2,
                ..HflConfig::default()
            };
            *train_fedavg(&parties, &config)
                .unwrap()
                .loss_history
                .last()
                .unwrap()
        };
        assert!(loss_after(5) < loss_after(1));
    }

    #[test]
    fn dp_noise_perturbs_but_preserves_signal() {
        let (parties, _, _) = silos(3, 100, 4);
        let clean = train_fedavg(
            &parties,
            &HflConfig {
                rounds: 50,
                learning_rate: 0.3,
                ..HflConfig::default()
            },
        )
        .unwrap();
        let noisy = train_fedavg(
            &parties,
            &HflConfig {
                rounds: 50,
                learning_rate: 0.3,
                dp: Some((0.01, 1.0)),
                ..HflConfig::default()
            },
        )
        .unwrap();
        assert!(!noisy.global.approx_eq(&clean.global, 1e-12)); // noise applied
        assert!(noisy.global.approx_eq(&clean.global, 0.5)); // signal survives
    }

    #[test]
    fn validation_errors() {
        let (parties, _, _) = silos(2, 10, 5);
        assert!(train_fedavg(&[], &HflConfig::default()).is_err());
        assert!(train_fedavg(
            &parties,
            &HflConfig {
                rounds: 0,
                ..HflConfig::default()
            }
        )
        .is_err());
        let mut bad = parties.clone();
        bad[1].x = DenseMatrix::zeros(10, 5);
        assert!(train_fedavg(&bad, &HflConfig::default()).is_err());
        let mut bad_y = parties.clone();
        bad_y[0].y = DenseMatrix::zeros(3, 1);
        assert!(train_fedavg(&bad_y, &HflConfig::default()).is_err());
        // Bad DP parameters.
        assert!(train_fedavg(
            &parties,
            &HflConfig {
                dp: Some((1.0, -1.0)),
                ..HflConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn comm_stats_grow_with_rounds_and_parties() {
        let (parties, _, _) = silos(4, 10, 6);
        let run = |rounds| {
            train_fedavg(
                &parties,
                &HflConfig {
                    rounds,
                    ..HflConfig::default()
                },
            )
            .unwrap()
            .comm
        };
        let short = run(5);
        let long = run(10);
        assert_eq!(long.total_bytes(), short.total_bytes() * 2);
        assert_eq!(long.messages, short.messages * 2);
    }
}
