//! Federated learning over data silos (§II-C and §V of the paper).
//!
//! "In the existence of privacy constraints, Amalur will conduct
//! privacy-preserving data integration operations over the silos, and
//! split the learning process over the silos. The central orchestrator
//! will coordinate communication between silos, and the encryption/
//! decryption during aggregating the results and updating the weights."
//!
//! * [`align`] — turns a [`amalur_factorize::FactorizedTable`] into per-party feature
//!   views `Xₖ = (IₖDₖMₖᵀ) ∘ Rₖ` restricted to each source's columns:
//!   the paper's §V-A insight that the mapping/indicator matrices define
//!   the federated feature spaces (`X_A = I₁D₁M₁ᵀ`, `X_B = I₂D₂M₂ᵀ`).
//! * [`vfl`] — vertical federated linear regression (Yang et al.'s
//!   protocol shape): parties hold disjoint feature slices of the same
//!   aligned rows; partial predictions are aggregated through the
//!   orchestrator under a chosen [`PrivacyMode`] (plaintext baseline,
//!   additive secret sharing, or Paillier homomorphic encryption).
//! * [`hfl`] — horizontal FedAvg: parties hold disjoint row sets of the
//!   same schema (the union scenario); the orchestrator averages local
//!   models, optionally noised by the Laplace mechanism.
//!
//! Parties run as real threads connected to the orchestrator by
//! `crossbeam` channels — message counts and byte volumes are observable,
//! which is what the §V-B encryption-overhead study measures.
//!
//! # Fault model
//!
//! Real federations run over WANs that drop, delay, duplicate, and
//! corrupt traffic, and silos crash. Three modules make the
//! orchestrators survive that:
//!
//! * [`transport`] — the **transport contract**. Every message attempt
//!   is submitted to a [`Transport`], which assigns it a
//!   [`transport::Fate`] (delivered with a delay and a copy count,
//!   dropped, corrupted, or stale). The contract requires fates to be
//!   **pure functions of the message identity** (round, party,
//!   direction, attempt) — a transport may not keep hidden mutable
//!   state — which is what makes whole training trajectories
//!   reproducible from a seed and lets checkpoints skip transport
//!   state entirely. Time is virtual: delays and timeouts are
//!   milliseconds of simulated clock, so tests never sleep.
//!   [`ReliableTransport`] is the zero-fault instance.
//! * [`faults`] — [`FaultyTransport`] executes a seeded [`FaultPlan`]
//!   (drop/straggler/duplicate/corrupt/stale probabilities plus
//!   per-party [`faults::CrashWindow`]s) under that contract.
//! * [`checkpoint`] — round-level snapshots. The **checkpoint format**
//!   (`amalur-fedavg-checkpoint/v1`) is JSON with every float stored
//!   as its IEEE-754 bit pattern in hex, so a killed run resumed from
//!   its last checkpoint finishes **bit-identical** to an
//!   uninterrupted one.
//!
//! **Quorum semantics**: a FedAvg round aggregates when at least
//! `ceil(min_fraction · n)` parties (never fewer than one) deliver a
//! valid, round-tagged update before the round deadline; the average is
//! reweighted by the *responding* sample counts. A below-quorum round
//! leaves the model unchanged, and after `patience` consecutive misses
//! the run fails fast with [`FederatedError::QuorumLost`] rather than
//! hang. All of this is accounted in [`CommStats`], which counts every
//! wire attempt (retries and duplicates included).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod checkpoint;
mod error;
pub mod faults;
pub mod hfl;
mod protocol;
pub mod transport;
pub mod vfl;

pub use align::{party_views, PartyView};
pub use checkpoint::{Checkpoint, CHECKPOINT_SCHEMA};
pub use error::{FederatedError, Result};
pub use faults::{FaultPlan, FaultyTransport};
pub use hfl::{
    train_fedavg, train_fedavg_with_transport, FedAvgOrchestrator, HflConfig, HflResult,
    PartySamples, QuorumPolicy, RetryPolicy, RoundEvent, RoundEventKind,
};
pub use protocol::{CommStats, PrivacyMode};
pub use transport::{ReliableTransport, Transport};
pub use vfl::{train_vfl, train_vfl_with_transport, VflConfig, VflResult};
