//! Federated learning over data silos (§II-C and §V of the paper).
//!
//! "In the existence of privacy constraints, Amalur will conduct
//! privacy-preserving data integration operations over the silos, and
//! split the learning process over the silos. The central orchestrator
//! will coordinate communication between silos, and the encryption/
//! decryption during aggregating the results and updating the weights."
//!
//! * [`align`] — turns a [`amalur_factorize::FactorizedTable`] into per-party feature
//!   views `Xₖ = (IₖDₖMₖᵀ) ∘ Rₖ` restricted to each source's columns:
//!   the paper's §V-A insight that the mapping/indicator matrices define
//!   the federated feature spaces (`X_A = I₁D₁M₁ᵀ`, `X_B = I₂D₂M₂ᵀ`).
//! * [`vfl`] — vertical federated linear regression (Yang et al.'s
//!   protocol shape): parties hold disjoint feature slices of the same
//!   aligned rows; partial predictions are aggregated through the
//!   orchestrator under a chosen [`PrivacyMode`] (plaintext baseline,
//!   additive secret sharing, or Paillier homomorphic encryption).
//! * [`hfl`] — horizontal FedAvg: parties hold disjoint row sets of the
//!   same schema (the union scenario); the orchestrator averages local
//!   models, optionally noised by the Laplace mechanism.
//!
//! Parties run as real threads connected to the orchestrator by
//! `crossbeam` channels — message counts and byte volumes are observable,
//! which is what the §V-B encryption-overhead study measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
mod error;
pub mod hfl;
mod protocol;
pub mod vfl;

pub use align::{party_views, PartyView};
pub use error::{FederatedError, Result};
pub use hfl::{train_fedavg, HflConfig, HflResult, PartySamples};
pub use protocol::{CommStats, PrivacyMode};
pub use vfl::{train_vfl, VflConfig, VflResult};
