//! Shared protocol types: privacy modes and communication accounting.

/// How partial results are protected on the wire (§V-B's three
/// technique families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyMode {
    /// No protection — the correctness baseline and the cheapest path.
    Plaintext,
    /// Additive secret sharing over `Z_{2⁶¹−1}`: the orchestrator (and
    /// any proper subset of parties) sees only uniformly random shares;
    /// the sum is revealed only in aggregate.
    SecretShared,
    /// Paillier additively homomorphic encryption with the given modulus
    /// size: parties encrypt, the orchestrator aggregates ciphertexts,
    /// only the key holder decrypts the aggregate.
    Paillier {
        /// Modulus bits (512 is the benchmark default; ≥ 2048 for real
        /// deployments).
        key_bits: usize,
    },
}

impl std::fmt::Display for PrivacyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrivacyMode::Plaintext => write!(f, "plaintext"),
            PrivacyMode::SecretShared => write!(f, "secret-shared"),
            PrivacyMode::Paillier { key_bits } => write!(f, "paillier-{key_bits}"),
        }
    }
}

/// Communication, crypto-time and fault-handling accounting for one
/// training run — the observable side of §V-B's "how much overhead will
/// the encryption bring" question, extended with the overhead of
/// surviving an unreliable network.
///
/// # Accounting semantics (pinned by `per_attempt_accounting`)
///
/// Traffic counters measure the *wire*, not the application:
///
/// * every send **attempt** counts its bytes and one message, whether
///   or not the network delivers it — a dropped message still consumed
///   uplink bandwidth;
/// * a duplicated delivery counts each extra copy's bytes and message,
///   because the network really did carry it twice;
/// * retransmissions of the same logical payload therefore appear once
///   per attempt, never coalesced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total bytes sent by parties to the orchestrator.
    pub bytes_up: usize,
    /// Total bytes broadcast from the orchestrator to parties.
    pub bytes_down: usize,
    /// Number of protocol messages put on the wire.
    pub messages: usize,
    /// Wall time spent in encryption/decryption/share arithmetic.
    pub crypto_time: std::time::Duration,
    /// Retry attempts beyond the first, across all logical messages.
    pub retries: usize,
    /// Message attempts the network dropped.
    pub drops: usize,
    /// Party-rounds lost to a missed deadline or an exhausted retry
    /// budget.
    pub timeouts: usize,
    /// Deliveries that arrived slower than the base RTT.
    pub stragglers: usize,
    /// Redundant copies of already-delivered messages.
    pub duplicates: usize,
    /// Envelopes rejected because their checksum failed.
    pub corrupt_rejected: usize,
    /// Envelopes rejected because their round tag was stale.
    pub stale_rejected: usize,
    /// Party-rounds lost to a crash window.
    pub crash_outages: usize,
    /// Rounds aggregated with a quorum but below full participation.
    pub rounds_degraded: usize,
    /// Rounds skipped entirely because quorum was not reached.
    pub rounds_skipped: usize,
}

impl CommStats {
    /// Total traffic in bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes_up + self.bytes_down
    }

    /// All fault-handling events: how noisy the network was, summed.
    pub fn fault_events(&self) -> usize {
        self.drops
            + self.timeouts
            + self.stragglers
            + self.duplicates
            + self.corrupt_rejected
            + self.stale_rejected
            + self.crash_outages
    }

    /// Records one send attempt of `bytes` in `direction` — see the
    /// accounting semantics in the type docs.
    pub(crate) fn record_attempt(&mut self, direction: crate::transport::Direction, bytes: usize) {
        match direction {
            crate::transport::Direction::Down => self.bytes_down += bytes,
            crate::transport::Direction::Up => self.bytes_up += bytes,
        }
        self.messages += 1;
    }

    /// Bridges this run's accounting into a metrics registry under the
    /// `federated.comm.*` names, so federated bench bins emit the same
    /// `amalur-obs/v1` dump format as the serving layer. Counters are
    /// get-or-register: bridging several runs into one registry sums
    /// them.
    pub fn to_metrics(&self, reg: &amalur_obs::MetricsRegistry) {
        let add = |name: &str, v: usize| reg.counter(name).add(v as u64);
        add("federated.comm.bytes_up", self.bytes_up);
        add("federated.comm.bytes_down", self.bytes_down);
        add("federated.comm.messages", self.messages);
        add("federated.comm.retries", self.retries);
        add("federated.comm.drops", self.drops);
        add("federated.comm.timeouts", self.timeouts);
        add("federated.comm.stragglers", self.stragglers);
        add("federated.comm.duplicates", self.duplicates);
        add("federated.comm.corrupt_rejected", self.corrupt_rejected);
        add("federated.comm.stale_rejected", self.stale_rejected);
        add("federated.comm.crash_outages", self.crash_outages);
        add("federated.comm.rounds_degraded", self.rounds_degraded);
        add("federated.comm.rounds_skipped", self.rounds_skipped);
        reg.counter("federated.comm.crypto_time_us")
            .add(u64::try_from(self.crypto_time.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records `extra` duplicated deliveries of a `bytes`-sized message.
    pub(crate) fn record_duplicates(
        &mut self,
        direction: crate::transport::Direction,
        bytes: usize,
        extra: usize,
    ) {
        if extra == 0 {
            return;
        }
        match direction {
            crate::transport::Direction::Down => self.bytes_down += bytes * extra,
            crate::transport::Direction::Up => self.bytes_up += bytes * extra,
        }
        self.messages += extra;
        self.duplicates += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Direction;

    #[test]
    fn display_modes() {
        assert_eq!(PrivacyMode::Plaintext.to_string(), "plaintext");
        assert_eq!(PrivacyMode::SecretShared.to_string(), "secret-shared");
        assert_eq!(
            PrivacyMode::Paillier { key_bits: 512 }.to_string(),
            "paillier-512"
        );
    }

    #[test]
    fn stats_accumulate() {
        let s = CommStats {
            bytes_up: 10,
            bytes_down: 5,
            messages: 3,
            crypto_time: std::time::Duration::from_millis(1),
            ..CommStats::default()
        };
        assert_eq!(s.total_bytes(), 15);
        assert_eq!(s.fault_events(), 0);
    }

    /// Pins the per-attempt semantics: a retried uplink message counts
    /// bytes and messages once per attempt (including the dropped
    /// ones), and a duplicated delivery counts every extra copy.
    #[test]
    fn per_attempt_accounting() {
        let mut s = CommStats::default();
        // Attempt 1: dropped by the network — bandwidth still spent.
        s.record_attempt(Direction::Up, 80);
        s.drops += 1;
        // Attempt 2 (retry): delivered twice.
        s.retries += 1;
        s.record_attempt(Direction::Up, 80);
        s.record_duplicates(Direction::Up, 80, 1);
        assert_eq!(s.bytes_up, 240, "two attempts + one duplicate copy");
        assert_eq!(s.messages, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.drops, 1);
        assert_eq!(s.duplicates, 1);
        // Downlink attempts land on the other counter.
        s.record_attempt(Direction::Down, 100);
        s.record_duplicates(Direction::Down, 100, 0); // no-op
        assert_eq!(s.bytes_down, 100);
        assert_eq!(s.messages, 4);
        assert_eq!(s.total_bytes(), 340);
    }
}
