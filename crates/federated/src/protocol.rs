//! Shared protocol types: privacy modes and communication accounting.

/// How partial results are protected on the wire (§V-B's three
/// technique families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyMode {
    /// No protection — the correctness baseline and the cheapest path.
    Plaintext,
    /// Additive secret sharing over `Z_{2⁶¹−1}`: the orchestrator (and
    /// any proper subset of parties) sees only uniformly random shares;
    /// the sum is revealed only in aggregate.
    SecretShared,
    /// Paillier additively homomorphic encryption with the given modulus
    /// size: parties encrypt, the orchestrator aggregates ciphertexts,
    /// only the key holder decrypts the aggregate.
    Paillier {
        /// Modulus bits (512 is the benchmark default; ≥ 2048 for real
        /// deployments).
        key_bits: usize,
    },
}

impl std::fmt::Display for PrivacyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrivacyMode::Plaintext => write!(f, "plaintext"),
            PrivacyMode::SecretShared => write!(f, "secret-shared"),
            PrivacyMode::Paillier { key_bits } => write!(f, "paillier-{key_bits}"),
        }
    }
}

/// Communication and crypto-time accounting for one training run —
/// the observable side of §V-B's "how much overhead will the encryption
/// bring" question.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Total bytes sent by parties to the orchestrator.
    pub bytes_up: usize,
    /// Total bytes broadcast from the orchestrator to parties.
    pub bytes_down: usize,
    /// Number of protocol messages exchanged.
    pub messages: usize,
    /// Wall time spent in encryption/decryption/share arithmetic.
    pub crypto_time: std::time::Duration,
}

impl CommStats {
    /// Total traffic in bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes_up + self.bytes_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_modes() {
        assert_eq!(PrivacyMode::Plaintext.to_string(), "plaintext");
        assert_eq!(PrivacyMode::SecretShared.to_string(), "secret-shared");
        assert_eq!(
            PrivacyMode::Paillier { key_bits: 512 }.to_string(),
            "paillier-512"
        );
    }

    #[test]
    fn stats_accumulate() {
        let s = CommStats {
            bytes_up: 10,
            bytes_down: 5,
            messages: 3,
            crypto_time: std::time::Duration::from_millis(1),
        };
        assert_eq!(s.total_bytes(), 15);
    }
}
