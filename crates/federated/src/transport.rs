//! The wire between parties and the orchestrator.
//!
//! Every party↔orchestrator message in the federated protocols rides on
//! a [`Transport`]. The transport does not move bytes — parties are
//! in-process — it *decides the fate* of each message attempt: delivered
//! (after how much virtual delay, how many duplicated copies), dropped,
//! corrupted in flight, or delivered with a stale round tag. The
//! orchestrator enforces deadlines, retries with exponential backoff,
//! verifies [`Envelope`] checksums and round tags, and degrades to
//! quorum aggregation — so the full failure-handling path is exercised
//! without sockets or real sleeps.
//!
//! Two implementations ship with the crate:
//!
//! * [`ReliableTransport`] — every attempt is delivered once after one
//!   RTT; the pre-fault-model behavior.
//! * [`crate::FaultyTransport`] — deterministic, seed-driven fault
//!   injection from a [`crate::FaultPlan`].
//!
//! Determinism contract: a transport's fate for a message must be a
//! pure function of the message's [`MessageMeta`] (plus the transport's
//! own immutable configuration). This is what makes checkpoint/resume
//! bit-identical: replaying round `r` after a resume consults the
//! transport with the same metadata and gets the same answers.

use rand::{Rng, RngCore, SeedableRng};

/// Direction of a message on the (virtual) wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Orchestrator → party (model broadcast, requests).
    Down,
    /// Party → orchestrator (updates, partial results, acks).
    Up,
}

/// Metadata identifying one delivery attempt of one logical message.
#[derive(Debug, Clone, Copy)]
pub struct MessageMeta {
    /// Training round (or epoch) the message belongs to.
    pub round: usize,
    /// Party index.
    pub party: usize,
    /// Wire direction.
    pub direction: Direction,
    /// Zero-based retry attempt for this logical message.
    pub attempt: usize,
    /// Payload size in bytes (for traffic accounting).
    pub bytes: usize,
}

/// What the transport did with one message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The message arrived after `delay_ms` of virtual time, `copies`
    /// (≥ 1) times — the network may replay a message it already
    /// delivered, and receivers must deduplicate.
    Delivered {
        /// Virtual one-way latency in milliseconds.
        delay_ms: u64,
        /// Number of delivered copies (1 = normal, ≥ 2 = duplicated).
        copies: usize,
    },
    /// The message never arrived; the sender only learns via timeout.
    Dropped,
    /// The message arrived but its payload was damaged in flight — the
    /// receiver's checksum verification fails and the message is
    /// discarded.
    Corrupted {
        /// Virtual one-way latency in milliseconds.
        delay_ms: u64,
    },
    /// The message arrived carrying a stale round tag (a delayed
    /// retransmission from an earlier round); receivers reject it by
    /// tag comparison.
    Stale {
        /// Virtual one-way latency in milliseconds.
        delay_ms: u64,
        /// The round tag the envelope arrives with.
        stale_round: usize,
    },
}

/// A pluggable network between the orchestrator and the parties.
pub trait Transport {
    /// Decides the fate of one message attempt. Must be deterministic
    /// in `meta` (see the module docs).
    fn fate(&mut self, meta: &MessageMeta) -> Fate;

    /// Whether `party` is up during `round` (crash/recovery schedule).
    /// Unavailable parties neither receive nor send anything.
    fn available(&self, _party: usize, _round: usize) -> bool {
        true
    }

    /// Base one-way latency in virtual milliseconds; deliveries slower
    /// than this count as stragglers.
    fn rtt_ms(&self) -> u64 {
        DEFAULT_RTT_MS
    }
}

/// Default virtual one-way latency.
pub const DEFAULT_RTT_MS: u64 = 50;

/// The perfectly reliable in-process network: every attempt is
/// delivered exactly once after one RTT.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReliableTransport;

impl Transport for ReliableTransport {
    fn fate(&mut self, _meta: &MessageMeta) -> Fate {
        Fate::Delivered {
            delay_ms: DEFAULT_RTT_MS,
            copies: 1,
        }
    }
}

/// A round-tagged, checksummed model payload — what actually travels
/// on the uplink in fault-tolerant FedAvg.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Round the payload was computed for.
    pub round: usize,
    /// Sending party.
    pub party: usize,
    /// Sample count backing the update (quorum reweighting).
    pub samples: usize,
    /// The model coefficients.
    pub payload: Vec<f64>,
    /// FNV-1a over the round tag, party, sample count and payload bits.
    pub checksum: u64,
}

impl Envelope {
    /// Seals a payload with its integrity checksum.
    pub fn new(round: usize, party: usize, samples: usize, payload: Vec<f64>) -> Self {
        let checksum = envelope_checksum(round, party, samples, &payload);
        Self {
            round,
            party,
            samples,
            payload,
            checksum,
        }
    }

    /// Whether the envelope survived the wire intact.
    pub fn verify(&self) -> bool {
        envelope_checksum(self.round, self.party, self.samples, &self.payload) == self.checksum
    }

    /// Simulates in-flight damage: perturbs one payload value (chosen
    /// by `salt`) without fixing up the checksum, so [`Self::verify`]
    /// fails.
    pub fn corrupt_in_flight(&mut self, salt: u64) {
        if self.payload.is_empty() {
            // No payload bits to flip — damage the tag instead.
            self.checksum ^= 1;
            return;
        }
        let idx = (salt as usize) % self.payload.len();
        let bits = self.payload[idx].to_bits() ^ (1u64 << (salt % 52));
        self.payload[idx] = f64::from_bits(bits);
    }
}

/// FNV-1a over the envelope's identifying fields and payload bits.
fn envelope_checksum(round: usize, party: usize, samples: usize, payload: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(round as u64);
    mix(party as u64);
    mix(samples as u64);
    for &v in payload {
        mix(v.to_bits());
    }
    h
}

/// A seeded RNG that counts its draws, so its exact position in the
/// stream can be checkpointed and restored (resume fast-forwards a
/// fresh stream by `draws` steps). This is the "RNG cursor" recorded in
/// [`crate::Checkpoint`].
#[derive(Debug, Clone)]
pub struct CursorRng {
    rng: rand::rngs::StdRng,
    seed: u64,
    draws: u64,
}

impl CursorRng {
    /// A fresh stream at position zero.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            seed,
            draws: 0,
        }
    }

    /// Rebuilds the stream at a checkpointed position.
    pub fn restore(seed: u64, draws: u64) -> Self {
        let mut rng = Self::new(seed);
        for _ in 0..draws {
            let _ = rng.next_u64();
        }
        debug_assert_eq!(rng.draws, draws);
        rng
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many 64-bit values have been drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl RngCore for CursorRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.rng.next_u64()
    }
}

/// Deterministic per-decision stream: hashes the identifying fields
/// into a seed so every (seed, round, party, direction, attempt, salt)
/// tuple gets an independent, reproducible generator. Fault injection
/// and backoff jitter both draw from streams built here, which is what
/// keeps them pure functions of the message identity.
pub fn decision_rng(
    seed: u64,
    round: usize,
    party: usize,
    direction: Direction,
    attempt: usize,
    salt: u64,
) -> rand::rngs::StdRng {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut mix = |v: u64| {
        h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    };
    mix(round as u64);
    mix(party as u64);
    mix(match direction {
        Direction::Down => 1,
        Direction::Up => 2,
    });
    mix(attempt as u64);
    mix(salt);
    rand::rngs::StdRng::seed_from_u64(h)
}

/// Deterministic exponential backoff with jitter, in virtual
/// milliseconds, for retry `attempt` (≥ 1) of a message.
pub fn backoff_ms(
    base_ms: u64,
    jitter: f64,
    seed: u64,
    round: usize,
    party: usize,
    attempt: usize,
) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << (attempt - 1).min(16));
    let u: f64 = decision_rng(seed, round, party, Direction::Down, attempt, 0x0BAC_C0FF).gen();
    (exp as f64 * (1.0 + jitter * u)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_always_delivers_once() {
        let mut t = ReliableTransport;
        for round in 0..5 {
            for attempt in 0..3 {
                let meta = MessageMeta {
                    round,
                    party: 0,
                    direction: Direction::Up,
                    attempt,
                    bytes: 64,
                };
                assert_eq!(
                    t.fate(&meta),
                    Fate::Delivered {
                        delay_ms: DEFAULT_RTT_MS,
                        copies: 1
                    }
                );
            }
            assert!(t.available(0, round));
        }
    }

    #[test]
    fn envelope_checksum_catches_damage() {
        let env = Envelope::new(3, 1, 40, vec![1.0, -2.5, 0.25]);
        assert!(env.verify());
        for salt in 0..32 {
            let mut damaged = env.clone();
            damaged.corrupt_in_flight(salt);
            assert!(!damaged.verify(), "salt {salt} produced a valid envelope");
        }
        let mut empty = Envelope::new(0, 0, 0, vec![]);
        assert!(empty.verify());
        empty.corrupt_in_flight(7);
        assert!(!empty.verify());
    }

    #[test]
    fn envelope_checksum_binds_round_tag() {
        let env = Envelope::new(3, 1, 40, vec![1.0]);
        let mut retagged = env.clone();
        retagged.round = 2; // replayed under an old tag
        assert!(!retagged.verify());
    }

    #[test]
    fn cursor_rng_restores_exact_position() {
        let mut a = CursorRng::new(99);
        let prefix: Vec<u64> = (0..17).map(|_| a.next_u64()).collect();
        assert_eq!(a.draws(), 17);
        let mut b = CursorRng::restore(99, a.draws());
        assert_eq!(b.draws(), 17);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let _ = prefix;
    }

    #[test]
    fn decision_rng_is_pure_and_distinct() {
        use rand::Rng;
        let draw = |round, party, attempt| -> u64 {
            decision_rng(7, round, party, Direction::Up, attempt, 1).gen()
        };
        assert_eq!(draw(0, 0, 0), draw(0, 0, 0));
        assert_ne!(draw(0, 0, 0), draw(1, 0, 0));
        assert_ne!(draw(0, 0, 0), draw(0, 1, 0));
        assert_ne!(draw(0, 0, 0), draw(0, 0, 1));
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let b1 = backoff_ms(100, 0.2, 5, 3, 0, 1);
        let b2 = backoff_ms(100, 0.2, 5, 3, 0, 2);
        let b3 = backoff_ms(100, 0.2, 5, 3, 0, 3);
        assert!((100..=120).contains(&b1));
        assert!((200..=240).contains(&b2));
        assert!((400..=480).contains(&b3));
        assert_eq!(b2, backoff_ms(100, 0.2, 5, 3, 0, 2));
    }
}
