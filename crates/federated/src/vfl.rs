//! Vertical federated linear regression (§V-A).
//!
//! The objective — Yang et al.'s federated linear regression, rewritten
//! by the paper through the DI matrices —
//!
//! ```text
//! min over Θ_A, Θ_B of Σᵢ ‖ Θ_A X_A⁽ⁱ⁾ + Θ_B X_B⁽ⁱ⁾ − Y⁽ⁱ⁾ ‖²,
//!     X_A = I₁D₁M₁ᵀ,  X_B = I₂D₂M₂ᵀ
//! ```
//!
//! is minimized by synchronous gradient descent where each epoch:
//!
//! 1. every party computes its partial prediction `uₖ = Xₖθₖ` locally;
//! 2. the orchestrator aggregates `u = Σₖ uₖ` under the configured
//!    [`PrivacyMode`] (plaintext sum, secret-share reconstruction, or
//!    Paillier ciphertext product);
//! 3. the label holder forms the residual `d = u − y`, which is
//!    broadcast; each party updates `θₖ ← θₖ − α/n (Xₖᵀ d + λ θₖ)`.
//!
//! Because `∂/∂θₖ ‖Σⱼ Xⱼθⱼ − y‖² = Xₖᵀ d`, the trajectory is *exactly*
//! centralized gradient descent on the concatenated features — the
//! equivalence the tests assert. Parties run as threads; the
//! orchestrator never sees raw features, only (protected) partial sums.
//!
//! Leakage model: the residual is revealed to all parties each epoch
//! (as in the reference protocol's simplified variants); secret-share
//! routing passes through the orchestrator, standing in for pairwise
//! party channels. Both are documented simplifications of \[35\].

use crate::protocol::{CommStats, PrivacyMode};
use crate::{FederatedError, Result};
use amalur_crypto::sharing::{additive, FixedPoint};
use amalur_crypto::{Ciphertext, KeyPair};
use amalur_matrix::DenseMatrix;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::SeedableRng;
use std::time::Instant;

/// Configuration for [`train_vfl`].
#[derive(Debug, Clone)]
pub struct VflConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Wire protection for partial predictions.
    pub privacy: PrivacyMode,
    /// RNG seed (share randomness, Paillier key generation).
    pub seed: u64,
}

impl Default for VflConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            learning_rate: 0.1,
            l2: 0.0,
            privacy: PrivacyMode::Plaintext,
            seed: 42,
        }
    }
}

/// The trained federated model.
#[derive(Debug, Clone)]
pub struct VflResult {
    /// Per-party coefficient vectors, in party order.
    pub coefficients: Vec<DenseMatrix>,
    /// Per-epoch squared-residual loss `‖u − y‖²/2n`.
    pub loss_history: Vec<f64>,
    /// Communication and crypto accounting.
    pub comm: CommStats,
}

impl VflResult {
    /// Federated prediction `Σₖ Xₖθₖ` for aligned party features.
    ///
    /// # Errors
    /// Shape mismatch between features and coefficients.
    pub fn predict(&self, features: &[DenseMatrix]) -> Result<DenseMatrix> {
        if features.len() != self.coefficients.len() {
            return Err(FederatedError::Misaligned(format!(
                "{} feature blocks for {} parties",
                features.len(),
                self.coefficients.len()
            )));
        }
        let rows = features.first().map_or(0, DenseMatrix::rows);
        let mut out = DenseMatrix::zeros(rows, 1);
        for (x, theta) in features.iter().zip(&self.coefficients) {
            out.add_assign(&x.matmul(theta)?)?;
        }
        Ok(out)
    }
}

/// Messages orchestrator → party.
enum ToParty {
    /// Compute `uₖ = Xₖθₖ` and reply according to the privacy mode.
    ComputePartial,
    /// (Secret sharing) shares routed to this party, one vector per peer.
    ReceiveShares(Vec<Vec<u64>>),
    /// Residual broadcast; update local coefficients.
    ApplyResidual(Vec<f64>),
    /// Training is over; surrender the local model.
    Finish,
}

/// Messages party → orchestrator.
enum FromParty {
    Partial(Vec<f64>),
    PartialCipher(Vec<Ciphertext>),
    /// `shares[peer][row]` — this party's share bundle for every peer.
    ShareBundle(Vec<Vec<u64>>),
    ShareSum(Vec<u64>),
    Ack,
    Theta(Vec<f64>),
}

struct PartyRuntime {
    features: DenseMatrix,
    theta: Vec<f64>,
    learning_rate: f64,
    l2: f64,
    n_parties: usize,
    privacy: PrivacyMode,
    fp: FixedPoint,
    paillier_pk: Option<amalur_crypto::PublicKey>,
    rng: rand::rngs::StdRng,
    /// Shares received from peers this round (summed locally).
    pending_share_sum: Option<Vec<u64>>,
    inbox: Receiver<ToParty>,
    outbox: Sender<FromParty>,
}

impl PartyRuntime {
    fn run(mut self) -> Result<()> {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                ToParty::ComputePartial => self.compute_partial()?,
                ToParty::ReceiveShares(from_peers) => {
                    let mut sum = vec![0u64; self.features.rows()];
                    for v in from_peers {
                        let summed = additive::add_shares(&sum, &v)?;
                        sum = summed;
                    }
                    // Fold in own retained share.
                    if let Some(own) = self.pending_share_sum.take() {
                        sum = additive::add_shares(&sum, &own)?;
                    }
                    self.send(FromParty::ShareSum(sum))?;
                }
                ToParty::ApplyResidual(d) => {
                    self.apply_residual(&d)?;
                    self.send(FromParty::Ack)?;
                }
                ToParty::Finish => {
                    self.send(FromParty::Theta(self.theta.clone()))?;
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn partial(&self) -> Result<Vec<f64>> {
        Ok(self.features.matvec(&self.theta)?)
    }

    fn compute_partial(&mut self) -> Result<()> {
        let u = self.partial()?;
        match self.privacy {
            PrivacyMode::Plaintext => self.send(FromParty::Partial(u)),
            PrivacyMode::SecretShared => {
                // Split every entry into n shares; keep this party's own
                // share locally, emit the rest for routing.
                let mut bundles: Vec<Vec<u64>> = vec![Vec::with_capacity(u.len()); self.n_parties];
                for &v in &u {
                    let enc = self.fp.encode(v)?;
                    let shares = additive::share(enc, self.n_parties, &mut self.rng)?;
                    for (b, s) in bundles.iter_mut().zip(shares) {
                        b.push(s);
                    }
                }
                // Convention: the last bundle is retained locally.
                let own = bundles.pop().expect("n_parties >= 1");
                self.pending_share_sum = Some(own);
                self.send(FromParty::ShareBundle(bundles))
            }
            PrivacyMode::Paillier { .. } => {
                let pk = self
                    .paillier_pk
                    .as_ref()
                    .ok_or_else(|| FederatedError::Protocol("missing public key".into()))?;
                let cipher: Vec<Ciphertext> = u
                    .iter()
                    .map(|&v| pk.encrypt_f64(v, &mut self.rng))
                    .collect::<std::result::Result<_, _>>()?;
                self.send(FromParty::PartialCipher(cipher))
            }
        }
    }

    fn apply_residual(&mut self, d: &[f64]) -> Result<()> {
        // θₖ ← θₖ − α/n (Xₖᵀ d + λ θₖ)
        let n = self.features.rows() as f64;
        let resid = DenseMatrix::column_vector(d);
        let grad = self.features.transpose_matmul(&resid)?;
        for (t, g) in self.theta.iter_mut().zip(grad.as_slice()) {
            *t -= self.learning_rate / n * (g + self.l2 * *t);
        }
        Ok(())
    }

    fn send(&self, msg: FromParty) -> Result<()> {
        self.outbox
            .send(msg)
            .map_err(|_| FederatedError::Protocol("orchestrator hung up".into()))
    }
}

/// Trains vertical federated linear regression.
///
/// * `features` — one aligned feature matrix per party (equal row
///   counts; build them with [`crate::align::party_views`]).
/// * `y` — the label column (held by the label party, handed to the
///   orchestrator which acts as its delegate).
///
/// # Errors
/// * [`FederatedError::InvalidConfig`] for zero parties/epochs.
/// * [`FederatedError::Misaligned`] for inconsistent row counts.
pub fn train_vfl(
    features: &[DenseMatrix],
    y: &DenseMatrix,
    config: &VflConfig,
) -> Result<VflResult> {
    if features.is_empty() || config.epochs == 0 {
        return Err(FederatedError::InvalidConfig(
            "need at least one party and one epoch".into(),
        ));
    }
    let n = features[0].rows();
    for (k, x) in features.iter().enumerate() {
        if x.rows() != n {
            return Err(FederatedError::Misaligned(format!(
                "party {k} has {} rows, expected {n}",
                x.rows()
            )));
        }
    }
    if y.rows() != n || y.cols() != 1 {
        return Err(FederatedError::Misaligned(format!(
            "labels are {}x{}, expected {n}x1",
            y.rows(),
            y.cols()
        )));
    }

    let n_parties = features.len();
    let mut seed_rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let keypair = match config.privacy {
        PrivacyMode::Paillier { key_bits } => Some(KeyPair::generate(key_bits, &mut seed_rng)?),
        _ => None,
    };
    let fp = FixedPoint::default();

    let mut to_party: Vec<Sender<ToParty>> = Vec::with_capacity(n_parties);
    let mut inboxes: Vec<Receiver<ToParty>> = Vec::with_capacity(n_parties);
    let (from_tx, from_rx_template): (Vec<Sender<FromParty>>, Vec<Receiver<FromParty>>) =
        (0..n_parties).map(|_| unbounded()).unzip();
    for _ in 0..n_parties {
        let (tx, rx) = unbounded();
        to_party.push(tx);
        inboxes.push(rx);
    }

    let mut loss_history = Vec::with_capacity(config.epochs);
    let mut comm = CommStats::default();
    let mut coefficients: Vec<DenseMatrix> = Vec::new();

    std::thread::scope(|scope| -> Result<()> {
        // Spawn parties.
        let mut handles = Vec::with_capacity(n_parties);
        for (k, x) in features.iter().enumerate() {
            let runtime = PartyRuntime {
                features: x.clone(),
                theta: vec![0.0; x.cols()],
                learning_rate: config.learning_rate,
                l2: config.l2,
                n_parties,
                privacy: config.privacy,
                fp,
                paillier_pk: keypair.as_ref().map(|kp| kp.public.clone()),
                rng: rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(k as u64 + 1)),
                pending_share_sum: None,
                inbox: inboxes[k].clone(),
                outbox: from_tx[k].clone(),
            };
            handles.push(scope.spawn(move || runtime.run()));
        }
        let from_rx = from_rx_template;

        let recv = |k: usize| -> Result<FromParty> {
            from_rx[k]
                .recv()
                .map_err(|_| FederatedError::Protocol(format!("party {k} hung up")))
        };

        for _epoch in 0..config.epochs {
            for tx in &to_party {
                tx.send(ToParty::ComputePartial)
                    .map_err(|_| FederatedError::Protocol("party hung up".into()))?;
                comm.messages += 1;
            }
            // Aggregate u = Σ uₖ under the privacy mode.
            let u: Vec<f64> = match config.privacy {
                PrivacyMode::Plaintext => {
                    let mut acc = vec![0.0; n];
                    for k in 0..n_parties {
                        match recv(k)? {
                            FromParty::Partial(v) => {
                                comm.bytes_up += v.len() * 8;
                                comm.messages += 1;
                                for (a, b) in acc.iter_mut().zip(v) {
                                    *a += b;
                                }
                            }
                            _ => return Err(FederatedError::Protocol("expected Partial".into())),
                        }
                    }
                    acc
                }
                PrivacyMode::SecretShared => {
                    // Collect bundles: bundle[k][peer] destined to `peer`
                    // (peers indexed over the n−1 others in party order).
                    let started = Instant::now();
                    let mut routed: Vec<Vec<Vec<u64>>> = vec![Vec::new(); n_parties];
                    for k in 0..n_parties {
                        match recv(k)? {
                            FromParty::ShareBundle(bundles) => {
                                comm.messages += 1;
                                let mut peer_iter = (0..n_parties).filter(|&p| p != k);
                                for b in bundles {
                                    comm.bytes_up += b.len() * 8;
                                    let p = peer_iter.next().expect("n_parties - 1 bundles");
                                    routed[p].push(b);
                                }
                            }
                            _ => {
                                return Err(FederatedError::Protocol("expected ShareBundle".into()))
                            }
                        }
                    }
                    for (p, tx) in to_party.iter().enumerate() {
                        let payload = std::mem::take(&mut routed[p]);
                        comm.bytes_down += payload.iter().map(|v| v.len() * 8).sum::<usize>();
                        comm.messages += 1;
                        tx.send(ToParty::ReceiveShares(payload))
                            .map_err(|_| FederatedError::Protocol("party hung up".into()))?;
                    }
                    let mut acc = vec![0u64; n];
                    for k in 0..n_parties {
                        match recv(k)? {
                            FromParty::ShareSum(v) => {
                                comm.bytes_up += v.len() * 8;
                                comm.messages += 1;
                                let summed = additive::add_shares(&acc, &v)?;
                                acc = summed;
                            }
                            _ => return Err(FederatedError::Protocol("expected ShareSum".into())),
                        }
                    }
                    let out = acc.iter().map(|&v| fp.decode(v)).collect();
                    comm.crypto_time += started.elapsed();
                    out
                }
                PrivacyMode::Paillier { .. } => {
                    let started = Instant::now();
                    let kp = keypair.as_ref().expect("generated above");
                    let mut acc: Option<Vec<Ciphertext>> = None;
                    for k in 0..n_parties {
                        match recv(k)? {
                            FromParty::PartialCipher(c) => {
                                comm.bytes_up += c.len() * kp.public.modulus_bits() / 4; // |n²| bits
                                comm.messages += 1;
                                acc = Some(match acc {
                                    None => c,
                                    Some(prev) => prev
                                        .iter()
                                        .zip(c.iter())
                                        .map(|(a, b)| kp.public.add(a, b))
                                        .collect::<std::result::Result<_, _>>()?,
                                });
                            }
                            _ => {
                                return Err(FederatedError::Protocol(
                                    "expected PartialCipher".into(),
                                ))
                            }
                        }
                    }
                    let cipher_sum = acc.expect("at least one party");
                    let out: Vec<f64> = cipher_sum
                        .iter()
                        .map(|c| kp.private.decrypt_f64(c))
                        .collect::<std::result::Result<_, _>>()?;
                    comm.crypto_time += started.elapsed();
                    out
                }
            };

            // Label holder (delegated): residual and loss.
            let residual: Vec<f64> = u
                .iter()
                .zip(y.as_slice())
                .map(|(&ui, &yi)| ui - yi)
                .collect();
            let loss = residual.iter().map(|d| d * d).sum::<f64>() / (2.0 * n as f64);
            loss_history.push(loss);
            for tx in &to_party {
                comm.bytes_down += residual.len() * 8;
                comm.messages += 1;
                tx.send(ToParty::ApplyResidual(residual.clone()))
                    .map_err(|_| FederatedError::Protocol("party hung up".into()))?;
            }
            for k in 0..n_parties {
                match recv(k)? {
                    FromParty::Ack => comm.messages += 1,
                    _ => return Err(FederatedError::Protocol("expected Ack".into())),
                }
            }
        }

        // Collect models.
        for tx in &to_party {
            tx.send(ToParty::Finish)
                .map_err(|_| FederatedError::Protocol("party hung up".into()))?;
        }
        for k in 0..n_parties {
            match recv(k)? {
                FromParty::Theta(t) => {
                    coefficients.push(DenseMatrix::column_vector(&t));
                }
                _ => return Err(FederatedError::Protocol("expected Theta".into())),
            }
        }
        for h in handles {
            h.join()
                .map_err(|_| FederatedError::Protocol("party panicked".into()))??;
        }
        Ok(())
    })?;

    Ok(VflResult {
        coefficients,
        loss_history,
        comm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two-party aligned features with a planted linear target.
    fn setup(n: usize, seed: u64) -> (Vec<DenseMatrix>, DenseMatrix, DenseMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xa = DenseMatrix::random_uniform(n, 2, -1.0, 1.0, &mut rng);
        let xb = DenseMatrix::random_uniform(n, 3, -1.0, 1.0, &mut rng);
        let theta_true = [1.5, -2.0, 0.5, 1.0, -0.75];
        let y: Vec<f64> = (0..n)
            .map(|i| {
                xa.get(i, 0) * theta_true[0]
                    + xa.get(i, 1) * theta_true[1]
                    + xb.get(i, 0) * theta_true[2]
                    + xb.get(i, 1) * theta_true[3]
                    + xb.get(i, 2) * theta_true[4]
                    + rng.gen_range(-0.01..0.01)
            })
            .collect();
        let concat = xa.hstack(&xb).unwrap();
        (vec![xa, xb], DenseMatrix::column_vector(&y), concat)
    }

    /// Reference: centralized GD with the identical update rule.
    fn centralized(x: &DenseMatrix, y: &DenseMatrix, epochs: usize, lr: f64) -> DenseMatrix {
        let n = x.rows() as f64;
        let mut theta = DenseMatrix::zeros(x.cols(), 1);
        for _ in 0..epochs {
            let resid = x.matmul(&theta).unwrap().sub(y).unwrap();
            let grad = x.transpose_matmul(&resid).unwrap();
            theta.axpy_assign(-lr / n, &grad).unwrap();
        }
        theta
    }

    #[test]
    fn plaintext_vfl_equals_centralized_gd() {
        let (features, y, concat) = setup(120, 1);
        let config = VflConfig {
            epochs: 60,
            learning_rate: 0.3,
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let reference = centralized(&concat, &y, 60, 0.3);
        let federated = result.coefficients[0]
            .clone()
            .vstack(&result.coefficients[1])
            .unwrap();
        assert!(
            federated.approx_eq(&reference, 1e-9),
            "max diff {:?}",
            federated.max_abs_diff(&reference)
        );
        assert!(result.loss_history.first().unwrap() > result.loss_history.last().unwrap());
    }

    #[test]
    fn secret_shared_vfl_matches_within_fixed_point() {
        let (features, y, concat) = setup(60, 2);
        let config = VflConfig {
            epochs: 30,
            learning_rate: 0.3,
            privacy: PrivacyMode::SecretShared,
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let reference = centralized(&concat, &y, 30, 0.3);
        let federated = result.coefficients[0]
            .clone()
            .vstack(&result.coefficients[1])
            .unwrap();
        assert!(
            federated.approx_eq(&reference, 1e-3),
            "max diff {:?}",
            federated.max_abs_diff(&reference)
        );
        assert!(result.comm.crypto_time > std::time::Duration::ZERO);
        // Secret sharing costs extra traffic vs plaintext.
        let plain = train_vfl(
            &features,
            &y,
            &VflConfig {
                epochs: 30,
                learning_rate: 0.3,
                ..VflConfig::default()
            },
        )
        .unwrap();
        assert!(result.comm.total_bytes() > plain.comm.total_bytes());
    }

    #[test]
    fn paillier_vfl_matches_within_fixed_point() {
        let (features, y, concat) = setup(30, 3);
        let config = VflConfig {
            epochs: 10,
            learning_rate: 0.3,
            privacy: PrivacyMode::Paillier { key_bits: 128 },
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let reference = centralized(&concat, &y, 10, 0.3);
        let federated = result.coefficients[0]
            .clone()
            .vstack(&result.coefficients[1])
            .unwrap();
        assert!(
            federated.approx_eq(&reference, 1e-3),
            "max diff {:?}",
            federated.max_abs_diff(&reference)
        );
        assert!(result.comm.crypto_time > std::time::Duration::ZERO);
    }

    #[test]
    fn predict_combines_parties() {
        let (features, y, _) = setup(80, 4);
        let config = VflConfig {
            epochs: 200,
            learning_rate: 0.5,
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let pred = result.predict(&features).unwrap();
        let mse = pred
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.rows() as f64;
        assert!(mse < 0.05, "mse {mse}");
        assert!(result.predict(&features[..1]).is_err());
    }

    #[test]
    fn validation_errors() {
        let (features, y, _) = setup(10, 5);
        assert!(train_vfl(&[], &y, &VflConfig::default()).is_err());
        let zero_epochs = VflConfig {
            epochs: 0,
            ..VflConfig::default()
        };
        assert!(train_vfl(&features, &y, &zero_epochs).is_err());
        let short_y = DenseMatrix::zeros(5, 1);
        assert!(train_vfl(&features, &short_y, &VflConfig::default()).is_err());
        let mut bad = features.clone();
        bad[1] = DenseMatrix::zeros(7, 3);
        assert!(train_vfl(&bad, &y, &VflConfig::default()).is_err());
    }

    #[test]
    fn three_party_training_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let parts: Vec<DenseMatrix> = (0..3)
            .map(|_| DenseMatrix::random_uniform(50, 2, -1.0, 1.0, &mut rng))
            .collect();
        let y = DenseMatrix::column_vector(
            &(0..50)
                .map(|i| parts[0].get(i, 0) + parts[1].get(i, 1) - parts[2].get(i, 0))
                .collect::<Vec<_>>(),
        );
        for privacy in [PrivacyMode::Plaintext, PrivacyMode::SecretShared] {
            let config = VflConfig {
                epochs: 40,
                learning_rate: 0.4,
                privacy,
                ..VflConfig::default()
            };
            let result = train_vfl(&parts, &y, &config).unwrap();
            assert_eq!(result.coefficients.len(), 3);
            assert!(
                result.loss_history.last().unwrap() < &0.2,
                "{privacy}: loss {:?}",
                result.loss_history.last()
            );
        }
    }
}
