//! Vertical federated linear regression (§V-A).
//!
//! The objective — Yang et al.'s federated linear regression, rewritten
//! by the paper through the DI matrices —
//!
//! ```text
//! min over Θ_A, Θ_B of Σᵢ ‖ Θ_A X_A⁽ⁱ⁾ + Θ_B X_B⁽ⁱ⁾ − Y⁽ⁱ⁾ ‖²,
//!     X_A = I₁D₁M₁ᵀ,  X_B = I₂D₂M₂ᵀ
//! ```
//!
//! is minimized by synchronous gradient descent where each epoch:
//!
//! 1. every party computes its partial prediction `uₖ = Xₖθₖ` locally;
//! 2. the orchestrator aggregates `u = Σₖ uₖ` under the configured
//!    [`PrivacyMode`] (plaintext sum, secret-share reconstruction, or
//!    Paillier ciphertext product);
//! 3. the label holder forms the residual `d = u − y`, which is
//!    broadcast; each party updates `θₖ ← θₖ − α/n (Xₖᵀ d + λ θₖ)`.
//!
//! Because `∂/∂θₖ ‖Σⱼ Xⱼθⱼ − y‖² = Xₖᵀ d`, the trajectory is *exactly*
//! centralized gradient descent on the concatenated features — the
//! equivalence the tests assert. Parties run as threads; the
//! orchestrator never sees raw features, only (protected) partial sums.
//!
//! # Fault tolerance
//!
//! The two request/response exchanges of every epoch — the
//! partial-prediction request and the residual broadcast — ride on a
//! [`Transport`] with the same retry/backoff/deadline machinery as the
//! FedAvg orchestrator (see [`crate::transport`]). Residual application
//! is epoch-tagged so a party re-delivered the same residual (because
//! its ack was lost) applies it exactly once. Unlike FedAvg there is no
//! partial quorum: every party holds a feature slice nothing else can
//! substitute, so a party that stays unreachable past its retry budget
//! fails the run with [`FederatedError::QuorumLost`] (needed = all)
//! instead of hanging.
//!
//! Leakage model: the residual is revealed to all parties each epoch
//! (as in the reference protocol's simplified variants); secret-share
//! routing passes through the orchestrator, standing in for pairwise
//! party channels, and — like Paillier key distribution — is treated as
//! part of the reliable aggregation fabric rather than the faulty wire.
//! Both are documented simplifications of \[35\].

use crate::hfl::RetryPolicy;
use crate::protocol::{CommStats, PrivacyMode};
use crate::transport::{backoff_ms, Direction, Fate, MessageMeta, ReliableTransport, Transport};
use crate::{FederatedError, Result};
use amalur_crypto::sharing::{additive, FixedPoint};
use amalur_crypto::{Ciphertext, KeyPair};
use amalur_matrix::DenseMatrix;
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::SeedableRng;
use std::time::Instant;

/// Configuration for [`train_vfl`].
#[derive(Debug, Clone)]
pub struct VflConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Wire protection for partial predictions.
    pub privacy: PrivacyMode,
    /// RNG seed (share randomness, Paillier key generation).
    pub seed: u64,
    /// Retry/timeout/backoff policy for the per-epoch exchanges.
    pub retry: RetryPolicy,
}

impl Default for VflConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            learning_rate: 0.1,
            l2: 0.0,
            privacy: PrivacyMode::Plaintext,
            seed: 42,
            retry: RetryPolicy::default(),
        }
    }
}

/// The trained federated model.
#[derive(Debug, Clone)]
pub struct VflResult {
    /// Per-party coefficient vectors, in party order.
    pub coefficients: Vec<DenseMatrix>,
    /// Per-epoch squared-residual loss `‖u − y‖²/2n`.
    pub loss_history: Vec<f64>,
    /// Communication and crypto accounting.
    pub comm: CommStats,
}

impl VflResult {
    /// Federated prediction `Σₖ Xₖθₖ` for aligned party features.
    ///
    /// # Errors
    /// Shape mismatch between features and coefficients.
    pub fn predict(&self, features: &[DenseMatrix]) -> Result<DenseMatrix> {
        if features.len() != self.coefficients.len() {
            return Err(FederatedError::Misaligned(format!(
                "{} feature blocks for {} parties",
                features.len(),
                self.coefficients.len()
            )));
        }
        let rows = features.first().map_or(0, DenseMatrix::rows);
        let mut out = DenseMatrix::zeros(rows, 1);
        for (x, theta) in features.iter().zip(&self.coefficients) {
            out.add_assign(&x.matmul(theta)?)?;
        }
        Ok(out)
    }
}

/// Messages orchestrator → party.
enum ToParty {
    /// Compute `uₖ = Xₖθₖ` and reply according to the privacy mode.
    ComputePartial,
    /// (Secret sharing) shares routed to this party, one vector per peer.
    ReceiveShares(Vec<Vec<u64>>),
    /// Epoch-tagged residual broadcast; update local coefficients.
    /// Re-delivery of an already-applied epoch is acked but not
    /// re-applied (retry idempotence).
    ApplyResidual(usize, Vec<f64>),
    /// Training is over; surrender the local model.
    Finish,
}

/// Messages party → orchestrator.
enum FromParty {
    Partial(Vec<f64>),
    PartialCipher(Vec<Ciphertext>),
    /// `shares[peer][row]` — this party's share bundle for every peer.
    ShareBundle(Vec<Vec<u64>>),
    ShareSum(Vec<u64>),
    Ack,
    Theta(Vec<f64>),
}

struct PartyRuntime {
    features: DenseMatrix,
    theta: Vec<f64>,
    learning_rate: f64,
    l2: f64,
    n_parties: usize,
    privacy: PrivacyMode,
    fp: FixedPoint,
    paillier_pk: Option<amalur_crypto::PublicKey>,
    rng: rand::rngs::StdRng,
    /// Shares received from peers this round (summed locally).
    pending_share_sum: Option<Vec<u64>>,
    /// Last epoch whose residual was applied (retry dedup).
    last_applied_epoch: Option<usize>,
    inbox: Receiver<ToParty>,
    outbox: Sender<FromParty>,
}

impl PartyRuntime {
    fn run(mut self) -> Result<()> {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                ToParty::ComputePartial => self.compute_partial()?,
                ToParty::ReceiveShares(from_peers) => {
                    let mut sum = vec![0u64; self.features.rows()];
                    for v in from_peers {
                        let summed = additive::add_shares(&sum, &v)?;
                        sum = summed;
                    }
                    // Fold in own retained share.
                    if let Some(own) = self.pending_share_sum.take() {
                        sum = additive::add_shares(&sum, &own)?;
                    }
                    self.send(FromParty::ShareSum(sum))?;
                }
                ToParty::ApplyResidual(epoch, d) => {
                    if self.last_applied_epoch != Some(epoch) {
                        self.apply_residual(&d)?;
                        self.last_applied_epoch = Some(epoch);
                    }
                    self.send(FromParty::Ack)?;
                }
                ToParty::Finish => {
                    self.send(FromParty::Theta(self.theta.clone()))?;
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn partial(&self) -> Result<Vec<f64>> {
        Ok(self.features.matvec(&self.theta)?)
    }

    fn compute_partial(&mut self) -> Result<()> {
        let u = self.partial()?;
        match self.privacy {
            PrivacyMode::Plaintext => self.send(FromParty::Partial(u)),
            PrivacyMode::SecretShared => {
                // Split every entry into n shares; keep this party's own
                // share locally, emit the rest for routing.
                let mut bundles: Vec<Vec<u64>> = vec![Vec::with_capacity(u.len()); self.n_parties];
                for &v in &u {
                    let enc = self.fp.encode(v)?;
                    let shares = additive::share(enc, self.n_parties, &mut self.rng)?;
                    for (b, s) in bundles.iter_mut().zip(shares) {
                        b.push(s);
                    }
                }
                // Convention: the last bundle is retained locally.
                let own = bundles.pop().ok_or_else(|| {
                    FederatedError::Protocol("share split produced no bundles".into())
                })?;
                self.pending_share_sum = Some(own);
                self.send(FromParty::ShareBundle(bundles))
            }
            PrivacyMode::Paillier { .. } => {
                let pk = self
                    .paillier_pk
                    .as_ref()
                    .ok_or_else(|| FederatedError::Protocol("missing public key".into()))?;
                let cipher: Vec<Ciphertext> = u
                    .iter()
                    .map(|&v| pk.encrypt_f64(v, &mut self.rng))
                    .collect::<std::result::Result<_, _>>()?;
                self.send(FromParty::PartialCipher(cipher))
            }
        }
    }

    fn apply_residual(&mut self, d: &[f64]) -> Result<()> {
        // θₖ ← θₖ − α/n (Xₖᵀ d + λ θₖ)
        let n = self.features.rows() as f64;
        let resid = DenseMatrix::column_vector(d);
        let grad = self.features.transpose_matmul(&resid)?;
        for (t, g) in self.theta.iter_mut().zip(grad.as_slice()) {
            *t -= self.learning_rate / n * (g + self.l2 * *t);
        }
        Ok(())
    }

    fn send(&self, msg: FromParty) -> Result<()> {
        self.outbox
            .send(msg)
            .map_err(|_| FederatedError::Protocol("orchestrator hung up".into()))
    }
}

/// The bytes a reply occupies on the wire.
fn reply_wire_bytes(msg: &FromParty, paillier_modulus_bits: usize) -> usize {
    match msg {
        FromParty::Partial(v) => v.len() * 8,
        FromParty::ShareBundle(bundles) => bundles.iter().map(|b| b.len() * 8).sum(),
        FromParty::PartialCipher(c) => c.len() * paillier_modulus_bits / 4, // |n²| bits
        FromParty::ShareSum(v) => v.len() * 8,
        FromParty::Ack | FromParty::Theta(_) => 0,
    }
}

/// One request/response exchange with a party over the faulty wire:
/// retry with backoff under a virtual deadline, per-attempt accounting.
/// `Ok(None)` means the party never got a valid reply through in time.
///
/// The in-process channels are kept in sync by construction: a request
/// whose downlink fate is a drop is never actually sent (the party
/// never replies), and a reply whose uplink fate is a drop/corruption
/// is received and discarded before the retry re-sends the request.
#[allow(clippy::too_many_arguments)]
fn exchange<T: Transport>(
    transport: &mut T,
    comm: &mut CommStats,
    retry: &RetryPolicy,
    seed: u64,
    round: usize,
    party: usize,
    request_bytes: usize,
    send_request: &mut dyn FnMut() -> Result<()>,
    recv_reply: &mut dyn FnMut() -> Result<(FromParty, usize)>,
) -> Result<Option<FromParty>> {
    if !transport.available(party, round) {
        comm.crash_outages += 1;
        return Ok(None);
    }
    let rtt = transport.rtt_ms();
    let mut elapsed: u64 = 0;
    for attempt in 0..retry.max_attempts {
        if attempt > 0 {
            comm.retries += 1;
            elapsed += backoff_ms(
                retry.backoff_base_ms,
                retry.backoff_jitter,
                seed,
                round,
                party,
                attempt,
            );
        }
        if elapsed > retry.deadline_ms {
            break;
        }
        let down = MessageMeta {
            round,
            party,
            direction: Direction::Down,
            attempt,
            bytes: request_bytes,
        };
        comm.record_attempt(Direction::Down, request_bytes);
        match transport.fate(&down) {
            Fate::Dropped => {
                comm.drops += 1;
                elapsed += retry.attempt_timeout_ms;
                continue;
            }
            Fate::Corrupted { delay_ms } | Fate::Stale { delay_ms, .. } => {
                // The party discards the damaged request and stays silent.
                comm.corrupt_rejected += 1;
                if delay_ms > rtt {
                    comm.stragglers += 1;
                }
                elapsed += delay_ms.max(retry.attempt_timeout_ms);
                continue;
            }
            Fate::Delivered { delay_ms, copies } => {
                // Duplicate requests are accounted but processed once.
                comm.record_duplicates(Direction::Down, request_bytes, copies - 1);
                if delay_ms > rtt {
                    comm.stragglers += 1;
                }
                elapsed += delay_ms;
            }
        }
        if elapsed > retry.deadline_ms {
            break;
        }
        send_request()?;
        let (reply, reply_bytes) = recv_reply()?;
        let up = MessageMeta {
            round,
            party,
            direction: Direction::Up,
            attempt,
            bytes: reply_bytes,
        };
        comm.record_attempt(Direction::Up, reply_bytes);
        match transport.fate(&up) {
            Fate::Dropped => {
                comm.drops += 1;
                elapsed += retry.attempt_timeout_ms;
            }
            Fate::Corrupted { delay_ms } => {
                comm.corrupt_rejected += 1;
                if delay_ms > rtt {
                    comm.stragglers += 1;
                }
                elapsed += delay_ms.max(retry.attempt_timeout_ms);
            }
            Fate::Stale { delay_ms, .. } => {
                comm.stale_rejected += 1;
                if delay_ms > rtt {
                    comm.stragglers += 1;
                }
                elapsed += delay_ms.max(retry.attempt_timeout_ms);
            }
            Fate::Delivered { delay_ms, copies } => {
                comm.record_duplicates(Direction::Up, reply_bytes, copies - 1);
                if delay_ms > rtt {
                    comm.stragglers += 1;
                }
                elapsed += delay_ms;
                if elapsed > retry.deadline_ms {
                    break;
                }
                return Ok(Some(reply));
            }
        }
    }
    comm.timeouts += 1;
    Ok(None)
}

/// Trains vertical federated linear regression on a perfectly reliable
/// in-process network.
///
/// * `features` — one aligned feature matrix per party (equal row
///   counts; build them with [`crate::align::party_views`]).
/// * `y` — the label column (held by the label party, handed to the
///   orchestrator which acts as its delegate).
///
/// # Errors
/// * [`FederatedError::InvalidConfig`] for zero parties/epochs.
/// * [`FederatedError::Misaligned`] for inconsistent row counts.
pub fn train_vfl(
    features: &[DenseMatrix],
    y: &DenseMatrix,
    config: &VflConfig,
) -> Result<VflResult> {
    let mut transport = ReliableTransport;
    train_vfl_with_transport(features, y, config, &mut transport)
}

/// Trains vertical federated linear regression over the given
/// transport, retrying each per-epoch exchange under the configured
/// [`RetryPolicy`] (see the module docs).
///
/// # Errors
/// Validation errors as in [`train_vfl`], plus
/// [`FederatedError::QuorumLost`] when any party stays unreachable past
/// its retry budget — VFL needs every feature slice, so `needed` always
/// equals the party count.
pub fn train_vfl_with_transport<T: Transport>(
    features: &[DenseMatrix],
    y: &DenseMatrix,
    config: &VflConfig,
    transport: &mut T,
) -> Result<VflResult> {
    if features.is_empty() || config.epochs == 0 {
        return Err(FederatedError::InvalidConfig(
            "need at least one party and one epoch".into(),
        ));
    }
    if config.retry.max_attempts == 0 {
        return Err(FederatedError::InvalidConfig(
            "retry policy needs at least one attempt".into(),
        ));
    }
    let n = features[0].rows();
    if n == 0 {
        return Err(FederatedError::Misaligned(
            "no aligned rows (empty join intersection)".into(),
        ));
    }
    for (k, x) in features.iter().enumerate() {
        if x.rows() != n {
            return Err(FederatedError::Misaligned(format!(
                "party {k} has {} rows, expected {n}",
                x.rows()
            )));
        }
    }
    if y.rows() != n || y.cols() != 1 {
        return Err(FederatedError::Misaligned(format!(
            "labels are {}x{}, expected {n}x1",
            y.rows(),
            y.cols()
        )));
    }

    let n_parties = features.len();
    let mut seed_rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let keypair = match config.privacy {
        PrivacyMode::Paillier { key_bits } => Some(KeyPair::generate(key_bits, &mut seed_rng)?),
        _ => None,
    };
    let paillier_bits = keypair.as_ref().map_or(0, |kp| kp.public.modulus_bits());
    let fp = FixedPoint::default();

    let mut to_party: Vec<Sender<ToParty>> = Vec::with_capacity(n_parties);
    let mut inboxes: Vec<Receiver<ToParty>> = Vec::with_capacity(n_parties);
    // Every exchange is strict request/reply, so each per-party channel
    // holds at most one in-flight message; a party-count capacity keeps
    // the wires bounded (backpressure instead of silent buffering) with
    // ample headroom.
    let channel_capacity = n_parties.max(1);
    let (from_tx, from_rx_template): (Vec<Sender<FromParty>>, Vec<Receiver<FromParty>>) =
        (0..n_parties).map(|_| bounded(channel_capacity)).unzip();
    for _ in 0..n_parties {
        let (tx, rx) = bounded(channel_capacity);
        to_party.push(tx);
        inboxes.push(rx);
    }

    let mut loss_history = Vec::with_capacity(config.epochs);
    let mut comm = CommStats::default();
    let mut coefficients: Vec<DenseMatrix> = Vec::new();

    std::thread::scope(|scope| -> Result<()> {
        // Own the senders inside the scope: any early return (e.g.
        // QuorumLost) drops them, disconnecting the party inboxes so
        // the scope can join the threads instead of deadlocking.
        let to_party = to_party;
        // Spawn parties.
        let mut handles = Vec::with_capacity(n_parties);
        for (k, x) in features.iter().enumerate() {
            let runtime = PartyRuntime {
                features: x.clone(),
                theta: vec![0.0; x.cols()],
                learning_rate: config.learning_rate,
                l2: config.l2,
                n_parties,
                privacy: config.privacy,
                fp,
                paillier_pk: keypair.as_ref().map(|kp| kp.public.clone()),
                rng: rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(k as u64 + 1)),
                pending_share_sum: None,
                last_applied_epoch: None,
                inbox: inboxes[k].clone(),
                outbox: from_tx[k].clone(),
            };
            handles.push(scope.spawn(move || runtime.run()));
        }
        let from_rx = from_rx_template;

        let recv = |k: usize| -> Result<FromParty> {
            from_rx[k]
                .recv()
                .map_err(|_| FederatedError::Protocol(format!("party {k} hung up")))
        };
        let send = |k: usize, msg: ToParty| -> Result<()> {
            to_party[k]
                .send(msg)
                .map_err(|_| FederatedError::Protocol(format!("party {k} hung up")))
        };

        for epoch in 0..config.epochs {
            // Phase 1: collect partial predictions, one fault-aware
            // exchange per party. The fate rounds interleave the two
            // phases (`2·epoch`, `2·epoch + 1`) so their fault draws
            // are independent.
            let mut replies: Vec<FromParty> = Vec::with_capacity(n_parties);
            for k in 0..n_parties {
                let got = exchange(
                    transport,
                    &mut comm,
                    &config.retry,
                    config.seed,
                    2 * epoch,
                    k,
                    0,
                    &mut || send(k, ToParty::ComputePartial),
                    &mut || {
                        let msg = recv(k)?;
                        let bytes = reply_wire_bytes(&msg, paillier_bits);
                        Ok((msg, bytes))
                    },
                )?;
                match got {
                    Some(msg) => replies.push(msg),
                    None => {
                        return Err(FederatedError::QuorumLost {
                            round: epoch,
                            responded: replies.len(),
                            needed: n_parties,
                        })
                    }
                }
            }

            // Aggregate u = Σ uₖ under the privacy mode.
            let u: Vec<f64> = match config.privacy {
                PrivacyMode::Plaintext => {
                    let mut acc = vec![0.0; n];
                    for msg in replies {
                        match msg {
                            FromParty::Partial(v) => {
                                for (a, b) in acc.iter_mut().zip(v) {
                                    *a += b;
                                }
                            }
                            _ => return Err(FederatedError::Protocol("expected Partial".into())),
                        }
                    }
                    acc
                }
                PrivacyMode::SecretShared => {
                    // Route bundles: bundle[k][peer] destined to `peer`
                    // (peers indexed over the n−1 others in party order).
                    let started = Instant::now();
                    let mut routed: Vec<Vec<Vec<u64>>> = vec![Vec::new(); n_parties];
                    for (k, msg) in replies.into_iter().enumerate() {
                        match msg {
                            FromParty::ShareBundle(bundles) => {
                                let mut peer_iter = (0..n_parties).filter(|&p| p != k);
                                for b in bundles {
                                    let p = peer_iter.next().ok_or_else(|| {
                                        FederatedError::Protocol(format!(
                                            "party {k} sent more than {} share bundles",
                                            n_parties - 1
                                        ))
                                    })?;
                                    routed[p].push(b);
                                }
                            }
                            _ => {
                                return Err(FederatedError::Protocol("expected ShareBundle".into()))
                            }
                        }
                    }
                    for (p, tx) in to_party.iter().enumerate() {
                        let payload = std::mem::take(&mut routed[p]);
                        comm.bytes_down += payload.iter().map(|v| v.len() * 8).sum::<usize>();
                        comm.messages += 1;
                        tx.send(ToParty::ReceiveShares(payload))
                            .map_err(|_| FederatedError::Protocol("party hung up".into()))?;
                    }
                    let mut acc = vec![0u64; n];
                    for k in 0..n_parties {
                        match recv(k)? {
                            FromParty::ShareSum(v) => {
                                comm.bytes_up += v.len() * 8;
                                comm.messages += 1;
                                let summed = additive::add_shares(&acc, &v)?;
                                acc = summed;
                            }
                            _ => return Err(FederatedError::Protocol("expected ShareSum".into())),
                        }
                    }
                    let out = acc.iter().map(|&v| fp.decode(v)).collect();
                    comm.crypto_time += started.elapsed();
                    out
                }
                PrivacyMode::Paillier { .. } => {
                    let started = Instant::now();
                    let kp = keypair
                        .as_ref()
                        .ok_or_else(|| FederatedError::Protocol("missing keypair".into()))?;
                    let mut acc: Option<Vec<Ciphertext>> = None;
                    for msg in replies {
                        match msg {
                            FromParty::PartialCipher(c) => {
                                acc = Some(match acc {
                                    None => c,
                                    Some(prev) => prev
                                        .iter()
                                        .zip(c.iter())
                                        .map(|(a, b)| kp.public.add(a, b))
                                        .collect::<std::result::Result<_, _>>()?,
                                });
                            }
                            _ => {
                                return Err(FederatedError::Protocol(
                                    "expected PartialCipher".into(),
                                ))
                            }
                        }
                    }
                    let cipher_sum = acc.ok_or_else(|| {
                        FederatedError::Protocol("no partial ciphertexts received".into())
                    })?;
                    let out: Vec<f64> = cipher_sum
                        .iter()
                        .map(|c| kp.private.decrypt_f64(c))
                        .collect::<std::result::Result<_, _>>()?;
                    comm.crypto_time += started.elapsed();
                    out
                }
            };

            // Label holder (delegated): residual and loss.
            let residual: Vec<f64> = u
                .iter()
                .zip(y.as_slice())
                .map(|(&ui, &yi)| ui - yi)
                .collect();
            let loss = residual.iter().map(|d| d * d).sum::<f64>() / (2.0 * n as f64);
            loss_history.push(loss);

            // Phase 2: broadcast the epoch-tagged residual and collect
            // acks, again one fault-aware exchange per party.
            let residual_bytes = residual.len() * 8;
            for k in 0..n_parties {
                let got = exchange(
                    transport,
                    &mut comm,
                    &config.retry,
                    config.seed,
                    2 * epoch + 1,
                    k,
                    residual_bytes,
                    &mut || send(k, ToParty::ApplyResidual(epoch, residual.clone())),
                    &mut || Ok((recv(k)?, 0)),
                )?;
                match got {
                    Some(FromParty::Ack) => {}
                    Some(_) => return Err(FederatedError::Protocol("expected Ack".into())),
                    None => {
                        return Err(FederatedError::QuorumLost {
                            round: epoch,
                            responded: k,
                            needed: n_parties,
                        })
                    }
                }
            }
        }

        // Collect models (reliable teardown).
        for tx in &to_party {
            tx.send(ToParty::Finish)
                .map_err(|_| FederatedError::Protocol("party hung up".into()))?;
        }
        for k in 0..n_parties {
            match recv(k)? {
                FromParty::Theta(t) => {
                    coefficients.push(DenseMatrix::column_vector(&t));
                }
                _ => return Err(FederatedError::Protocol("expected Theta".into())),
            }
        }
        for h in handles {
            h.join()
                .map_err(|_| FederatedError::Protocol("party panicked".into()))??;
        }
        Ok(())
    })?;

    Ok(VflResult {
        coefficients,
        loss_history,
        comm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{CrashWindow, FaultPlan, FaultyTransport};
    use rand::Rng;

    /// Two-party aligned features with a planted linear target.
    fn setup(n: usize, seed: u64) -> (Vec<DenseMatrix>, DenseMatrix, DenseMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xa = DenseMatrix::random_uniform(n, 2, -1.0, 1.0, &mut rng);
        let xb = DenseMatrix::random_uniform(n, 3, -1.0, 1.0, &mut rng);
        let theta_true = [1.5, -2.0, 0.5, 1.0, -0.75];
        let y: Vec<f64> = (0..n)
            .map(|i| {
                xa.get(i, 0) * theta_true[0]
                    + xa.get(i, 1) * theta_true[1]
                    + xb.get(i, 0) * theta_true[2]
                    + xb.get(i, 1) * theta_true[3]
                    + xb.get(i, 2) * theta_true[4]
                    + rng.gen_range(-0.01..0.01)
            })
            .collect();
        let concat = xa.hstack(&xb).unwrap();
        (vec![xa, xb], DenseMatrix::column_vector(&y), concat)
    }

    /// Reference: centralized GD with the identical update rule.
    fn centralized(x: &DenseMatrix, y: &DenseMatrix, epochs: usize, lr: f64) -> DenseMatrix {
        let n = x.rows() as f64;
        let mut theta = DenseMatrix::zeros(x.cols(), 1);
        for _ in 0..epochs {
            let resid = x.matmul(&theta).unwrap().sub(y).unwrap();
            let grad = x.transpose_matmul(&resid).unwrap();
            theta.axpy_assign(-lr / n, &grad).unwrap();
        }
        theta
    }

    #[test]
    fn plaintext_vfl_equals_centralized_gd() {
        let (features, y, concat) = setup(120, 1);
        let config = VflConfig {
            epochs: 60,
            learning_rate: 0.3,
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let reference = centralized(&concat, &y, 60, 0.3);
        let federated = result.coefficients[0]
            .clone()
            .vstack(&result.coefficients[1])
            .unwrap();
        assert!(
            federated.approx_eq(&reference, 1e-9),
            "max diff {:?}",
            federated.max_abs_diff(&reference)
        );
        assert!(result.loss_history.first().unwrap() > result.loss_history.last().unwrap());
    }

    #[test]
    fn secret_shared_vfl_matches_within_fixed_point() {
        let (features, y, concat) = setup(60, 2);
        let config = VflConfig {
            epochs: 30,
            learning_rate: 0.3,
            privacy: PrivacyMode::SecretShared,
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let reference = centralized(&concat, &y, 30, 0.3);
        let federated = result.coefficients[0]
            .clone()
            .vstack(&result.coefficients[1])
            .unwrap();
        assert!(
            federated.approx_eq(&reference, 1e-3),
            "max diff {:?}",
            federated.max_abs_diff(&reference)
        );
        assert!(result.comm.crypto_time > std::time::Duration::ZERO);
        // Secret sharing costs extra traffic vs plaintext.
        let plain = train_vfl(
            &features,
            &y,
            &VflConfig {
                epochs: 30,
                learning_rate: 0.3,
                ..VflConfig::default()
            },
        )
        .unwrap();
        assert!(result.comm.total_bytes() > plain.comm.total_bytes());
    }

    #[test]
    fn paillier_vfl_matches_within_fixed_point() {
        let (features, y, concat) = setup(30, 3);
        let config = VflConfig {
            epochs: 10,
            learning_rate: 0.3,
            privacy: PrivacyMode::Paillier { key_bits: 128 },
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let reference = centralized(&concat, &y, 10, 0.3);
        let federated = result.coefficients[0]
            .clone()
            .vstack(&result.coefficients[1])
            .unwrap();
        assert!(
            federated.approx_eq(&reference, 1e-3),
            "max diff {:?}",
            federated.max_abs_diff(&reference)
        );
        assert!(result.comm.crypto_time > std::time::Duration::ZERO);
    }

    #[test]
    fn predict_combines_parties() {
        let (features, y, _) = setup(80, 4);
        let config = VflConfig {
            epochs: 200,
            learning_rate: 0.5,
            ..VflConfig::default()
        };
        let result = train_vfl(&features, &y, &config).unwrap();
        let pred = result.predict(&features).unwrap();
        let mse = pred
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.rows() as f64;
        assert!(mse < 0.05, "mse {mse}");
        assert!(result.predict(&features[..1]).is_err());
    }

    #[test]
    fn validation_errors() {
        let (features, y, _) = setup(10, 5);
        assert!(train_vfl(&[], &y, &VflConfig::default()).is_err());
        let zero_epochs = VflConfig {
            epochs: 0,
            ..VflConfig::default()
        };
        assert!(train_vfl(&features, &y, &zero_epochs).is_err());
        let short_y = DenseMatrix::zeros(5, 1);
        assert!(train_vfl(&features, &short_y, &VflConfig::default()).is_err());
        let mut bad = features.clone();
        bad[1] = DenseMatrix::zeros(7, 3);
        assert!(train_vfl(&bad, &y, &VflConfig::default()).is_err());
        let no_retries = VflConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..VflConfig::default()
        };
        assert!(matches!(
            train_vfl(&features, &y, &no_retries),
            Err(FederatedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn three_party_training_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let parts: Vec<DenseMatrix> = (0..3)
            .map(|_| DenseMatrix::random_uniform(50, 2, -1.0, 1.0, &mut rng))
            .collect();
        let y = DenseMatrix::column_vector(
            &(0..50)
                .map(|i| parts[0].get(i, 0) + parts[1].get(i, 1) - parts[2].get(i, 0))
                .collect::<Vec<_>>(),
        );
        for privacy in [PrivacyMode::Plaintext, PrivacyMode::SecretShared] {
            let config = VflConfig {
                epochs: 40,
                learning_rate: 0.4,
                privacy,
                ..VflConfig::default()
            };
            let result = train_vfl(&parts, &y, &config).unwrap();
            assert_eq!(result.coefficients.len(), 3);
            assert!(
                result.loss_history.last().unwrap() < &0.2,
                "{privacy}: loss {:?}",
                result.loss_history.last()
            );
        }
    }

    /// Plaintext partials are recomputed deterministically, so a lossy
    /// run that survives its retries lands on the *same* model as the
    /// reliable run — it only pays retries and retransmitted bytes.
    #[test]
    fn faulty_transport_converges_to_reliable_model() {
        let (features, y, _) = setup(60, 7);
        let config = VflConfig {
            epochs: 25,
            learning_rate: 0.3,
            // VFL has no partial quorum, so give the exchanges enough
            // retry budget to ride out a 20% drop rate.
            retry: RetryPolicy {
                max_attempts: 10,
                deadline_ms: 20_000,
                ..RetryPolicy::default()
            },
            ..VflConfig::default()
        };
        let clean = train_vfl(&features, &y, &config).unwrap();
        let mut lossy = FaultyTransport::new(FaultPlan::grid(11, 0.2, 0.1)).unwrap();
        let faulty = train_vfl_with_transport(&features, &y, &config, &mut lossy).unwrap();
        for (a, b) in clean.coefficients.iter().zip(&faulty.coefficients) {
            assert_eq!(a.as_slice(), b.as_slice(), "trajectories diverged");
        }
        assert!(faulty.comm.retries > 0, "no retries under 20% drop");
        assert!(faulty.comm.drops > 0);
        assert!(faulty.comm.total_bytes() > clean.comm.total_bytes());
        assert_eq!(clean.comm.fault_events(), 0);
    }

    /// A permanently crashed party fails the run fast — VFL has no
    /// partial quorum because every feature slice is irreplaceable.
    #[test]
    fn crashed_party_is_quorum_lost_not_a_hang() {
        let (features, y, _) = setup(30, 8);
        let config = VflConfig {
            epochs: 10,
            learning_rate: 0.3,
            ..VflConfig::default()
        };
        let plan = FaultPlan {
            crashes: vec![CrashWindow::permanent(1, 0)],
            ..FaultPlan::reliable(3)
        };
        let mut transport = FaultyTransport::new(plan).unwrap();
        match train_vfl_with_transport(&features, &y, &config, &mut transport) {
            Err(FederatedError::QuorumLost {
                round,
                responded,
                needed,
            }) => {
                assert_eq!(round, 0);
                assert_eq!(responded, 1);
                assert_eq!(needed, 2);
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }
}
