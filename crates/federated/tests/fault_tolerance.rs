//! End-to-end fault-tolerance guarantees of the FedAvg orchestrator:
//! convergence under the ISSUE's drop/straggler grid, fail-fast quorum
//! loss, bit-identical checkpoint/resume across a simulated kill, crash
//! windows with recovery, and transport injectability from outside the
//! crate.

use amalur_federated::faults::CrashWindow;
use amalur_federated::hfl::{train_fedavg_with_transport, FedAvgOrchestrator, PartySamples};
use amalur_federated::transport::{Direction, Fate, MessageMeta, Transport, DEFAULT_RTT_MS};
use amalur_federated::{Checkpoint, FaultPlan, FaultyTransport, FederatedError, HflConfig};
use amalur_matrix::DenseMatrix;
use rand::{Rng, SeedableRng};

/// Splits a common linear dataset across `k` equally sized silos.
fn silos(k: usize, rows_each: usize, seed: u64) -> Vec<PartySamples> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let truth = [2.0, -1.0, 0.5];
    (0..k)
        .map(|i| {
            let x = DenseMatrix::random_uniform(rows_each, 3, -1.0, 1.0, &mut rng);
            let y: Vec<f64> = (0..rows_each)
                .map(|r| {
                    (0..3).map(|c| x.get(r, c) * truth[c]).sum::<f64>() + rng.gen_range(-0.01..0.01)
                })
                .collect();
            PartySamples {
                name: format!("silo{i}"),
                x,
                y: DenseMatrix::column_vector(&y),
            }
        })
        .collect()
}

fn bits(m: &DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// The ISSUE's acceptance grid: seeded 20% drops + 10% stragglers with
/// a 2/3 quorum still converges within 1% of the fault-free loss —
/// deterministically, since the whole schedule hangs off the plan seed.
#[test]
fn lossy_grid_converges_within_one_percent_of_fault_free() {
    let parties = silos(3, 30, 1);
    let config = HflConfig {
        rounds: 200,
        learning_rate: 0.3,
        ..HflConfig::default()
    };
    let mut reliable = FaultyTransport::new(FaultPlan::reliable(9)).unwrap();
    let clean = train_fedavg_with_transport(&parties, &config, &mut reliable).unwrap();
    let mut lossy = FaultyTransport::new(FaultPlan::grid(9, 0.2, 0.1)).unwrap();
    let faulty = train_fedavg_with_transport(&parties, &config, &mut lossy).unwrap();

    let clean_loss = *clean.loss_history.last().unwrap();
    let faulty_loss = *faulty.loss_history.last().unwrap();
    assert!(
        faulty_loss <= clean_loss * 1.01,
        "faulty final loss {faulty_loss} not within 1% of fault-free {clean_loss}"
    );
    // The run actually went through the fault machinery.
    assert!(faulty.comm.drops > 0, "no drops at 20% drop rate");
    assert!(faulty.comm.retries > 0);
    assert!(faulty.comm.stragglers > 0, "no stragglers at 10% rate");
    assert!(faulty.comm.total_bytes() > clean.comm.total_bytes());
    // And reruns of the same plan are bit-identical.
    let mut again = FaultyTransport::new(FaultPlan::grid(9, 0.2, 0.1)).unwrap();
    let rerun = train_fedavg_with_transport(&parties, &config, &mut again).unwrap();
    assert_eq!(bits(&faulty.global), bits(&rerun.global));
    assert_eq!(faulty.comm, rerun.comm);
}

/// When quorum is unreachable the orchestrator degrades for `patience`
/// rounds and then returns a typed error — it must never hang or panic.
#[test]
fn unreachable_quorum_fails_fast_with_quorum_lost() {
    let parties = silos(3, 10, 2);
    let config = HflConfig {
        rounds: 50,
        ..HflConfig::default()
    };
    let black_hole = FaultPlan {
        drop_prob: 1.0,
        ..FaultPlan::reliable(4)
    };
    let mut transport = FaultyTransport::new(black_hole).unwrap();
    match train_fedavg_with_transport(&parties, &config, &mut transport) {
        Err(FederatedError::QuorumLost {
            round,
            responded,
            needed,
        }) => {
            // Default patience is 3: rounds 0..=2 are tolerated misses,
            // round 3 is one too many.
            assert_eq!(round, 3);
            assert_eq!(responded, 0);
            assert_eq!(needed, 2);
        }
        other => panic!("expected QuorumLost, got {other:?}"),
    }
}

/// Kill the orchestrator at round 15, serialize the checkpoint to JSON,
/// "restart" by parsing it back, and finish on a fresh transport with
/// the same plan. The final model, loss history, and accounting must be
/// bit-identical to the uninterrupted 40-round run — even with DP noise
/// in the loop, thanks to the RNG cursor in the checkpoint.
#[test]
fn killed_and_resumed_run_is_bit_identical() {
    let parties = silos(3, 20, 3);
    let config = HflConfig {
        rounds: 40,
        learning_rate: 0.2,
        dp: Some((0.01, 1.0)),
        ..HflConfig::default()
    };
    let plan = FaultPlan {
        duplicate_prob: 0.05,
        corrupt_prob: 0.05,
        stale_prob: 0.05,
        ..FaultPlan::grid(13, 0.15, 0.1)
    };

    let mut t_full = FaultyTransport::new(plan.clone()).unwrap();
    let full = train_fedavg_with_transport(&parties, &config, &mut t_full).unwrap();

    // First incarnation: run 15 rounds, checkpoint, die.
    let json = {
        let mut t = FaultyTransport::new(plan.clone()).unwrap();
        let mut orch = FedAvgOrchestrator::new(&parties, &config, &mut t).unwrap();
        while orch.round() < 15 {
            orch.step().unwrap();
        }
        orch.checkpoint().to_json().unwrap()
    };

    // Second incarnation: parse, resume, finish.
    let ck = Checkpoint::from_json(&json).unwrap();
    assert_eq!(ck.round, 15);
    let mut t = FaultyTransport::new(plan).unwrap();
    let mut orch = FedAvgOrchestrator::resume(&parties, &config, &mut t, &ck).unwrap();
    while !orch.is_done() {
        orch.step().unwrap();
    }
    let resumed = orch.finish();

    assert_eq!(bits(&full.global), bits(&resumed.global), "model diverged");
    assert_eq!(
        full.loss_history
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        resumed
            .loss_history
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "loss history diverged"
    );
    assert_eq!(full.comm, resumed.comm, "accounting diverged");
}

/// A checkpoint from a different run shape is rejected, not misapplied.
#[test]
fn resume_rejects_mismatched_checkpoint() {
    let parties = silos(2, 10, 4);
    let config = HflConfig::default();
    let mut t = FaultyTransport::new(FaultPlan::reliable(0)).unwrap();
    let orch = FedAvgOrchestrator::new(&parties, &config, &mut t).unwrap();
    let mut ck = orch.checkpoint();
    ck.global = vec![0.0; 7]; // wrong dimensionality
    drop(orch);
    let mut t2 = FaultyTransport::new(FaultPlan::reliable(0)).unwrap();
    assert!(matches!(
        FedAvgOrchestrator::resume(&parties, &config, &mut t2, &ck),
        Err(FederatedError::Checkpoint(_))
    ));
}

/// A party that crashes mid-training degrades the affected rounds and
/// rejoins afterwards; training still converges.
#[test]
fn crash_window_degrades_then_recovers() {
    let parties = silos(3, 25, 5);
    let config = HflConfig {
        rounds: 40,
        learning_rate: 0.2,
        ..HflConfig::default()
    };
    let plan = FaultPlan {
        crashes: vec![CrashWindow {
            party: 2,
            from_round: 5,
            until_round: 10,
        }],
        ..FaultPlan::reliable(6)
    };
    let mut transport = FaultyTransport::new(plan).unwrap();
    let result = train_fedavg_with_transport(&parties, &config, &mut transport).unwrap();
    assert_eq!(result.comm.crash_outages, 5, "rounds 5..10 are outages");
    assert_eq!(result.comm.rounds_degraded, 5);
    assert_eq!(result.comm.rounds_skipped, 0, "2 of 3 still meets quorum");
    let final_loss = result.loss_history.last().unwrap();
    assert!(*final_loss < 0.01, "did not converge: {final_loss}");
}

/// The transport is injectable from outside the crate: a test-scripted
/// implementation can target one exact message flow.
struct ScriptedTransport;

impl Transport for ScriptedTransport {
    fn fate(&mut self, meta: &MessageMeta) -> Fate {
        // Black-hole party 0's uplink for all of round 2, deliver
        // everything else instantly.
        if meta.round == 2 && meta.party == 0 && meta.direction == Direction::Up {
            Fate::Dropped
        } else {
            Fate::Delivered {
                delay_ms: DEFAULT_RTT_MS,
                copies: 1,
            }
        }
    }
}

#[test]
fn scripted_transport_targets_one_party_round() {
    let parties = silos(3, 15, 7);
    let config = HflConfig {
        rounds: 6,
        ..HflConfig::default()
    };
    let mut scripted = ScriptedTransport;
    let result = train_fedavg_with_transport(&parties, &config, &mut scripted).unwrap();
    // Party 0, round 2: every one of the 4 attempts is dropped on the
    // way up, so the party times out and exactly that round degrades.
    assert_eq!(result.comm.drops, 4);
    assert_eq!(result.comm.retries, 3);
    assert_eq!(result.comm.timeouts, 1);
    assert_eq!(result.comm.rounds_degraded, 1);
    assert_eq!(result.comm.rounds_skipped, 0);
    assert_eq!(result.comm.stale_rejected, 0);
}
