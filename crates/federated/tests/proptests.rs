//! Property tests for the determinism contract of the fault model:
//! a training trajectory is a pure function of (data, config, plan),
//! and a zero-fault plan is observationally identical to the reliable
//! transport.

use amalur_federated::hfl::{train_fedavg, train_fedavg_with_transport, PartySamples};
use amalur_federated::{FaultPlan, FaultyTransport, HflConfig};
use amalur_matrix::DenseMatrix;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn silos(k: usize, rows_each: usize, seed: u64) -> Vec<PartySamples> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let truth = [1.0, -2.0, 0.5];
    (0..k)
        .map(|i| {
            let x = DenseMatrix::random_uniform(rows_each, 3, -1.0, 1.0, &mut rng);
            let y: Vec<f64> = (0..rows_each)
                .map(|r| {
                    (0..3).map(|c| x.get(r, c) * truth[c]).sum::<f64>() + rng.gen_range(-0.1..0.1)
                })
                .collect();
            PartySamples {
                name: format!("p{i}"),
                x,
                y: DenseMatrix::column_vector(&y),
            }
        })
        .collect()
}

fn bits(m: &DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed + same `FaultPlan` ⇒ bit-identical trajectory: model,
    /// loss history and every accounting counter — with DP noise and
    /// the full fault palette in play.
    #[test]
    fn same_plan_same_trajectory(
        data_seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        drop in 0.0f64..0.3,
        straggler in 0.0f64..0.3,
        dup in 0.0f64..0.2,
    ) {
        let parties = silos(3, 10, data_seed);
        let config = HflConfig {
            rounds: 6,
            learning_rate: 0.2,
            dp: Some((0.01, 1.0)),
            ..HflConfig::default()
        };
        let plan = FaultPlan {
            duplicate_prob: dup,
            corrupt_prob: 0.05,
            stale_prob: 0.05,
            ..FaultPlan::grid(plan_seed, drop, straggler)
        };
        let run = || {
            let mut t = FaultyTransport::new(plan.clone()).unwrap();
            train_fedavg_with_transport(&parties, &config, &mut t)
        };
        // The determinism contract covers failures too: a plan harsh
        // enough to lose quorum must lose it identically every time.
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(bits(&a.global), bits(&b.global));
                let la: Vec<u64> = a.loss_history.iter().map(|x| x.to_bits()).collect();
                let lb: Vec<u64> = b.loss_history.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(la, lb);
                prop_assert_eq!(a.comm, b.comm);
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "one run failed, one succeeded: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// A `FaultyTransport` with an all-zero plan is *exactly* the
    /// reliable transport: same model bits, same losses, same byte and
    /// message counts, zero fault events.
    #[test]
    fn zero_fault_plan_equals_reliable_exactly(
        data_seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        rounds in 1usize..10,
    ) {
        let parties = silos(2, 12, data_seed);
        let config = HflConfig {
            rounds,
            learning_rate: 0.15,
            dp: Some((0.01, 1.0)),
            ..HflConfig::default()
        };
        let reliable = train_fedavg(&parties, &config).unwrap();
        let mut zero = FaultyTransport::new(FaultPlan::reliable(plan_seed)).unwrap();
        let faulty = train_fedavg_with_transport(&parties, &config, &mut zero).unwrap();
        prop_assert_eq!(bits(&reliable.global), bits(&faulty.global));
        let lr: Vec<u64> = reliable.loss_history.iter().map(|x| x.to_bits()).collect();
        let lf: Vec<u64> = faulty.loss_history.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(lr, lf);
        prop_assert_eq!(reliable.comm, faulty.comm);
        prop_assert_eq!(faulty.comm.fault_events(), 0);
    }
}
