//! The regression corpus: shrunk failing scenarios, pinned forever.
//!
//! Workflow (documented in ROADMAP.md):
//!
//! 1. A sweep or property test observes a factorized-vs-materialized
//!    divergence and [`shrink`](crate::shrink)s it; the failure message
//!    contains the minimal spec as one line of JSON.
//! 2. That JSON is appended — with a note naming the bug — to
//!    `crates/gen/corpus/regressions.json` and committed together with
//!    the fix.
//! 3. Every subsequent sweep, `cargo test`, and CI `scenario_sweep
//!    --quick` run replays the whole corpus first, so a fixed bug can
//!    never silently return.
//!
//! Entries are *specs*, not matrices: a few lines of JSON regenerate
//! the exact scenario bit-for-bit (generation is a pure function of
//! the spec).

use crate::diff::{check_scenario, Workload};
use crate::spec::ScenarioSpec;
use serde::{get_field, DeError, Deserialize, Serialize, Value};

/// One pinned scenario: the shrunk spec plus why it is here.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// What this entry regression-tests (bug reference, one line).
    pub note: String,
    /// The shrunk scenario spec.
    pub spec: ScenarioSpec,
}

impl Serialize for CorpusEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("note".to_owned(), Value::Str(self.note.clone())),
            ("spec".to_owned(), self.spec.to_value()),
        ])
    }
}

impl Deserialize for CorpusEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            note: get_field(v, "note")?,
            spec: get_field(v, "spec")?,
        })
    }
}

/// A set of pinned regression scenarios.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Corpus {
    /// The pinned entries, replayed in order.
    pub entries: Vec<CorpusEntry>,
}

impl Serialize for Corpus {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema".to_owned(),
                Value::Str("amalur-regression-corpus/v1".to_owned()),
            ),
            (
                "entries".to_owned(),
                Value::Array(self.entries.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl Deserialize for Corpus {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema: String = get_field(v, "schema")?;
        if schema != "amalur-regression-corpus/v1" {
            return Err(DeError(format!("unknown corpus schema `{schema}`")));
        }
        match v.get("entries") {
            Some(Value::Array(items)) => Ok(Self {
                entries: items
                    .iter()
                    .map(CorpusEntry::from_value)
                    .collect::<Result<_, _>>()?,
            }),
            _ => Err(DeError("missing `entries` array".to_owned())),
        }
    }
}

/// The checked-in corpus text, embedded so every consumer (tests, the
/// sweep bin, downstream crates) replays the same pinned set without
/// path gymnastics.
pub const BUILTIN_CORPUS_JSON: &str = include_str!("../corpus/regressions.json");

impl Corpus {
    /// Parses the checked-in regression corpus.
    ///
    /// # Panics
    /// When `corpus/regressions.json` does not parse — a broken corpus
    /// is a build error, not a runtime condition.
    pub fn builtin() -> Self {
        serde_json::from_str(BUILTIN_CORPUS_JSON).expect("corpus/regressions.json must parse")
    }

    /// Parses a corpus from JSON text.
    ///
    /// # Errors
    /// Returns the parse/validation error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Replays every entry through the differential harness, returning
    /// one `(entry, message)` per violation (empty = corpus green).
    pub fn replay(&self, workloads: &[Workload]) -> Vec<(CorpusEntry, String)> {
        let mut violations = Vec::new();
        for entry in &self.entries {
            match check_scenario(&entry.spec, workloads) {
                Ok(divergences) if divergences.is_empty() => {}
                Ok(divergences) => {
                    let details: Vec<String> =
                        divergences.iter().map(ToString::to_string).collect();
                    violations.push((entry.clone(), details.join("; ")));
                }
                Err(e) => violations.push((entry.clone(), format!("infrastructure: {e}"))),
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Topology;

    #[test]
    fn builtin_corpus_parses_and_is_nonempty() {
        let corpus = Corpus::builtin();
        assert!(
            corpus.entries.len() >= 6,
            "corpus should pin at least the original shrunk set, got {}",
            corpus.entries.len()
        );
        // Every topology family stays pinned.
        for kind in ["star", "snowflake", "chain", "m:n"] {
            assert!(
                corpus
                    .entries
                    .iter()
                    .any(|e| e.spec.topology.kind() == kind),
                "no corpus entry for {kind}"
            );
        }
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let corpus = Corpus {
            entries: vec![CorpusEntry {
                note: "example".to_owned(),
                spec: ScenarioSpec {
                    topology: Topology::Chain { hops: 2 },
                    sparse_mask: 1,
                    density: 0.5,
                    ..ScenarioSpec::default()
                },
            }],
        };
        let text = serde_json::to_string_pretty(&corpus).unwrap();
        assert_eq!(Corpus::from_json(&text).unwrap(), corpus);
    }

    #[test]
    fn bad_schema_is_rejected() {
        assert!(Corpus::from_json(r#"{"schema":"nope/v9","entries":[]}"#).is_err());
    }

    #[test]
    fn builtin_corpus_replays_green() {
        let violations = Corpus::builtin().replay(&crate::ALL_WORKLOADS);
        assert!(
            violations.is_empty(),
            "{}",
            violations
                .iter()
                .map(|(e, m)| format!("[{}] {m}", e.note))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
