//! The differential harness: factorized vs materialized, per workload.
//!
//! The paper's §IV guarantee — "factorized learning does not affect
//! model training accuracy" — holds *exactly* in real arithmetic; in
//! floating point the two paths differ only by summation order. So for
//! every generated scenario we train each ML workload twice, once on
//! the [`FactorizedTable`] and once on its materialization, and demand
//! agreement within a tolerance derived from the rounding model (see
//! [`equivalence_tolerance`]) rather than a magic constant.

use crate::spec::ScenarioSpec;
use amalur_factorize::FactorizedTable;
use amalur_matrix::DenseMatrix;
use amalur_ml::{
    Gnmf, GnmfConfig, KMeans, KMeansConfig, LinRegConfig, LinearRegression, LogRegConfig,
    LogisticRegression,
};

/// The ML workloads the harness trains on every scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Gradient-descent linear regression.
    LinReg,
    /// Gradient-descent logistic regression.
    LogReg,
    /// Lloyd's K-Means.
    KMeans,
    /// Gaussian NMF (multiplicative updates).
    Gnmf,
}

/// All four workloads, in deterministic order.
pub const ALL_WORKLOADS: [Workload; 4] = [
    Workload::LinReg,
    Workload::LogReg,
    Workload::KMeans,
    Workload::Gnmf,
];

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Workload::LinReg => "linreg",
            Workload::LogReg => "logreg",
            Workload::KMeans => "kmeans",
            Workload::Gnmf => "gnmf",
        })
    }
}

/// One observed factorized-vs-materialized disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Workload that disagreed.
    pub workload: Workload,
    /// Human-readable description of what differed and by how much.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.workload, self.detail)
    }
}

/// Training iterations used by the harness — small on purpose: the
/// equivalence property is per-update, so a handful of updates over
/// hundreds of scenarios beats many updates over a few.
const EPOCHS: usize = 6;

/// Relative tolerance for factorized-vs-materialized agreement.
///
/// Both paths evaluate the same real-valued computation; they differ by
/// the order of floating-point reductions. A length-`n` reduction with
/// stochastic rounding carries relative error `O(√n · ε)`; gradient
/// updates compound it at most linearly over `iters` steps. We multiply
/// by a 10³ safety factor for the non-contractive phases of training,
/// and clamp to `[1e-12, 1e-6]` so the bound never degenerates to
/// either bit-equality or vacuity.
pub fn equivalence_tolerance(rows: usize, cols: usize, iters: usize) -> f64 {
    let n = (rows * cols) as f64;
    (1e3 * f64::EPSILON * n.sqrt() * iters.max(1) as f64).clamp(1e-12, 1e-6)
}

/// Checks one scenario: generates it, trains every requested workload
/// both ways, returns the divergences (empty = equivalent).
///
/// # Errors
/// Returns a message when the scenario cannot be generated or a model
/// fails to train at all — infrastructure failures, distinct from
/// equivalence divergences.
pub fn check_scenario(
    spec: &ScenarioSpec,
    workloads: &[Workload],
) -> Result<Vec<Divergence>, String> {
    let (md, data) = crate::generate(spec).map_err(|e| format!("generate: {e}"))?;
    let ft = FactorizedTable::new(md, data).map_err(|e| format!("factorize: {e}"))?;
    let mut divergences = Vec::new();
    for w in workloads {
        if let Some(d) = check_workload(&ft, *w, spec).map_err(|e| format!("{w}: {e}"))? {
            divergences.push(d);
        }
    }
    Ok(divergences)
}

/// Infrastructure-failure message for a model that reports success from
/// `fit` but exposes no fitted state (would indicate an `amalur-ml` bug).
fn not_fitted(side: &str) -> String {
    format!("{side} model reports unfitted state after successful fit")
}

/// Runs one workload both ways; `Ok(Some(..))` is a divergence,
/// `Err(..)` an infrastructure failure.
fn check_workload(
    ft: &FactorizedTable,
    workload: Workload,
    spec: &ScenarioSpec,
) -> Result<Option<Divergence>, String> {
    let (rows, cols) = ft.target_shape();
    let tol = equivalence_tolerance(rows, cols, EPOCHS);
    match workload {
        Workload::LinReg => {
            let y = planted_labels(ft, false);
            let config = LinRegConfig {
                epochs: EPOCHS,
                learning_rate: 0.01,
                l2: 0.1,
                tolerance: 0.0,
            };
            let mut fact = LinearRegression::new(config.clone());
            fact.fit(ft, &y).map_err(|e| e.to_string())?;
            let mut mat = LinearRegression::new(config);
            mat.fit(&ft.materialize(), &y).map_err(|e| e.to_string())?;
            let diverged = matrices_differ(
                fact.coefficients().ok_or_else(|| not_fitted("fact"))?,
                mat.coefficients().ok_or_else(|| not_fitted("mat"))?,
                tol,
                "coefficients",
            )
            .or_else(|| series_differ(fact.loss_history(), mat.loss_history(), tol, "loss"));
            Ok(diverged.map(|detail| Divergence { workload, detail }))
        }
        Workload::LogReg => {
            let y = planted_labels(ft, true);
            let config = LogRegConfig {
                epochs: EPOCHS,
                learning_rate: 0.1,
                l2: 0.0,
            };
            let mut fact = LogisticRegression::new(config.clone());
            fact.fit(ft, &y).map_err(|e| e.to_string())?;
            let mut mat = LogisticRegression::new(config);
            mat.fit(&ft.materialize(), &y).map_err(|e| e.to_string())?;
            let pf = fact.predict_proba(ft).map_err(|e| e.to_string())?;
            let pm = mat
                .predict_proba(&ft.materialize())
                .map_err(|e| e.to_string())?;
            let diverged = matrices_differ(
                fact.coefficients().ok_or_else(|| not_fitted("fact"))?,
                mat.coefficients().ok_or_else(|| not_fitted("mat"))?,
                tol,
                "coefficients",
            )
            .or_else(|| series_differ(&pf, &pm, tol, "predicted probabilities"));
            Ok(diverged.map(|detail| Divergence { workload, detail }))
        }
        Workload::KMeans => {
            let config = KMeansConfig {
                k: 2,
                max_iters: EPOCHS,
                tolerance: 1e-12,
                seed: spec.seed ^ 0x9E37_79B9,
            };
            let mut fact = KMeans::new(config.clone());
            let assign_fact = fact.fit(ft).map_err(|e| e.to_string())?;
            let mut mat = KMeans::new(config);
            let assign_mat = mat.fit(&ft.materialize()).map_err(|e| e.to_string())?;
            if assign_fact != assign_mat {
                let first = assign_fact
                    .iter()
                    .zip(&assign_mat)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                return Ok(Some(Divergence {
                    workload,
                    detail: format!("assignments differ (first at row {first})"),
                }));
            }
            let diverged = if !rel_close(fact.inertia(), mat.inertia(), tol) {
                Some(format!("inertia {} vs {}", fact.inertia(), mat.inertia()))
            } else {
                matrices_differ(
                    fact.centroids().ok_or_else(|| not_fitted("fact"))?,
                    mat.centroids().ok_or_else(|| not_fitted("mat"))?,
                    tol,
                    "centroids",
                )
            };
            Ok(diverged.map(|detail| Divergence { workload, detail }))
        }
        Workload::Gnmf => {
            // GNMF needs non-negative input; |·| per source cell keeps
            // shared-column copies equal, so metadata stays valid.
            let (md2, mut data2) = crate::generate(spec).map_err(|e| e.to_string())?;
            for d in &mut data2 {
                d.map_inplace(|v| v.abs());
            }
            let ft_nn = FactorizedTable::new(md2, data2).map_err(|e| e.to_string())?;
            // Multiplicative updates propagate error through ratios —
            // give them three extra decades (still capped at 1e-6).
            let tol = (tol * 1e3).min(1e-6);
            let config = GnmfConfig {
                rank: 2,
                iters: EPOCHS,
                seed: spec.seed ^ 0x517C_C1B7,
            };
            let mut fact = Gnmf::new(config.clone());
            fact.fit(&ft_nn).map_err(|e| e.to_string())?;
            let mut mat = Gnmf::new(config);
            mat.fit(&ft_nn.materialize()).map_err(|e| e.to_string())?;
            let fw = fact.w().ok_or_else(|| not_fitted("fact"))?;
            let mw = mat.w().ok_or_else(|| not_fitted("mat"))?;
            let fh = fact.h().ok_or_else(|| not_fitted("fact"))?;
            let mh = mat.h().ok_or_else(|| not_fitted("mat"))?;
            let diverged = matrices_differ(fw, mw, tol, "W")
                .or_else(|| matrices_differ(fh, mh, tol, "H"))
                .or_else(|| series_differ(fact.loss_history(), mat.loss_history(), tol, "loss"));
            Ok(diverged.map(|detail| Divergence { workload, detail }))
        }
    }
}

/// Labels with a planted linear model over the materialized target —
/// identical for both paths by construction.
pub fn planted_labels(ft: &FactorizedTable, binary: bool) -> DenseMatrix {
    let t = ft.materialize();
    let (rows, cols) = t.shape();
    let y: Vec<f64> = (0..rows)
        .map(|i| {
            let mut v = 0.0;
            for j in 0..cols {
                let w = if j % 2 == 0 { 0.2 } else { -0.15 };
                v += w * t.get(i, j);
            }
            if binary {
                f64::from(v > 0.0)
            } else {
                v
            }
        })
        .collect();
    DenseMatrix::column_vector(&y)
}

/// Relative closeness with an absolute floor of 1 (values near zero are
/// compared absolutely at `tol`).
fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// First element-wise violation between two matrices, if any.
fn matrices_differ(a: &DenseMatrix, b: &DenseMatrix, tol: f64, what: &str) -> Option<String> {
    if a.shape() != b.shape() {
        return Some(format!("{what}: shapes {:?} vs {:?}", a.shape(), b.shape()));
    }
    for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        if !rel_close(*x, *y, tol) {
            return Some(format!(
                "{what}[{idx}]: {x} vs {y} (|Δ| = {:.3e}, tol = {tol:.3e})",
                (x - y).abs()
            ));
        }
    }
    None
}

/// First element-wise violation between two numeric series, if any.
fn series_differ(a: &[f64], b: &[f64], tol: f64, what: &str) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("{what}: lengths {} vs {}", a.len(), b.len()));
    }
    for (idx, (x, y)) in a.iter().zip(b).enumerate() {
        if !rel_close(*x, *y, tol) {
            return Some(format!(
                "{what}[{idx}]: {x} vs {y} (|Δ| = {:.3e}, tol = {tol:.3e})",
                (x - y).abs()
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Topology;

    #[test]
    fn tolerance_scales_with_size_and_iters() {
        let small = equivalence_tolerance(10, 10, 1);
        let big = equivalence_tolerance(100_000, 100, 100);
        assert!(small < big);
        assert!(small >= 1e-12);
        assert!(big <= 1e-6);
    }

    #[test]
    fn default_star_scenario_is_equivalent() {
        let spec = ScenarioSpec::default();
        let divergences = check_scenario(&spec, &ALL_WORKLOADS).unwrap();
        assert!(divergences.is_empty(), "{divergences:?}");
    }

    #[test]
    fn many_to_many_scenario_is_equivalent() {
        let spec = ScenarioSpec {
            topology: Topology::ManyToMany,
            skew: 0.8,
            seed: 3,
            ..ScenarioSpec::default()
        };
        let divergences = check_scenario(&spec, &ALL_WORKLOADS).unwrap();
        assert!(divergences.is_empty(), "{divergences:?}");
    }

    #[test]
    fn comparators_flag_real_differences() {
        let a = DenseMatrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(1, 1, 2.0);
        assert!(matrices_differ(&a, &b, 1e-9, "m").is_some());
        assert!(matrices_differ(&a, &a, 1e-9, "m").is_none());
        assert!(series_differ(&[1.0], &[1.0, 2.0], 1e-9, "s").is_some());
    }
}
