//! Turning a [`ScenarioSpec`] into DI metadata plus source matrices.
//!
//! The output contract is exactly `generate_two_source`'s: a validated
//! [`DiMetadata`] and one `DenseMatrix` per source, ready for
//! `FactorizedTable::new`. Generation is a pure function of the spec —
//! a single seeded [`StdRng`] stream drawn in a fixed order — which is
//! what makes shrinking and corpus replay possible.
//!
//! Construction invariants (the reasons generated scenarios satisfy the
//! paper's §IV equivalence guarantee by *construction*, so any observed
//! factorized-vs-materialized divergence is a kernel/rewrite bug):
//!
//! * every target cell has a well-defined value: the base indicator is
//!   the identity (or, for M:N, both endpoints cover every edge up to
//!   `coverage`), and unmatched cells are zero on both paths;
//! * shared columns are *consistent*: each satellite owns a disjoint
//!   window of base columns and the base copies the satellite's value
//!   on matched rows, so duplicated cells carry equal values;
//! * redundancy matrices are derived structurally via
//!   [`RedundancyMatrix::against_earlier`], never hand-wired.

use crate::spec::{ScenarioSpec, Topology};
use amalur_integration::{
    DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, Result, SourceMetadata,
};
use amalur_matrix::{CooMatrix, DenseMatrix, NO_MATCH};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One non-base source being assembled: its FK column (composed down to
/// the target rows) plus its shared-window assignment.
struct Satellite {
    /// `ci[i]` = source row serving target row `i`, or [`NO_MATCH`].
    ci: Vec<i64>,
    /// First target/base column of this source's shared window.
    shared_offset: usize,
    /// Width of the shared window (0 = no shared columns).
    shared_width: usize,
}

/// Generates the scenario described by `spec`.
///
/// Returns `(metadata, sources)` with `sources[k]` the data matrix of
/// `metadata.sources[k]` — the same contract as
/// `amalur_data::generate_two_source`.
///
/// # Errors
/// Propagates metadata-construction errors; unreachable for specs with
/// all size knobs ≥ 1 and `density`/`coverage` in `(0, 1]`.
pub fn generate(spec: &ScenarioSpec) -> Result<(DiMetadata, Vec<DenseMatrix>)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    match spec.topology {
        Topology::ManyToMany => generate_many_to_many(spec, &mut rng),
        _ => generate_join(spec, &mut rng),
    }
}

/// Star / snowflake / chain: base rows are the target rows.
fn generate_join(spec: &ScenarioSpec, rng: &mut StdRng) -> Result<(DiMetadata, Vec<DenseMatrix>)> {
    let r_t = spec.base_rows;
    let n_sat = spec.topology.num_sources() - 1;

    // --- row alignment: one composed FK column per satellite -------------
    let mut sats: Vec<Satellite> = Vec::with_capacity(n_sat);
    match spec.topology {
        Topology::Star { satellites } => {
            for _ in 0..satellites {
                sats.push(Satellite {
                    ci: fk_column(r_t, spec.dim_rows, spec, rng),
                    shared_offset: 0,
                    shared_width: 0,
                });
            }
        }
        Topology::Snowflake { arms, depth } => {
            for _ in 0..arms {
                push_chain(&mut sats, depth, r_t, spec, rng);
            }
        }
        Topology::Chain { hops } => push_chain(&mut sats, hops, r_t, spec, rng),
        Topology::ManyToMany => unreachable!("handled by generate_many_to_many"),
    }

    // --- shared-column windows: disjoint slices of the base columns ------
    let mut offset = 0usize;
    for sat in &mut sats {
        let width = spec
            .shared_cols
            .min(spec.dim_cols)
            .min(spec.base_cols.saturating_sub(offset));
        sat.shared_offset = offset;
        sat.shared_width = width;
        offset += width;
    }
    let c_t = spec.base_cols
        + sats
            .iter()
            .map(|s| spec.dim_cols - s.shared_width)
            .sum::<usize>();

    // --- data (drawn in metadata order so the stream is reproducible) ----
    let mut base_data = source_data(spec.base_rows, spec.base_cols, 0, spec, rng);
    let sat_data: Vec<DenseMatrix> = (0..n_sat)
        .map(|k| source_data(spec.dim_rows, spec.dim_cols, k + 1, spec, rng))
        .collect();

    // Shared-value consistency: the satellite is authoritative, the base
    // copies it on matched rows (unmatched rows keep base values — there
    // the satellite contributes nothing).
    for (sat, data) in sats.iter().zip(&sat_data) {
        for (i, &j) in sat.ci.iter().enumerate() {
            if j == NO_MATCH {
                continue;
            }
            for c in 0..sat.shared_width {
                base_data.set(i, sat.shared_offset + c, data.get(j as usize, c));
            }
        }
    }

    // --- metadata ---------------------------------------------------------
    // Base: identity indicator, identity mapping onto target cols 0..base_cols.
    let base_cm: Vec<i64> = (0..c_t)
        .map(|t| {
            if t < spec.base_cols {
                t as i64
            } else {
                NO_MATCH
            }
        })
        .collect();
    let base_mapping = MappingMatrix::new(base_cm, spec.base_cols)?;
    let base_indicator = IndicatorMatrix::new((0..r_t as i64).collect(), spec.base_rows)?;

    let mut sources = vec![SourceMetadata {
        name: "base".to_owned(),
        mapped_columns: (0..spec.base_cols).map(|c| format!("base_{c}")).collect(),
        redundancy: RedundancyMatrix::all_ones(r_t, c_t),
        mapping: base_mapping,
        indicator: base_indicator,
    }];

    let mut fresh_start = spec.base_cols;
    for (k, sat) in sats.iter().enumerate() {
        // Source cols: [0, shared_width) shared, the rest fresh.
        let fresh = spec.dim_cols - sat.shared_width;
        let cm: Vec<i64> = (0..c_t)
            .map(|t| {
                if t >= sat.shared_offset && t < sat.shared_offset + sat.shared_width {
                    (t - sat.shared_offset) as i64
                } else if t >= fresh_start && t < fresh_start + fresh {
                    (sat.shared_width + t - fresh_start) as i64
                } else {
                    NO_MATCH
                }
            })
            .collect();
        let mapping = MappingMatrix::new(cm, spec.dim_cols)?;
        let indicator = IndicatorMatrix::new(sat.ci.clone(), spec.dim_rows)?;
        let earlier: Vec<(&IndicatorMatrix, &MappingMatrix)> =
            sources.iter().map(|s| (&s.indicator, &s.mapping)).collect();
        let redundancy = RedundancyMatrix::against_earlier(&earlier, &indicator, &mapping)?;
        sources.push(SourceMetadata {
            name: format!("sat{k}"),
            mapped_columns: (0..spec.dim_cols).map(|c| format!("sat{k}_{c}")).collect(),
            mapping,
            indicator,
            redundancy,
        });
        fresh_start += fresh;
    }

    let metadata = DiMetadata {
        target_columns: (0..c_t).map(|t| format!("f{t}")).collect(),
        target_rows: r_t,
        sources,
    };
    metadata.validate()?;

    let mut data = vec![base_data];
    data.extend(sat_data);
    Ok((metadata, data))
}

/// M:N link topology: one target row per edge, fan-out on both sides.
fn generate_many_to_many(
    spec: &ScenarioSpec,
    rng: &mut StdRng,
) -> Result<(DiMetadata, Vec<DenseMatrix>)> {
    let edges = spec.base_rows;
    let c_t = spec.base_cols + spec.dim_cols;

    // Left endpoints always resolve; the right side honours `coverage`
    // (an edge can reference a right entity that failed resolution).
    let ci_a: Vec<i64> = (0..edges)
        .map(|_| skewed_index(rng, spec.dim_rows, spec.skew) as i64)
        .collect();
    let ci_b: Vec<i64> = (0..edges)
        .map(|_| {
            let j = skewed_index(rng, spec.dim_rows, spec.skew) as i64;
            // Draw the coverage coin unconditionally to keep the stream
            // aligned across coverage values.
            if rng.gen_bool(spec.coverage.clamp(f64::MIN_POSITIVE, 1.0)) {
                j
            } else {
                NO_MATCH
            }
        })
        .collect();

    let d_a = source_data(spec.dim_rows, spec.base_cols, 0, spec, rng);
    let d_b = source_data(spec.dim_rows, spec.dim_cols, 1, spec, rng);

    let cm_a: Vec<i64> = (0..c_t)
        .map(|t| {
            if t < spec.base_cols {
                t as i64
            } else {
                NO_MATCH
            }
        })
        .collect();
    let cm_b: Vec<i64> = (0..c_t)
        .map(|t| {
            if t >= spec.base_cols {
                (t - spec.base_cols) as i64
            } else {
                NO_MATCH
            }
        })
        .collect();
    let mapping_a = MappingMatrix::new(cm_a, spec.base_cols)?;
    let mapping_b = MappingMatrix::new(cm_b, spec.dim_cols)?;
    let indicator_a = IndicatorMatrix::new(ci_a, spec.dim_rows)?;
    let indicator_b = IndicatorMatrix::new(ci_b, spec.dim_rows)?;
    let redundancy_a = RedundancyMatrix::all_ones(edges, c_t);
    let redundancy_b =
        RedundancyMatrix::against_earlier(&[(&indicator_a, &mapping_a)], &indicator_b, &mapping_b)?;

    let metadata = DiMetadata {
        target_columns: (0..c_t).map(|t| format!("f{t}")).collect(),
        target_rows: edges,
        sources: vec![
            SourceMetadata {
                name: "left".to_owned(),
                mapped_columns: (0..spec.base_cols).map(|c| format!("l_{c}")).collect(),
                mapping: mapping_a,
                indicator: indicator_a,
                redundancy: redundancy_a,
            },
            SourceMetadata {
                name: "right".to_owned(),
                mapped_columns: (0..spec.dim_cols).map(|c| format!("r_{c}")).collect(),
                mapping: mapping_b,
                indicator: indicator_b,
                redundancy: redundancy_b,
            },
        ],
    };
    metadata.validate()?;
    Ok((metadata, vec![d_a, d_b]))
}

/// Appends one lookup chain of `depth` tables to `sats`.
///
/// Hop 1 links target rows to the first lookup table (honouring
/// `coverage`); hop ℓ > 1 links table ℓ−1's *rows* to table ℓ, and the
/// target-level indicator is the composition — a NO_MATCH anywhere in
/// the chain propagates down.
fn push_chain(
    sats: &mut Vec<Satellite>,
    depth: usize,
    r_t: usize,
    spec: &ScenarioSpec,
    rng: &mut StdRng,
) {
    let mut level: Vec<i64> = fk_column(r_t, spec.dim_rows, spec, rng);
    sats.push(Satellite {
        ci: level.clone(),
        shared_offset: 0,
        shared_width: 0,
    });
    for _ in 1..depth {
        // Row-level link of this lookup table to the next one (always
        // total: missing links are a base-to-chain phenomenon here).
        let link: Vec<i64> = (0..spec.dim_rows)
            .map(|_| skewed_index(rng, spec.dim_rows, spec.skew) as i64)
            .collect();
        level = level
            .iter()
            .map(|&j| {
                if j == NO_MATCH {
                    NO_MATCH
                } else {
                    link[j as usize]
                }
            })
            .collect();
        sats.push(Satellite {
            ci: level.clone(),
            shared_offset: 0,
            shared_width: 0,
        });
    }
}

/// A base-to-dimension FK column: skewed draw, `coverage` match rate.
fn fk_column(r_t: usize, dim_rows: usize, spec: &ScenarioSpec, rng: &mut StdRng) -> Vec<i64> {
    (0..r_t)
        .map(|_| {
            let j = skewed_index(rng, dim_rows, spec.skew) as i64;
            if rng.gen_bool(spec.coverage.clamp(f64::MIN_POSITIVE, 1.0)) {
                j
            } else {
                NO_MATCH
            }
        })
        .collect()
}

/// Power-law index draw over `0..n`: `skew = 0` is uniform; larger
/// values concentrate mass on low indices (hot dimension rows).
fn skewed_index(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    let v = u.powf(1.0 + 3.0 * skew.max(0.0));
    ((v * n as f64) as usize).min(n.saturating_sub(1))
}

/// One source's data matrix. Sources whose bit is set in
/// `spec.sparse_mask` are built through the sparse path — a [`CooMatrix`]
/// filled at `spec.density`, converted via `to_csr`, then densified —
/// so generated scenarios exercise the same COO → CSR plumbing the
/// sparse kernels use.
fn source_data(
    rows: usize,
    cols: usize,
    source_index: usize,
    spec: &ScenarioSpec,
    rng: &mut StdRng,
) -> DenseMatrix {
    let sparse = source_index < 64 && spec.sparse_mask & (1u64 << source_index) != 0;
    if !sparse {
        return DenseMatrix::random_uniform(rows, cols, -1.0, 1.0, rng);
    }
    let density = spec.density.clamp(f64::MIN_POSITIVE, 1.0);
    let mut coo = CooMatrix::new(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            // Draw both coins unconditionally: the RNG stream consumed
            // per cell is constant, so `density` shrinks cleanly.
            let keep = rng.gen_bool(density);
            let v = rng.gen_range(-1.0..1.0);
            if keep {
                // `i < rows` and `j < cols` by loop bounds, so the push
                // cannot fail; debug builds still verify the invariant.
                let pushed = coo.push(i, j, v);
                debug_assert!(pushed.is_ok());
            }
        }
    }
    coo.to_csr().to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(topology: Topology) -> ScenarioSpec {
        ScenarioSpec {
            topology,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn star_shapes_and_validation() {
        let s = ScenarioSpec {
            shared_cols: 1,
            ..spec(Topology::Star { satellites: 3 })
        };
        let (md, data) = generate(&s).unwrap();
        assert_eq!(md.sources.len(), 4);
        assert_eq!(md.target_rows, s.base_rows);
        // 3 satellites, each sharing one base column.
        assert_eq!(md.target_cols(), s.base_cols + 3 * (s.dim_cols - 1));
        assert_eq!(data[0].shape(), (s.base_rows, s.base_cols));
        assert_eq!(data[1].shape(), (s.dim_rows, s.dim_cols));
    }

    #[test]
    fn shared_windows_are_disjoint_and_clamped() {
        // 3 satellites × window 2 > base_cols 3: windows clamp to 2+1+0.
        let s = ScenarioSpec {
            shared_cols: 2,
            ..spec(Topology::Star { satellites: 3 })
        };
        let (md, data) = generate(&s).unwrap();
        assert_eq!(md.target_cols(), s.base_cols + (6 - 2) + (6 - 1) + 6);
        // Shared values are consistent wherever two sources map one cell.
        let ci1 = md.sources[1].indicator.compressed();
        for (i, &j) in ci1.iter().enumerate() {
            if j != NO_MATCH {
                assert_eq!(data[0].get(i, 0), data[1].get(j as usize, 0));
                assert_eq!(data[0].get(i, 1), data[1].get(j as usize, 1));
            }
        }
        let ci2 = md.sources[2].indicator.compressed();
        for (i, &j) in ci2.iter().enumerate() {
            if j != NO_MATCH {
                assert_eq!(data[0].get(i, 2), data[2].get(j as usize, 0));
            }
        }
    }

    #[test]
    fn chain_composes_hops() {
        let s = spec(Topology::Chain { hops: 3 });
        let (md, _) = generate(&s).unwrap();
        assert_eq!(md.sources.len(), 4);
        // Every hop's indicator points into dim_rows.
        for src in &md.sources[1..] {
            for &j in src.indicator.compressed() {
                assert!(j == NO_MATCH || (j as usize) < s.dim_rows);
            }
        }
    }

    #[test]
    fn chain_no_match_propagates() {
        let s = ScenarioSpec {
            coverage: 0.5,
            seed: 7,
            ..spec(Topology::Chain { hops: 2 })
        };
        let (md, _) = generate(&s).unwrap();
        let ci1 = md.sources[1].indicator.compressed();
        let ci2 = md.sources[2].indicator.compressed();
        for (a, b) in ci1.iter().zip(ci2) {
            if *a == NO_MATCH {
                assert_eq!(*b, NO_MATCH);
            }
        }
        assert!(ci1.contains(&NO_MATCH));
    }

    #[test]
    fn many_to_many_has_fanout_on_both_sides() {
        let s = ScenarioSpec {
            base_rows: 120,
            dim_rows: 10,
            ..spec(Topology::ManyToMany)
        };
        let (md, _) = generate(&s).unwrap();
        assert_eq!(md.target_rows, 120);
        for src in &md.sources {
            let ci = src.indicator.compressed();
            let mut counts = vec![0usize; s.dim_rows];
            for &j in ci {
                if j != NO_MATCH {
                    counts[j as usize] += 1;
                }
            }
            assert!(counts.iter().any(|&c| c > 1), "no fan-out in {}", src.name);
        }
    }

    #[test]
    fn skew_concentrates_fanout() {
        let uniform = ScenarioSpec {
            base_rows: 2000,
            dim_rows: 50,
            ..spec(Topology::Star { satellites: 1 })
        };
        let skewed = ScenarioSpec {
            skew: 1.0,
            ..uniform.clone()
        };
        let hot = |s: &ScenarioSpec| {
            let (md, _) = generate(s).unwrap();
            md.sources[1]
                .indicator
                .compressed()
                .iter()
                .filter(|&&j| j == 0)
                .count()
        };
        // Row 0 is the hot row under the power-law draw.
        assert!(hot(&skewed) > 2 * hot(&uniform));
    }

    #[test]
    fn sparse_sources_respect_density() {
        let s = ScenarioSpec {
            sparse_mask: 0b10,
            density: 0.2,
            ..spec(Topology::Star { satellites: 1 })
        };
        let (_, data) = generate(&s).unwrap();
        let nnz = data[1].as_slice().iter().filter(|v| **v != 0.0).count();
        let total = s.dim_rows * s.dim_cols;
        assert!(nnz < total / 2, "density 0.2 produced {nnz}/{total} nnz");
        // The dense source stays dense.
        let nnz0 = data[0].as_slice().iter().filter(|v| **v != 0.0).count();
        assert_eq!(nnz0, s.base_rows * s.base_cols);
    }

    #[test]
    fn generation_is_deterministic() {
        for topology in [
            Topology::Star { satellites: 2 },
            Topology::Snowflake { arms: 2, depth: 2 },
            Topology::Chain { hops: 2 },
            Topology::ManyToMany,
        ] {
            let s = ScenarioSpec {
                skew: 0.5,
                shared_cols: 1,
                sparse_mask: 0b01,
                density: 0.5,
                coverage: 0.9,
                seed: 1234,
                ..spec(topology)
            };
            let (md_a, data_a) = generate(&s).unwrap();
            let (md_b, data_b) = generate(&s).unwrap();
            assert_eq!(md_a, md_b);
            assert_eq!(data_a, data_b);
        }
    }
}
