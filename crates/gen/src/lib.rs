//! Property-based DI scenario generation and differential testing.
//!
//! The paper evaluates Amalur on a fixed, hand-wired ladder of
//! two-source scenarios (Table III / footnote 3). This crate replaces
//! that ladder as the project's correctness backbone: it *generates*
//! data-integration landscapes — star and snowflake schemas, multi-hop
//! lookup chains, M:N link sets, skewed fan-outs, shared-column
//! redundancy grids, mixed sparse/dense sources — and checks, for every
//! one of them, that factorized learning and materialized learning
//! agree (§IV: "factorized learning does not affect model training
//! accuracy").
//!
//! The pipeline, module by module:
//!
//! * [`spec`] — the scenario grammar: a small serializable
//!   [`ScenarioSpec`] (topology + continuous knobs) that fully
//!   determines a scenario together with its seed.
//! * [`sample`] — seed-deterministic random walks over the grammar, so
//!   sweeps and CI smokes can draw "fresh" scenarios reproducibly.
//! * [`generate`] — turns a spec into a validated
//!   [`DiMetadata`](amalur_integration::DiMetadata) plus one source
//!   matrix per table, the exact contract of
//!   `amalur_data::generate_two_source`.
//! * [`diff`] — the differential harness: train linreg / logreg /
//!   k-means / GNMF both factorized and materialized, demand agreement
//!   within a rounding-model tolerance.
//! * [`shrink`] — greedy spec-level shrinking to a minimal failing
//!   scenario (the vendored proptest shim has no shrinking; specs are a
//!   far better shrink domain than byte streams anyway).
//! * [`corpus`] — the regression corpus: previously shrunk failing
//!   specs, checked into `corpus/regressions.json` and replayed by
//!   every sweep and by CI.
//!
//! The `scenario_sweep` bin in `amalur-bench` drives all of this across
//! ≥ 100 scenarios and additionally scores the cost model's
//! predicted-vs-oracle factorization decisions per topology/skew
//! bucket, writing `BENCH_coverage.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod generate;
pub mod sample;
pub mod shrink;
pub mod spec;

pub use corpus::{Corpus, CorpusEntry};
pub use diff::{
    check_scenario, equivalence_tolerance, planted_labels, Divergence, Workload, ALL_WORKLOADS,
};
pub use generate::generate;
pub use sample::{sample_spec, sample_specs};
pub use shrink::shrink;
pub use spec::{ScenarioSpec, Topology};

/// Checks one scenario and, on divergence, shrinks it to a minimal
/// failing spec — the harness entry point tests and sweeps use.
///
/// Returns `Ok(())` when every workload agrees across both paths.
/// On divergence, returns the *shrunk* spec plus the divergences
/// observed at that minimum (re-checked, so the report matches the
/// minimal scenario, not the original). The minimal spec's JSON is
/// embedded in the message so it can be pasted straight into
/// `corpus/regressions.json`.
///
/// # Errors
/// `Err(message)` for both infrastructure failures (generation or
/// training failed outright) and genuine equivalence violations; the
/// message distinguishes the two.
pub fn check_and_shrink(spec: &ScenarioSpec, workloads: &[Workload]) -> Result<(), String> {
    let divergences = check_scenario(spec, workloads)?;
    if divergences.is_empty() {
        return Ok(());
    }
    // Shrink against "still diverges" (infrastructure errors on a
    // candidate count as not failing — we only descend along specs
    // exhibiting the original kind of failure).
    let minimal = shrink(
        spec,
        &mut |candidate| matches!(check_scenario(candidate, workloads), Ok(d) if !d.is_empty()),
    );
    let at_min = check_scenario(&minimal, workloads).unwrap_or_default();
    let report = if at_min.is_empty() {
        &divergences
    } else {
        &at_min
    };
    let details: Vec<String> = report.iter().map(ToString::to_string).collect();
    Err(format!(
        "factorized != materialized\n  original spec: {}\n  minimal spec:  {}\n  {}",
        serde_json::to_string(spec).unwrap_or_default(),
        serde_json::to_string(&minimal).unwrap_or_default(),
        details.join("\n  ")
    ))
}
