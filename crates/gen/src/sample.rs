//! Seed-deterministic sampling over the scenario grammar.
//!
//! A sweep needs "fresh" scenarios that are still pinned: the `i`-th
//! spec of sweep seed `s` must be the same on every machine and every
//! run, or a CI failure cannot be reproduced locally. [`sample_spec`]
//! therefore derives each spec from `(sweep_seed, index)` alone — there
//! is no shared RNG stream between indices, so any subset of a sweep
//! can be replayed in isolation.

use crate::spec::{ScenarioSpec, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size regime for sampled scenarios.
///
/// The differential harness wants many small scenarios (the
/// equivalence property is per-update; breadth beats depth), while the
/// cost-model sweep wants scenarios big enough that the measured
/// factorized-vs-materialized gap rises above timing noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Tens-of-rows scenarios — differential checks and CI smokes.
    Small,
    /// Hundreds-to-thousands-of-rows scenarios — cost-model sweeps.
    Large,
}

/// Draws the `index`-th scenario of the sweep identified by
/// `sweep_seed`, cycling deterministically through all four topology
/// families so every sweep prefix covers star, snowflake, chain and
/// M:N.
pub fn sample_spec(sweep_seed: u64, index: u64, size: SizeClass) -> ScenarioSpec {
    // Distinct specs for distinct (seed, index): splitmix-style mixing.
    let mut rng = StdRng::seed_from_u64(
        sweep_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_5A5A_DEAD_BEEF,
    );
    let topology = match index % 4 {
        0 => Topology::Star {
            satellites: rng.gen_range(1usize..4),
        },
        1 => Topology::Snowflake {
            arms: rng.gen_range(1usize..3),
            depth: rng.gen_range(2usize..4),
        },
        2 => Topology::Chain {
            hops: rng.gen_range(2usize..5),
        },
        _ => Topology::ManyToMany,
    };
    let (base_rows, dim_rows) = match size {
        SizeClass::Small => (rng.gen_range(20usize..120), rng.gen_range(5usize..40)),
        SizeClass::Large => (rng.gen_range(400usize..4000), rng.gen_range(50usize..400)),
    };
    let n_sources = topology.num_sources();
    // Every eighth scenario is fully dense/uniform so the easy region
    // stays covered; the rest draw the hard knobs independently.
    let plain = index % 8 == 3;
    let skew = if plain || rng.gen_bool(0.4) {
        0.0
    } else {
        rng.gen_range(0.2..1.0)
    };
    let shared_cols = if plain || rng.gen_bool(0.5) {
        0
    } else {
        rng.gen_range(1usize..3)
    };
    let sparse_mask = if plain || rng.gen_bool(0.5) {
        0
    } else {
        // Any non-empty subset of the sources, sparse.
        rng.gen_range(1u64..(1u64 << n_sources.min(8)))
    };
    let density = if sparse_mask == 0 {
        1.0
    } else {
        rng.gen_range(0.05..0.8)
    };
    let coverage = if plain || rng.gen_bool(0.5) {
        1.0
    } else {
        rng.gen_range(0.5..1.0)
    };
    ScenarioSpec {
        topology,
        base_rows,
        base_cols: rng.gen_range(1usize..6),
        dim_rows,
        dim_cols: rng.gen_range(1usize..8),
        skew,
        shared_cols,
        sparse_mask,
        density,
        coverage,
        seed: rng.gen_range(0u64..u64::MAX / 2),
    }
}

/// The first `n` scenarios of sweep `sweep_seed` at size `size`.
pub fn sample_specs(sweep_seed: u64, n: u64, size: SizeClass) -> Vec<ScenarioSpec> {
    (0..n).map(|i| sample_spec(sweep_seed, i, size)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sampling_is_deterministic_and_index_local() {
        for i in 0..16 {
            let a = sample_spec(42, i, SizeClass::Small);
            let b = sample_spec(42, i, SizeClass::Small);
            assert_eq!(a, b);
        }
        // Replaying index 7 alone matches its place in the full sweep.
        let sweep = sample_specs(42, 8, SizeClass::Small);
        assert_eq!(sweep[7], sample_spec(42, 7, SizeClass::Small));
    }

    #[test]
    fn prefix_covers_all_topologies() {
        let kinds: HashSet<&str> = sample_specs(7, 8, SizeClass::Small)
            .iter()
            .map(|s| s.topology.kind())
            .collect();
        assert_eq!(kinds.len(), 4, "{kinds:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = sample_specs(1, 8, SizeClass::Small);
        let b = sample_specs(2, 8, SizeClass::Small);
        assert_ne!(a, b);
    }

    #[test]
    fn sampled_specs_generate_and_validate() {
        for spec in sample_specs(3, 12, SizeClass::Small) {
            crate::generate(&spec).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        }
    }

    #[test]
    fn sparse_and_skewed_regions_are_reached() {
        let sweep = sample_specs(11, 32, SizeClass::Small);
        assert!(sweep.iter().any(|s| s.sparse_mask != 0));
        assert!(sweep.iter().any(|s| s.skew > 0.0));
        assert!(sweep.iter().any(|s| s.shared_cols > 0));
        assert!(sweep.iter().any(|s| s.coverage < 1.0));
    }
}
