//! Proptest-style shrinking over [`ScenarioSpec`]s.
//!
//! The vendored `proptest` shim deliberately has no shrinking, so the
//! harness shrinks at the *spec* level instead — which is where it
//! belongs anyway: a minimal failing DI scenario ("star, 1 satellite,
//! 5×1 base, uniform, dense") is worth far more than a minimal failing
//! byte stream. Shrinking is a greedy descent over
//! [`ScenarioSpec::shrink_candidates`]; every candidate strictly
//! decreases [`ScenarioSpec::complexity`], so the loop terminates.

use crate::spec::{ScenarioSpec, Topology};

impl ScenarioSpec {
    /// Strictly-simpler variants of this spec, most aggressive first.
    ///
    /// Each candidate reduces [`complexity`](ScenarioSpec::complexity):
    /// halved sizes, fewer sources, and disabled knobs (skew, sparsity,
    /// shared columns, partial coverage).
    pub fn shrink_candidates(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        let mut push = |candidate: ScenarioSpec| {
            debug_assert!(candidate.complexity() < self.complexity());
            out.push(candidate);
        };

        // Fewer sources first: topology is the biggest lever.
        match self.topology {
            Topology::Star { satellites } if satellites > 1 => push(ScenarioSpec {
                topology: Topology::Star {
                    satellites: satellites - 1,
                },
                ..self.clone()
            }),
            Topology::Snowflake { arms, depth } => {
                if arms > 1 {
                    push(ScenarioSpec {
                        topology: Topology::Snowflake {
                            arms: arms - 1,
                            depth,
                        },
                        ..self.clone()
                    });
                }
                if depth > 1 {
                    push(ScenarioSpec {
                        topology: Topology::Snowflake {
                            arms,
                            depth: depth - 1,
                        },
                        ..self.clone()
                    });
                }
                if arms == 1 && depth == 1 {
                    // A 1×1 snowflake *is* a single-satellite star; the
                    // star form is canonical-simpler (same source count,
                    // simpler generator path — keep complexity strictly
                    // decreasing by also halving base_rows).
                    if self.base_rows > 4 {
                        push(ScenarioSpec {
                            topology: Topology::Star { satellites: 1 },
                            base_rows: (self.base_rows / 2).max(4),
                            ..self.clone()
                        });
                    }
                }
            }
            Topology::Chain { hops } if hops > 1 => push(ScenarioSpec {
                topology: Topology::Chain { hops: hops - 1 },
                ..self.clone()
            }),
            _ => {}
        }

        // Halve sizes.
        if self.base_rows > 4 {
            push(ScenarioSpec {
                base_rows: (self.base_rows / 2).max(4),
                ..self.clone()
            });
        }
        if self.dim_rows > 2 {
            push(ScenarioSpec {
                dim_rows: (self.dim_rows / 2).max(2),
                ..self.clone()
            });
        }
        if self.base_cols > 1 {
            push(ScenarioSpec {
                base_cols: (self.base_cols / 2).max(1),
                ..self.clone()
            });
        }
        if self.dim_cols > 1 {
            push(ScenarioSpec {
                dim_cols: (self.dim_cols / 2).max(1),
                ..self.clone()
            });
        }

        // Disable knobs.
        if self.shared_cols > 0 {
            push(ScenarioSpec {
                shared_cols: 0,
                ..self.clone()
            });
        }
        if self.skew > 0.0 {
            push(ScenarioSpec {
                skew: 0.0,
                ..self.clone()
            });
        }
        if self.sparse_mask != 0 {
            push(ScenarioSpec {
                sparse_mask: 0,
                ..self.clone()
            });
        }
        if self.density < 1.0 {
            push(ScenarioSpec {
                density: 1.0,
                ..self.clone()
            });
        }
        if self.coverage < 1.0 {
            push(ScenarioSpec {
                coverage: 1.0,
                ..self.clone()
            });
        }
        out
    }
}

/// Greedily shrinks `spec` to a local minimum under `fails`.
///
/// `fails` must return `true` for any spec that still exhibits the
/// failure (it is called on candidates only, never on `spec` itself —
/// the caller has already observed `spec` failing). The result is a
/// spec for which no [`shrink_candidates`](ScenarioSpec::shrink_candidates)
/// still fails: minimal in the sense proptest users expect.
pub fn shrink(spec: &ScenarioSpec, fails: &mut dyn FnMut(&ScenarioSpec) -> bool) -> ScenarioSpec {
    let mut current = spec.clone();
    loop {
        match current.shrink_candidates().into_iter().find(|c| fails(c)) {
            Some(simpler) => current = simpler,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_strictly_reduce_complexity() {
        let spec = ScenarioSpec {
            topology: Topology::Snowflake { arms: 3, depth: 2 },
            base_rows: 200,
            base_cols: 6,
            dim_rows: 40,
            dim_cols: 8,
            skew: 0.9,
            shared_cols: 2,
            sparse_mask: 0b101,
            density: 0.3,
            coverage: 0.7,
            seed: 5,
        };
        let candidates = spec.shrink_candidates();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(c.complexity() < spec.complexity(), "{c:?}");
        }
    }

    #[test]
    fn shrink_terminates_at_a_fixpoint() {
        // Artificial failure: anything with base_rows ≥ 32 "fails".
        let spec = ScenarioSpec {
            topology: Topology::Star { satellites: 4 },
            base_rows: 512,
            skew: 0.5,
            shared_cols: 1,
            sparse_mask: 1,
            density: 0.5,
            coverage: 0.9,
            ..ScenarioSpec::default()
        };
        let minimal = shrink(&spec, &mut |s| s.base_rows >= 32);
        assert_eq!(minimal.base_rows, 32);
        // Every irrelevant knob shrank away.
        assert_eq!(minimal.topology, Topology::Star { satellites: 1 });
        assert_eq!(minimal.skew, 0.0);
        assert_eq!(minimal.shared_cols, 0);
        assert_eq!(minimal.sparse_mask, 0);
        assert_eq!(minimal.density, 1.0);
        assert_eq!(minimal.coverage, 1.0);
        // And no candidate of the minimum still fails.
        assert!(minimal.shrink_candidates().iter().all(|c| c.base_rows < 32));
    }

    #[test]
    fn minimal_spec_has_no_failing_candidates_for_knob_predicates() {
        let spec = ScenarioSpec {
            topology: Topology::Chain { hops: 3 },
            sparse_mask: 0b11,
            density: 0.4,
            ..ScenarioSpec::default()
        };
        // Failure depends only on sparsity being present.
        let minimal = shrink(&spec, &mut |s| s.sparse_mask != 0);
        assert_ne!(minimal.sparse_mask, 0);
        assert_eq!(minimal.topology, Topology::Chain { hops: 1 });
        assert_eq!(minimal.base_rows, 4);
        assert_eq!(minimal.dim_rows, 2);
        assert_eq!(minimal.base_cols, 1);
        assert_eq!(minimal.dim_cols, 1);
        assert_eq!(minimal.density, 1.0);
    }
}
