//! The scenario grammar: what a generated DI landscape looks like.
//!
//! A [`ScenarioSpec`] is a small, fully serializable description of a
//! data-integration scenario — topology plus a handful of continuous
//! knobs. Everything downstream (generation, shrinking, the regression
//! corpus) operates on this value, never on the generated matrices, so
//! a failing scenario can be pinned, minimized and replayed from a few
//! lines of JSON.

use serde::{get_field, DeError, Deserialize, Serialize, Value};

/// How the sources relate to one another.
///
/// Every topology has a distinguished *base* table whose rows define the
/// target rows (except [`Topology::ManyToMany`], where target rows are
/// link edges). The remaining sources augment it with feature columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One fact table, `satellites` dimension tables joined directly to
    /// it (PK–FK, fan-out ≥ 1).
    Star {
        /// Number of dimension tables (≥ 1).
        satellites: usize,
    },
    /// `arms` lookup chains of length `depth` hanging off the base —
    /// a star whose dimensions are themselves normalized.
    Snowflake {
        /// Number of chains (≥ 1).
        arms: usize,
        /// Tables per chain (≥ 1); `depth = 1` degenerates to a star.
        depth: usize,
    },
    /// A single multi-hop lookup chain `base → L₁ → … → L_hops`.
    Chain {
        /// Number of lookup hops (≥ 1).
        hops: usize,
    },
    /// Two entity tables related through a link set: one target row per
    /// M:N edge, *both* indicators carry fan-out.
    ManyToMany,
}

impl Topology {
    /// Number of source tables this topology produces.
    pub fn num_sources(&self) -> usize {
        match self {
            Topology::Star { satellites } => 1 + satellites,
            Topology::Snowflake { arms, depth } => 1 + arms * depth,
            Topology::Chain { hops } => 1 + hops,
            Topology::ManyToMany => 2,
        }
    }

    /// Short kind label used for coverage bucketing (`star`,
    /// `snowflake`, `chain`, `m:n`).
    pub fn kind(&self) -> &'static str {
        match self {
            Topology::Star { .. } => "star",
            Topology::Snowflake { .. } => "snowflake",
            Topology::Chain { .. } => "chain",
            Topology::ManyToMany => "m:n",
        }
    }
}

/// A complete, seed-deterministic description of one DI scenario.
///
/// The grammar's knobs:
///
/// | knob | effect |
/// |---|---|
/// | `topology` | star / snowflake / multi-hop chain / M:N link |
/// | `base_rows`, `base_cols` | fact-table shape (target rows for joins) |
/// | `dim_rows`, `dim_cols` | shape of every non-base table |
/// | `skew` | 0 = uniform FK draws; > 0 = power-law fan-out hotspots |
/// | `shared_cols` | per-satellite shared-column window into the base (a redundancy grid) |
/// | `sparse_mask` | bit `k` set → source `k` is generated sparse (COO → CSR → dense) |
/// | `density` | fill ratio of sparse sources |
/// | `coverage` | fraction of base rows matched by each satellite (1.0 = left-join full) |
/// | `seed` | the whole scenario is a pure function of (spec, seed) |
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Source relationship shape.
    pub topology: Topology,
    /// Rows of the base table (target rows for join topologies; number
    /// of link edges for [`Topology::ManyToMany`]).
    pub base_rows: usize,
    /// Feature columns of the base table.
    pub base_cols: usize,
    /// Rows of every non-base (dimension / lookup / entity) table.
    pub dim_rows: usize,
    /// Feature columns of every non-base table.
    pub dim_cols: usize,
    /// Fan-out skew exponent: FK draws use `u^(1+3·skew)`, so `0.0` is
    /// uniform and larger values concentrate references on a few hot
    /// dimension rows.
    pub skew: f64,
    /// Width of the shared-column window each satellite shares with the
    /// base (clamped to disjoint windows within `base_cols`). Ignored
    /// for [`Topology::ManyToMany`], where a consistent assignment does
    /// not exist in general.
    pub shared_cols: usize,
    /// Bitmask of sources generated through the sparse (COO → CSR)
    /// path; bit `k` addresses source `k` in metadata order.
    pub sparse_mask: u64,
    /// Non-zero fraction for sparse sources, in `(0, 1]`.
    pub density: f64,
    /// Fraction of base rows each satellite matches, in `(0, 1]`.
    pub coverage: f64,
    /// RNG seed; with the spec it fully determines the scenario.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self {
            topology: Topology::Star { satellites: 1 },
            base_rows: 80,
            base_cols: 3,
            dim_rows: 20,
            dim_cols: 6,
            skew: 0.0,
            shared_cols: 0,
            sparse_mask: 0,
            density: 1.0,
            coverage: 1.0,
            seed: 1,
        }
    }
}

impl ScenarioSpec {
    /// A deterministic "size" of the spec, strictly decreased by every
    /// [`shrink candidate`](ScenarioSpec::shrink_candidates) — the
    /// termination measure of the shrinking loop.
    pub fn complexity(&self) -> u64 {
        let topo = 8 * self.topology.num_sources() as u64;
        topo + (self.base_rows + self.dim_rows + self.base_cols + self.dim_cols + self.shared_cols)
            as u64
            + u64::from(self.skew > 0.0)
            + u64::from(self.sparse_mask != 0)
            + u64::from(self.density < 1.0)
            + u64::from(self.coverage < 1.0)
    }

    /// Coverage bucket label, `"<topology-kind>/<skew bucket>"` — the
    /// grouping key of `BENCH_coverage.json`.
    pub fn bucket(&self) -> String {
        let skew = if self.skew > 0.0 { "skewed" } else { "uniform" };
        format!("{}/{}", self.topology.kind(), skew)
    }
}

// --- serialization (regression corpus) -------------------------------------
//
// Hand-written against the vendored serde shim: `Topology` is an enum and
// the shim's derive only covers plain structs.

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        let fields = match self {
            Topology::Star { satellites } => vec![
                ("kind".to_owned(), Value::Str("star".to_owned())),
                ("satellites".to_owned(), Value::Int(*satellites as i64)),
            ],
            Topology::Snowflake { arms, depth } => vec![
                ("kind".to_owned(), Value::Str("snowflake".to_owned())),
                ("arms".to_owned(), Value::Int(*arms as i64)),
                ("depth".to_owned(), Value::Int(*depth as i64)),
            ],
            Topology::Chain { hops } => vec![
                ("kind".to_owned(), Value::Str("chain".to_owned())),
                ("hops".to_owned(), Value::Int(*hops as i64)),
            ],
            Topology::ManyToMany => vec![("kind".to_owned(), Value::Str("m:n".to_owned()))],
        };
        Value::Object(fields)
    }
}

impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind: String = get_field(v, "kind")?;
        match kind.as_str() {
            "star" => Ok(Topology::Star {
                satellites: get_field(v, "satellites")?,
            }),
            "snowflake" => Ok(Topology::Snowflake {
                arms: get_field(v, "arms")?,
                depth: get_field(v, "depth")?,
            }),
            "chain" => Ok(Topology::Chain {
                hops: get_field(v, "hops")?,
            }),
            "m:n" => Ok(Topology::ManyToMany),
            other => Err(DeError(format!("unknown topology kind `{other}`"))),
        }
    }
}

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("topology".to_owned(), self.topology.to_value()),
            ("base_rows".to_owned(), Value::Int(self.base_rows as i64)),
            ("base_cols".to_owned(), Value::Int(self.base_cols as i64)),
            ("dim_rows".to_owned(), Value::Int(self.dim_rows as i64)),
            ("dim_cols".to_owned(), Value::Int(self.dim_cols as i64)),
            ("skew".to_owned(), Value::Float(self.skew)),
            (
                "shared_cols".to_owned(),
                Value::Int(self.shared_cols as i64),
            ),
            (
                "sparse_mask".to_owned(),
                Value::Int(self.sparse_mask as i64),
            ),
            ("density".to_owned(), Value::Float(self.density)),
            ("coverage".to_owned(), Value::Float(self.coverage)),
            ("seed".to_owned(), Value::Int(self.seed as i64)),
        ])
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            topology: get_field(v, "topology")?,
            base_rows: get_field(v, "base_rows")?,
            base_cols: get_field(v, "base_cols")?,
            dim_rows: get_field(v, "dim_rows")?,
            dim_cols: get_field(v, "dim_cols")?,
            skew: get_field(v, "skew")?,
            shared_cols: get_field(v, "shared_cols")?,
            sparse_mask: get_field(v, "sparse_mask")?,
            density: get_field(v, "density")?,
            coverage: get_field(v, "coverage")?,
            seed: get_field(v, "seed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_counts_per_topology() {
        assert_eq!(Topology::Star { satellites: 3 }.num_sources(), 4);
        assert_eq!(Topology::Snowflake { arms: 2, depth: 2 }.num_sources(), 5);
        assert_eq!(Topology::Chain { hops: 3 }.num_sources(), 4);
        assert_eq!(Topology::ManyToMany.num_sources(), 2);
    }

    #[test]
    fn json_round_trip_every_topology() {
        for topology in [
            Topology::Star { satellites: 2 },
            Topology::Snowflake { arms: 2, depth: 3 },
            Topology::Chain { hops: 2 },
            Topology::ManyToMany,
        ] {
            let spec = ScenarioSpec {
                topology,
                skew: 0.7,
                shared_cols: 2,
                sparse_mask: 0b10,
                density: 0.25,
                coverage: 0.8,
                seed: 99,
                ..ScenarioSpec::default()
            };
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn bucket_labels() {
        let mut spec = ScenarioSpec::default();
        assert_eq!(spec.bucket(), "star/uniform");
        spec.skew = 0.9;
        spec.topology = Topology::ManyToMany;
        assert_eq!(spec.bucket(), "m:n/skewed");
    }
}
