//! The property-based differential gate: sampled scenarios across every
//! topology family must train identically factorized and materialized.
//!
//! On failure, [`check_and_shrink`] reports a *minimal* failing spec as
//! JSON — paste it into `crates/gen/corpus/regressions.json` alongside
//! the fix (see the corpus workflow in ROADMAP.md).

use amalur_gen::sample::SizeClass;
use amalur_gen::{check_and_shrink, sample_specs, Corpus, ScenarioSpec, ALL_WORKLOADS};

/// Sweep seed for this test — changing it explores a different slice of
/// the grammar; keep it pinned so failures reproduce.
const SWEEP_SEED: u64 = 0xD1FF;

#[test]
fn sampled_scenarios_are_equivalent_under_every_workload() {
    // 32 scenarios × 4 workloads × 2 paths; small sizes keep this under
    // a few seconds while covering all four topology families and every
    // knob region (the sampler forces dense/uniform points in too).
    let mut failures = Vec::new();
    for (i, spec) in sample_specs(SWEEP_SEED, 32, SizeClass::Small)
        .iter()
        .enumerate()
    {
        if let Err(message) = check_and_shrink(spec, &ALL_WORKLOADS) {
            failures.push(format!("scenario #{i}: {message}"));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

#[test]
fn regression_corpus_replays_green() {
    let violations = Corpus::builtin().replay(&ALL_WORKLOADS);
    assert!(
        violations.is_empty(),
        "{}",
        violations
            .iter()
            .map(|(e, m)| format!("[{}] {m}", e.note))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn generator_spec_plus_seed_is_bit_deterministic() {
    // Determinism property at the harness level: the same sampled spec
    // regenerates bit-identical metadata and source matrices, including
    // through the sparse COO→CSR path.
    for spec in sample_specs(SWEEP_SEED ^ 1, 16, SizeClass::Small) {
        let (md_a, data_a) = amalur_gen::generate(&spec).unwrap();
        let (md_b, data_b) = amalur_gen::generate(&spec).unwrap();
        assert_eq!(md_a, md_b, "metadata differs for {spec:?}");
        assert_eq!(data_a.len(), data_b.len());
        for (a, b) in data_a.iter().zip(&data_b) {
            assert_eq!(a.as_slice(), b.as_slice(), "data differs for {spec:?}");
        }
        // A seed change must actually move the scenario (not a constant
        // function of the spec shape).
        let reseeded = ScenarioSpec {
            seed: spec.seed ^ 0xFFFF,
            ..spec.clone()
        };
        let (_, data_c) = amalur_gen::generate(&reseeded).unwrap();
        assert_ne!(
            data_a[0].as_slice(),
            data_c[0].as_slice(),
            "seed had no effect for {spec:?}"
        );
    }
}
