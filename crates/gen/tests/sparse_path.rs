//! Sparse-source coverage: the COO → CSR plumbing under a generated
//! mixed sparse/dense scenario, end to end through the factorized path.

use amalur_factorize::FactorizedTable;
use amalur_gen::{generate, ScenarioSpec, Topology};
use amalur_matrix::{CooMatrix, CsrMatrix, DenseMatrix, NO_MATCH};

fn mixed_spec() -> ScenarioSpec {
    ScenarioSpec {
        topology: Topology::Star { satellites: 2 },
        base_rows: 30,
        base_cols: 3,
        dim_rows: 8,
        dim_cols: 4,
        shared_cols: 1,
        // Base dense, satellite 1 sparse, satellite 2 dense.
        sparse_mask: 0b010,
        density: 0.3,
        coverage: 0.9,
        seed: 2718,
        ..ScenarioSpec::default()
    }
}

/// Dense → COO → CSR → dense is the identity on every generated source,
/// sparse-generated or not.
#[test]
fn coo_to_csr_round_trips_generated_sources() {
    let (_, data) = generate(&mixed_spec()).unwrap();
    for (k, d) in data.iter().enumerate() {
        let (rows, cols) = d.shape();
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let v = d.get(i, j);
                if v != 0.0 {
                    coo.push(i, j, v).unwrap();
                }
            }
        }
        let csr = coo.to_csr();
        let back = csr.to_dense();
        assert_eq!(back.as_slice(), d.as_slice(), "source {k} round trip");
        // And the direct from_dense constructor agrees with the COO path.
        let direct = CsrMatrix::from_dense(d);
        assert_eq!(direct.to_dense().as_slice(), d.as_slice());
        assert_eq!(direct.nnz(), csr.nnz());
    }
}

/// The sparse-generated satellite really is sparse; its dense siblings
/// are not.
#[test]
fn sparsity_lands_on_the_masked_source_only() {
    let spec = mixed_spec();
    let (_, data) = generate(&spec).unwrap();
    let nnz_ratio = |d: &DenseMatrix| {
        let (r, c) = d.shape();
        d.as_slice().iter().filter(|v| **v != 0.0).count() as f64 / (r * c) as f64
    };
    assert!(
        nnz_ratio(&data[1]) < 0.6,
        "masked satellite should be sparse"
    );
    assert!(
        nnz_ratio(&data[2]) > 0.99,
        "unmasked satellite should be dense"
    );
    // The base is dense except where a sparse satellite's shared window
    // copied zeros in.
    assert!(nnz_ratio(&data[0]) > 0.5);
}

/// Factorized materialization of the mixed scenario equals a naive
/// assembly computed from CSR copies of every source — the sparse path
/// and the factorized path agree cell for cell.
#[test]
fn factorized_path_agrees_with_csr_assembly() {
    let (md, data) = generate(&mixed_spec()).unwrap();
    let (rows, cols) = (md.target_rows, md.target_cols());

    let mut expected = DenseMatrix::zeros(rows, cols);
    for (s, d) in md.sources.iter().zip(&data) {
        let csr = CsrMatrix::from_dense(d);
        let ci = s.indicator.compressed();
        let cm = s.mapping.compressed();
        for (i, &src_row) in ci.iter().enumerate() {
            if src_row == NO_MATCH {
                continue;
            }
            for (t, &src_col) in cm.iter().enumerate() {
                if src_col == NO_MATCH || s.redundancy.get(i, t) == 0.0 {
                    continue;
                }
                let v = csr.get(src_row as usize, src_col as usize);
                expected.set(i, t, expected.get(i, t) + v);
            }
        }
    }

    let ft = FactorizedTable::new(md, data).unwrap();
    assert_eq!(ft.materialize().as_slice(), expected.as_slice());
}
