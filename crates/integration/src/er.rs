//! Entity resolution: discovering row matches between source tables.
//!
//! The paper's running example links `S1`'s *Jane* with `S2`'s *Jane*
//! ("Same Entity", Fig. 2). This module produces such row matchings —
//! the input to the indicator matrices of §III-B — with a standard
//! blocking + similarity pipeline:
//!
//! 1. **Blocking**: candidate pairs are generated only within blocks that
//!    share a cheap key (the normalized first token of the entity key),
//!    avoiding the quadratic all-pairs comparison.
//! 2. **Similarity**: exact key equality scores 1.0; otherwise a
//!    Jaro–Winkler score over the rendered key values.
//! 3. **1:1 greedy resolution**: pairs are accepted in descending score
//!    order above a threshold, each row used at most once.
//!
//! The output is deliberately *approximate* metadata (§V-B: "the results
//! from an entity resolution approach... are most likely approximate"):
//! the threshold trades recall for precision, and downstream consumers
//! (federated learning in particular) must tolerate imperfect matches.

use crate::{IntegrationError, Result};
use amalur_relational::Table;
use std::collections::BTreeMap;

/// A scored row correspondence `(left row, right row)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowMatch {
    /// Row index in the left table.
    pub left: usize,
    /// Row index in the right table.
    pub right: usize,
    /// Match confidence in `[0, 1]`.
    pub score: f64,
}

/// Configuration for [`match_rows`].
#[derive(Debug, Clone)]
pub struct ErConfig {
    /// Minimum similarity for a candidate pair to be accepted.
    pub threshold: f64,
    /// When `true`, only exact key equality is considered (fast path for
    /// clean keys such as surrogate ids).
    pub exact_only: bool,
}

impl Default for ErConfig {
    fn default() -> Self {
        Self {
            threshold: 0.85,
            exact_only: false,
        }
    }
}

/// Resolves entities between `left` and `right` on the given key columns.
///
/// # Errors
/// Returns an error when a key column is missing.
pub fn match_rows(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    config: &ErConfig,
) -> Result<Vec<RowMatch>> {
    let lcol = left
        .column_by_name(left_key)
        .map_err(|_| IntegrationError::UnknownColumn(left_key.to_owned()))?;
    let rcol = right
        .column_by_name(right_key)
        .map_err(|_| IntegrationError::UnknownColumn(right_key.to_owned()))?;

    let lkeys: Vec<String> = (0..left.num_rows())
        .map(|i| lcol.get(i).to_string())
        .collect();
    let rkeys: Vec<String> = (0..right.num_rows())
        .map(|i| rcol.get(i).to_string())
        .collect();

    let mut candidates: Vec<RowMatch> = Vec::new();

    // Exact phase: key equality on the rendered key (NULL renders empty
    // and is skipped — NULL matches nothing). BTreeMap keeps iteration
    // (and hence candidate emission) in a deterministic order.
    let mut exact: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (j, k) in rkeys.iter().enumerate() {
        if !k.is_empty() {
            exact.entry(k.as_str()).or_default().push(j);
        }
    }
    let mut left_exactly_matched = vec![false; lkeys.len()];
    let mut right_exactly_matched = vec![false; rkeys.len()];
    for (i, k) in lkeys.iter().enumerate() {
        if k.is_empty() {
            continue;
        }
        if let Some(js) = exact.get(k.as_str()) {
            for &j in js {
                candidates.push(RowMatch {
                    left: i,
                    right: j,
                    score: 1.0,
                });
                left_exactly_matched[i] = true;
                right_exactly_matched[j] = true;
            }
        }
    }

    // Fuzzy phase with blocking: compare only rows whose normalized first
    // character agrees, and only rows not already matched exactly.
    if !config.exact_only {
        let block_of =
            |s: &str| -> Option<char> { s.chars().next().map(|c| c.to_ascii_lowercase()) };
        let mut blocks: BTreeMap<char, Vec<usize>> = BTreeMap::new();
        for (j, k) in rkeys.iter().enumerate() {
            if right_exactly_matched[j] {
                continue;
            }
            if let Some(b) = block_of(k) {
                blocks.entry(b).or_default().push(j);
            }
        }
        for (i, k) in lkeys.iter().enumerate() {
            if left_exactly_matched[i] || k.is_empty() {
                continue;
            }
            let Some(b) = block_of(k) else { continue };
            let Some(js) = blocks.get(&b) else { continue };
            for &j in js {
                let s = jaro_winkler(k, &rkeys[j]);
                if s >= config.threshold {
                    candidates.push(RowMatch {
                        left: i,
                        right: j,
                        score: s,
                    });
                }
            }
        }
    }

    // Greedy 1:1 resolution by descending score (deterministic ties).
    candidates.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.left.cmp(&y.left))
            .then_with(|| x.right.cmp(&y.right))
    });
    let mut used_left = vec![false; left.num_rows()];
    let mut used_right = vec![false; right.num_rows()];
    let mut out = Vec::new();
    for c in candidates {
        if used_left[c.left] || used_right[c.right] {
            continue;
        }
        used_left[c.left] = true;
        used_right[c.right] = true;
        out.push(c);
    }
    out.sort_by_key(|m| (m.left, m.right));
    Ok(out)
}

/// Jaro similarity of two strings.
fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                matches += 1;
                a_matched.push(ca);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let b_matched: Vec<char> = b
        .iter()
        .zip(&b_taken)
        .filter(|&(_, &t)| t)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(&b_matched)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by shared prefix (≤ 4 chars).
fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_relational::{DataType, TableBuilder, Value};

    fn left() -> Table {
        TableBuilder::new("S1", &[("n", DataType::Utf8), ("a", DataType::Float64)])
            .unwrap()
            .row(vec!["Jack".into(), 20.0.into()])
            .unwrap()
            .row(vec!["Sam".into(), 35.0.into()])
            .unwrap()
            .row(vec!["Ruby".into(), 22.0.into()])
            .unwrap()
            .row(vec!["Jane".into(), 37.0.into()])
            .unwrap()
            .build()
    }

    fn right() -> Table {
        TableBuilder::new("S2", &[("n", DataType::Utf8), ("o", DataType::Float64)])
            .unwrap()
            .row(vec!["Rose".into(), 95.0.into()])
            .unwrap()
            .row(vec!["Castiel".into(), 97.0.into()])
            .unwrap()
            .row(vec!["Jane".into(), 92.0.into()])
            .unwrap()
            .build()
    }

    #[test]
    fn running_example_matches_jane() {
        let matches = match_rows(&left(), &right(), "n", "n", &ErConfig::default()).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].left, 3);
        assert_eq!(matches[0].right, 2);
        assert_eq!(matches[0].score, 1.0);
    }

    #[test]
    fn fuzzy_matching_catches_typos() {
        let l = TableBuilder::new("l", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Johnathan Smith".into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Jonathan Smith".into()])
            .unwrap()
            .build();
        let matches = match_rows(&l, &r, "n", "n", &ErConfig::default()).unwrap();
        assert_eq!(matches.len(), 1);
        assert!(matches[0].score > 0.85 && matches[0].score < 1.0);
    }

    #[test]
    fn exact_only_mode_skips_fuzzy() {
        let l = TableBuilder::new("l", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Johnathan".into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Jonathan".into()])
            .unwrap()
            .build();
        let cfg = ErConfig {
            exact_only: true,
            ..ErConfig::default()
        };
        assert!(match_rows(&l, &r, "n", "n", &cfg).unwrap().is_empty());
    }

    #[test]
    fn blocking_prevents_cross_initial_comparisons() {
        // "Zane" vs "Jane" is close in edit distance but lives in a
        // different block, so the fuzzy phase never sees the pair.
        let l = TableBuilder::new("l", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Zane".into()])
            .unwrap()
            .build();
        let matches = match_rows(&l, &right(), "n", "n", &ErConfig::default()).unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn one_to_one_resolution() {
        // Two identical left keys, one right key: only one match survives.
        let l = TableBuilder::new("l", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Jane".into()])
            .unwrap()
            .row(vec!["Jane".into()])
            .unwrap()
            .build();
        let matches = match_rows(&l, &right(), "n", "n", &ErConfig::default()).unwrap();
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn nulls_never_match() {
        let l = TableBuilder::new("l", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec![Value::Null])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec![Value::Null])
            .unwrap()
            .build();
        assert!(match_rows(&l, &r, "n", "n", &ErConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn integer_keys_match_exactly() {
        let l = TableBuilder::new("l", &[("id", DataType::Int64)])
            .unwrap()
            .row(vec![7.into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("id", DataType::Int64)])
            .unwrap()
            .row(vec![7.into()])
            .unwrap()
            .row(vec![8.into()])
            .unwrap()
            .build();
        let matches = match_rows(&l, &r, "id", "id", &ErConfig::default()).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].right, 0);
    }

    #[test]
    fn unknown_key_column_errors() {
        assert!(match_rows(&left(), &right(), "nope", "n", &ErConfig::default()).is_err());
        assert!(match_rows(&left(), &right(), "n", "nope", &ErConfig::default()).is_err());
    }

    #[test]
    fn matching_is_deterministic_and_order_pinned() {
        // Ambiguous input: two fuzzy candidates per side competing for
        // the same rows, plus an exact tie. With hash-ordered blocking
        // the greedy resolution could flip between runs; the BTreeMap
        // containers pin the exact output.
        let l = TableBuilder::new("l", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Jane".into()])
            .unwrap()
            .row(vec!["Janet".into()])
            .unwrap()
            .row(vec!["Jan".into()])
            .unwrap()
            .row(vec!["Rose".into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("n", DataType::Utf8)])
            .unwrap()
            .row(vec!["Janett".into()])
            .unwrap()
            .row(vec!["Jane".into()])
            .unwrap()
            .row(vec!["Rosa".into()])
            .unwrap()
            .build();
        let expected = match_rows(&l, &r, "n", "n", &ErConfig::default()).unwrap();
        assert!(!expected.is_empty());
        // Output is sorted by (left, right) — a stable public order.
        for w in expected.windows(2) {
            assert!((w[0].left, w[0].right) < (w[1].left, w[1].right));
        }
        // Bit-identical across repeated runs in the same process (fresh
        // containers each call, so this exercises iteration order).
        for _ in 0..16 {
            let again = match_rows(&l, &r, "n", "n", &ErConfig::default()).unwrap();
            assert_eq!(again, expected);
        }
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.9611).abs() < 1e-3);
        assert!((jaro_winkler("DWAYNE", "DUANE") - 0.84).abs() < 1e-2);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("a", ""), 0.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }
}
