//! Error type for data integration operations.

use std::fmt;

/// Convenience alias for integration results.
pub type Result<T> = std::result::Result<T, IntegrationError>;

/// Errors produced while computing or applying DI metadata.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrationError {
    /// A tgd could not be parsed.
    TgdParse(String),
    /// The requested column does not exist in a source or target schema.
    UnknownColumn(String),
    /// Inconsistent metadata (e.g. a compressed mapping index out of range).
    InvalidMetadata(String),
    /// Schema matching / entity resolution produced no usable result.
    NoMatches(String),
    /// An input table has no rows; integration scenarios are only
    /// defined over non-empty sources.
    EmptyTable(String),
    /// Error bubbled up from the relational substrate.
    Relational(String),
    /// Error bubbled up from the matrix substrate.
    Matrix(String),
}

impl fmt::Display for IntegrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationError::TgdParse(m) => write!(f, "tgd parse error: {m}"),
            IntegrationError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            IntegrationError::InvalidMetadata(m) => write!(f, "invalid metadata: {m}"),
            IntegrationError::NoMatches(m) => write!(f, "no matches: {m}"),
            IntegrationError::EmptyTable(t) => write!(f, "empty table: {t} has no rows"),
            IntegrationError::Relational(m) => write!(f, "relational error: {m}"),
            IntegrationError::Matrix(m) => write!(f, "matrix error: {m}"),
        }
    }
}

impl std::error::Error for IntegrationError {}

impl From<amalur_relational::RelationalError> for IntegrationError {
    fn from(e: amalur_relational::RelationalError) -> Self {
        IntegrationError::Relational(e.to_string())
    }
}

impl From<amalur_matrix::MatrixError> for IntegrationError {
    fn from(e: amalur_matrix::MatrixError) -> Self {
        IntegrationError::Matrix(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(IntegrationError::TgdParse("x".into())
            .to_string()
            .contains("tgd"));
        let rel = amalur_relational::RelationalError::UnknownColumn("c".into());
        let e: IntegrationError = rel.into();
        assert!(matches!(e, IntegrationError::Relational(_)));
        let m = amalur_matrix::MatrixError::Singular;
        let e: IntegrationError = m.into();
        assert!(matches!(e, IntegrationError::Matrix(_)));
    }
}
