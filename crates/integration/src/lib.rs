//! Data integration metadata for Amalur.
//!
//! This crate implements §III of the paper — "Representation: a tale of
//! three matrices" — together with the DI processes that produce the
//! metadata those matrices encode:
//!
//! * [`tgd`] — source-to-target tuple-generating dependencies (s-t tgds),
//!   the schema-mapping formalism of the paper, with a small parser,
//!   full/non-full classification and the Table I scenario templates.
//! * [`matching`] — schema matching: discovering column correspondences
//!   between source tables by name, type and value overlap.
//! * [`er`] — entity resolution: discovering row matches between source
//!   tables by key equality or string similarity with blocking.
//! * [`metadata`] — the three matrices: mapping matrices `Mₖ`/`CMₖ`
//!   (Definitions III.1–III.2), indicator matrices `Iₖ`/`CIₖ`
//!   (Definition III.3) and redundancy matrices `Rₖ` (Definition III.4).
//! * [`scenario`] — the four dataset relationships of Table I (full outer
//!   join, inner join, left join, union) as integration planners that turn
//!   two source [`Table`]s into source data matrices `Dₖ` plus complete DI
//!   metadata.
//!
//! [`Table`]: amalur_relational::Table

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod er;
mod error;
pub mod matching;
pub mod metadata;
pub mod scenario;
pub mod star;
pub mod tgd;

pub use er::{match_rows, ErConfig, RowMatch};
pub use error::{IntegrationError, Result};
pub use matching::{match_schemas, ColumnMatch, MatchingConfig};
pub use metadata::{
    DiMetadata, DupBlock, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
};
pub use scenario::{
    integrate_pair, integrate_union, materialize_relationally, IntegrationOptions,
    IntegrationResult, ScenarioKind,
};
pub use star::{integrate_star, StarKind};
pub use tgd::{Atom, Tgd};
