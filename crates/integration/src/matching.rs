//! Schema matching: discovering column correspondences between sources.
//!
//! The metadata catalog of §II-A stores "column relationships from schema
//! matching". This module produces those relationships from the tables
//! themselves, combining three classic matcher families (cf. Rahm &
//! Bernstein's survey, cited as \[4\] in the paper):
//!
//! 1. **Name matchers** — exact and normalized (case/punctuation-folded)
//!    column-name equality.
//! 2. **Type compatibility** — candidates must have unifiable data types.
//! 3. **Instance (value-overlap) matchers** — Jaccard similarity of the
//!    distinct value sets of two columns.
//!
//! The combined score is a weighted sum; a greedy stable 1:1 assignment
//! above a threshold yields the final correspondences.

use amalur_relational::{DataType, Table};
use std::collections::BTreeSet;

/// A scored correspondence between a column of the left table and a
/// column of the right table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatch {
    /// Column name in the left table.
    pub left: String,
    /// Column name in the right table.
    pub right: String,
    /// Combined confidence in `[0, 1]`.
    pub score: f64,
}

/// Weights and threshold for [`match_schemas`].
#[derive(Debug, Clone)]
pub struct MatchingConfig {
    /// Weight of the name-similarity component.
    pub name_weight: f64,
    /// Weight of the value-overlap component.
    pub value_weight: f64,
    /// Minimum combined score for a correspondence to be emitted.
    pub threshold: f64,
    /// Maximum number of distinct values sampled per column for the
    /// instance matcher (bounds cost on large tables).
    pub value_sample: usize,
}

impl Default for MatchingConfig {
    fn default() -> Self {
        Self {
            name_weight: 0.6,
            value_weight: 0.4,
            threshold: 0.5,
            value_sample: 1000,
        }
    }
}

/// Normalizes a column name for comparison: lowercase alphanumerics only.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

/// Name similarity in `[0, 1]`: 1.0 for exact, 0.9 for normalized-equal,
/// otherwise a bigram Dice coefficient over the normalized names.
fn name_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let (na, nb) = (normalize(a), normalize(b));
    if !na.is_empty() && na == nb {
        return 0.9;
    }
    dice_bigrams(&na, &nb) * 0.8
}

/// Dice coefficient over character bigrams.
fn dice_bigrams(a: &str, b: &str) -> f64 {
    let bigrams = |s: &str| -> Vec<(char, char)> {
        let chars: Vec<char> = s.chars().collect();
        chars.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ba = bigrams(a);
    let bb = bigrams(b);
    if ba.is_empty() || bb.is_empty() {
        return if a == b && !a.is_empty() { 1.0 } else { 0.0 };
    }
    let set_a: BTreeSet<(char, char)> = ba.iter().copied().collect();
    let inter = bb.iter().filter(|g| set_a.contains(g)).count();
    2.0 * inter as f64 / (ba.len() + bb.len()) as f64
}

/// `true` when two column types can correspond (numeric types unify).
fn types_compatible(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

/// Jaccard similarity of distinct rendered values (up to `sample` each).
fn value_overlap(left: &Table, lcol: &str, right: &Table, rcol: &str, sample: usize) -> f64 {
    let distinct = |t: &Table, col: &str| -> BTreeSet<String> {
        // Callers validated the column name; an empty set (zero overlap)
        // is the defensive answer for the unreachable miss.
        let Ok(c) = t.column_by_name(col) else {
            return BTreeSet::new();
        };
        let mut out = BTreeSet::new();
        for i in 0..t.num_rows().min(sample) {
            let v = c.get(i);
            if !v.is_null() {
                out.insert(v.to_string());
            }
        }
        out
    };
    let a = distinct(left, lcol);
    let b = distinct(right, rcol);
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(&b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Discovers 1:1 column correspondences between `left` and `right`.
///
/// Every type-compatible column pair is scored with
/// `name_weight · name_sim + value_weight · jaccard`; pairs are then
/// assigned greedily by descending score (stable 1:1 matching) and
/// returned if the score clears `config.threshold`.
pub fn match_schemas(left: &Table, right: &Table, config: &MatchingConfig) -> Vec<ColumnMatch> {
    let mut candidates: Vec<ColumnMatch> = Vec::new();
    for lf in left.schema().fields() {
        for rf in right.schema().fields() {
            if !types_compatible(lf.dtype, rf.dtype) {
                continue;
            }
            let name_s = name_similarity(&lf.name, &rf.name);
            let value_s = value_overlap(left, &lf.name, right, &rf.name, config.value_sample);
            let score = config.name_weight * name_s + config.value_weight * value_s;
            if score >= config.threshold {
                candidates.push(ColumnMatch {
                    left: lf.name.clone(),
                    right: rf.name.clone(),
                    score,
                });
            }
        }
    }
    // Greedy 1:1 assignment by descending score; ties broken by name for
    // determinism.
    candidates.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.left.cmp(&y.left))
            .then_with(|| x.right.cmp(&y.right))
    });
    let mut used_left: BTreeSet<String> = BTreeSet::new();
    let mut used_right: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for c in candidates {
        if used_left.contains(&c.left) || used_right.contains(&c.right) {
            continue;
        }
        used_left.insert(c.left.clone());
        used_right.insert(c.right.clone());
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_relational::{DataType, TableBuilder, Value};

    fn er_table() -> Table {
        TableBuilder::new(
            "S1",
            &[
                ("mortality", DataType::Int64),
                ("name", DataType::Utf8),
                ("age", DataType::Float64),
                ("restingHR", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![0.into(), "Jack".into(), 20.0.into(), 60.0.into()])
        .unwrap()
        .row(vec![1.into(), "Jane".into(), 37.0.into(), 70.0.into()])
        .unwrap()
        .build()
    }

    fn pulmonary_table() -> Table {
        TableBuilder::new(
            "S2",
            &[
                ("mortality", DataType::Int64),
                ("name", DataType::Utf8),
                ("age", DataType::Float64),
                ("oxygen", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![1.into(), "Rose".into(), 45.0.into(), 95.0.into()])
        .unwrap()
        .row(vec![1.into(), "Jane".into(), 37.0.into(), 92.0.into()])
        .unwrap()
        .build()
    }

    #[test]
    fn exact_names_match() {
        let matches = match_schemas(&er_table(), &pulmonary_table(), &MatchingConfig::default());
        let pairs: Vec<(&str, &str)> = matches
            .iter()
            .map(|m| (m.left.as_str(), m.right.as_str()))
            .collect();
        assert!(pairs.contains(&("mortality", "mortality")));
        assert!(pairs.contains(&("name", "name")));
        assert!(pairs.contains(&("age", "age")));
        // restingHR and oxygen must NOT match each other.
        assert!(!pairs
            .iter()
            .any(|&(l, r)| l == "restingHR" && r == "oxygen"));
    }

    #[test]
    fn normalized_names_match() {
        let a = TableBuilder::new("a", &[("resting_hr", DataType::Float64)])
            .unwrap()
            .build();
        let b = TableBuilder::new("b", &[("RestingHR", DataType::Float64)])
            .unwrap()
            .build();
        let matches = match_schemas(&a, &b, &MatchingConfig::default());
        assert_eq!(matches.len(), 1);
        assert!(matches[0].score >= 0.5);
    }

    #[test]
    fn incompatible_types_never_match() {
        let a = TableBuilder::new("a", &[("x", DataType::Utf8)])
            .unwrap()
            .build();
        let b = TableBuilder::new("b", &[("x", DataType::Float64)])
            .unwrap()
            .build();
        assert!(match_schemas(&a, &b, &MatchingConfig::default()).is_empty());
    }

    #[test]
    fn numeric_types_unify() {
        let a = TableBuilder::new("a", &[("x", DataType::Int64)])
            .unwrap()
            .build();
        let b = TableBuilder::new("b", &[("x", DataType::Float64)])
            .unwrap()
            .build();
        assert_eq!(match_schemas(&a, &b, &MatchingConfig::default()).len(), 1);
    }

    #[test]
    fn value_overlap_helps_differently_named_columns() {
        let cfg = MatchingConfig {
            threshold: 0.3,
            ..MatchingConfig::default()
        };
        let a = TableBuilder::new("a", &[("patient", DataType::Utf8)])
            .unwrap()
            .row(vec!["Jane".into()])
            .unwrap()
            .row(vec!["Jack".into()])
            .unwrap()
            .build();
        let b = TableBuilder::new("b", &[("person", DataType::Utf8)])
            .unwrap()
            .row(vec!["Jane".into()])
            .unwrap()
            .row(vec!["Jack".into()])
            .unwrap()
            .build();
        let matches = match_schemas(&a, &b, &cfg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].left, "patient");
    }

    #[test]
    fn greedy_assignment_is_one_to_one() {
        let a = TableBuilder::new("a", &[("x", DataType::Float64), ("x2", DataType::Float64)])
            .unwrap()
            .build();
        let b = TableBuilder::new("b", &[("x", DataType::Float64)])
            .unwrap()
            .build();
        let matches = match_schemas(&a, &b, &MatchingConfig::default());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].left, "x"); // exact beats fuzzy
    }

    #[test]
    fn nulls_ignored_in_value_overlap() {
        let a = TableBuilder::new("a", &[("k", DataType::Utf8)])
            .unwrap()
            .row(vec![Value::Null])
            .unwrap()
            .build();
        let b = TableBuilder::new("b", &[("k", DataType::Utf8)])
            .unwrap()
            .row(vec![Value::Null])
            .unwrap()
            .build();
        // Only name evidence: 0.6 * 1.0 = 0.6 ≥ threshold.
        let matches = match_schemas(&a, &b, &MatchingConfig::default());
        assert_eq!(matches.len(), 1);
        assert!((matches[0].score - 0.6).abs() < 1e-9);
    }

    #[test]
    fn dice_bigrams_behaviour() {
        assert_eq!(dice_bigrams("night", "night"), 1.0);
        assert!(dice_bigrams("night", "nacht") > 0.0);
        assert_eq!(dice_bigrams("a", "b"), 0.0);
        assert_eq!(dice_bigrams("", ""), 0.0);
    }

    #[test]
    fn normalize_folds_case_and_punctuation() {
        assert_eq!(normalize("Resting_HR"), "restinghr");
        assert_eq!(normalize("date-diagnosed"), "datediagnosed");
    }
}
