//! The three matrices: mapping, indicator and redundancy (§III).
//!
//! * [`MappingMatrix`] — which source column feeds which target column
//!   (Definitions III.1/III.2). Stored compressed (`CMₖ`): a vector of
//!   length `c_T` whose entry `i` is the source column mapped to target
//!   column `i`, or `-1`.
//! * [`IndicatorMatrix`] — which source row feeds which target row
//!   (Definition III.3). Stored compressed (`CIₖ`): a vector of length
//!   `r_T` whose entry `i` is the source row mapped to target row `i`,
//!   or `-1`.
//! * [`RedundancyMatrix`] — which cells of the intermediate
//!   `Tₖ = Iₖ Dₖ Mₖᵀ` repeat values already contributed by an earlier
//!   source (Definition III.4). Zero cells form a union of row×column
//!   cross-product blocks (one per overlapping earlier source), which is
//!   stored structurally so that `r_T = 5M` rows never require a dense
//!   `r_T × c_T` materialization.

use crate::{IntegrationError, Result};
use amalur_matrix::{selection_matrix, CsrMatrix, DenseMatrix, NO_MATCH};

/// Compressed mapping matrix `CMₖ` (Definition III.2) with its expansion
/// to the full binary `Mₖ` (Definition III.1) on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingMatrix {
    /// `cm[i] = j` when source column `j` maps to target column `i`;
    /// `-1` when target column `i` has no counterpart in this source.
    cm: Vec<i64>,
    /// Number of mapped columns in the source table (`c_Sk`).
    source_cols: usize,
}

impl MappingMatrix {
    /// Builds a compressed mapping matrix, validating all indices.
    ///
    /// # Errors
    /// [`IntegrationError::InvalidMetadata`] when an index is out of range
    /// or a source column is mapped to more than one target column
    /// (the paper's matrices are sub-permutations: "each attribute in the
    /// source table is mapped to only one attribute in T").
    pub fn new(cm: Vec<i64>, source_cols: usize) -> Result<Self> {
        let mut seen = vec![false; source_cols];
        for &j in &cm {
            if j == NO_MATCH {
                continue;
            }
            let idx = usize::try_from(j).map_err(|_| {
                IntegrationError::InvalidMetadata(format!("negative mapping index {j}"))
            })?;
            if idx >= source_cols {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "mapping index {idx} out of range for source with {source_cols} columns"
                )));
            }
            if seen[idx] {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "source column {idx} mapped to multiple target columns"
                )));
            }
            seen[idx] = true;
        }
        Ok(Self { cm, source_cols })
    }

    /// The compressed vector `CMₖ`.
    pub fn compressed(&self) -> &[i64] {
        &self.cm
    }

    /// Number of target columns (`c_T`).
    pub fn target_cols(&self) -> usize {
        self.cm.len()
    }

    /// Number of mapped source columns (`c_Sk`).
    pub fn source_cols(&self) -> usize {
        self.source_cols
    }

    /// Target columns that have a counterpart in this source.
    pub fn mapped_target_cols(&self) -> Vec<usize> {
        self.cm
            .iter()
            .enumerate()
            .filter(|(_, &j)| j != NO_MATCH)
            .map(|(i, _)| i)
            .collect()
    }

    /// Expands to the full binary matrix `Mₖ` of shape `c_T × c_Sk`.
    pub fn to_dense(&self) -> DenseMatrix {
        // Entries were range-checked on construction; the zero matrix is
        // the defensive fallback for the unreachable error branch.
        selection_matrix(&self.cm, self.source_cols)
            .unwrap_or_else(|_| DenseMatrix::zeros(self.cm.len(), self.source_cols))
    }

    /// Expands to CSR (useful for the sparse ablation path).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_dense(&self.to_dense())
    }
}

/// Compressed indicator matrix `CIₖ` (Definition III.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndicatorMatrix {
    /// `ci[i] = j` when source row `j` maps to target row `i`; `-1`
    /// otherwise.
    ci: Vec<i64>,
    /// Number of rows in the source table (`r_Sk`).
    source_rows: usize,
}

impl IndicatorMatrix {
    /// Builds a compressed indicator matrix, validating indices. Unlike
    /// mapping matrices, a source row *may* feed several target rows
    /// (PK–FK joins duplicate dimension rows), so duplicates are allowed.
    pub fn new(ci: Vec<i64>, source_rows: usize) -> Result<Self> {
        for &j in &ci {
            if j == NO_MATCH {
                continue;
            }
            let idx = usize::try_from(j).map_err(|_| {
                IntegrationError::InvalidMetadata(format!("negative indicator index {j}"))
            })?;
            if idx >= source_rows {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "indicator index {idx} out of range for source with {source_rows} rows"
                )));
            }
        }
        Ok(Self { ci, source_rows })
    }

    /// The compressed vector `CIₖ`.
    pub fn compressed(&self) -> &[i64] {
        &self.ci
    }

    /// Number of target rows (`r_T`).
    pub fn target_rows(&self) -> usize {
        self.ci.len()
    }

    /// Number of source rows (`r_Sk`).
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// Target rows that have a counterpart in this source.
    pub fn mapped_target_rows(&self) -> Vec<usize> {
        self.ci
            .iter()
            .enumerate()
            .filter(|(_, &j)| j != NO_MATCH)
            .map(|(i, _)| i)
            .collect()
    }

    /// Expands to the full binary matrix `Iₖ` of shape `r_T × r_Sk`.
    pub fn to_dense(&self) -> DenseMatrix {
        // Entries were range-checked on construction; the zero matrix is
        // the defensive fallback for the unreachable error branch.
        selection_matrix(&self.ci, self.source_rows)
            .unwrap_or_else(|_| DenseMatrix::zeros(self.ci.len(), self.source_rows))
    }

    /// Expands to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_dense(&self.to_dense())
    }
}

/// One cross-product block of redundant cells: every `(row, col)` pair in
/// `rows × cols` is a zero of the redundancy matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DupBlock {
    /// Target row indices covered by both this source and an earlier one.
    pub rows: Vec<usize>,
    /// Target column indices mapped by both this source and that same
    /// earlier source.
    pub cols: Vec<usize>,
}

/// Redundancy matrix `Rₖ` (Definition III.4), stored structurally.
///
/// `Rₖ[i, j] = 0` iff `(i, j)` lies in at least one [`DupBlock`]; all
/// other entries are 1. The base table's matrix is all ones (no blocks).
///
/// The per-row zero-column sets are precomputed at construction: the
/// factorized rewrites consult them on every operator call, so they must
/// be read-only lookups, not rebuilds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyMatrix {
    rows: usize,
    cols: usize,
    blocks: Vec<DupBlock>,
    /// Deduplicated zero cells grouped by row, sorted by row.
    zero_by_row: Vec<(usize, Vec<usize>)>,
}

/// Builds the sorted, deduplicated per-row zero-column index.
fn index_zero_cells(blocks: &[DupBlock]) -> Vec<(usize, Vec<usize>)> {
    let mut row_cols: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for b in blocks {
        for &r in &b.rows {
            row_cols.entry(r).or_default().extend_from_slice(&b.cols);
        }
    }
    row_cols
        .into_iter()
        .map(|(r, mut cols)| {
            cols.sort_unstable();
            cols.dedup();
            (r, cols)
        })
        .collect()
}

impl RedundancyMatrix {
    /// The all-ones matrix — used for the base table, which is never
    /// redundant with respect to itself.
    pub fn all_ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            blocks: Vec::new(),
            zero_by_row: Vec::new(),
        }
    }

    /// Builds a redundancy matrix from explicit duplicate blocks. Block
    /// indices are sorted and deduplicated.
    ///
    /// # Errors
    /// [`IntegrationError::InvalidMetadata`] when a block index is out of
    /// range.
    pub fn from_blocks(rows: usize, cols: usize, mut blocks: Vec<DupBlock>) -> Result<Self> {
        for b in &mut blocks {
            b.rows.sort_unstable();
            b.rows.dedup();
            b.cols.sort_unstable();
            b.cols.dedup();
        }
        for b in &blocks {
            if let Some(&r) = b.rows.iter().find(|&&r| r >= rows) {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "redundancy block row {r} out of range ({rows} rows)"
                )));
            }
            if let Some(&c) = b.cols.iter().find(|&&c| c >= cols) {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "redundancy block col {c} out of range ({cols} cols)"
                )));
            }
        }
        let zero_by_row = index_zero_cells(&blocks);
        Ok(Self {
            rows,
            cols,
            blocks,
            zero_by_row,
        })
    }

    /// Computes `Rₖ` for source `k` against all earlier sources
    /// (Definition III.4 with source 0 as base table): the cell `(i, j)`
    /// of `Tₖ` is redundant iff some earlier source `k' < k` also covers
    /// target row `i` *and* target column `j`.
    pub fn against_earlier(
        earlier: &[(&IndicatorMatrix, &MappingMatrix)],
        own_indicator: &IndicatorMatrix,
        own_mapping: &MappingMatrix,
    ) -> Result<Self> {
        let rows = own_indicator.target_rows();
        let cols = own_mapping.target_cols();
        let own_rows: Vec<bool> = own_indicator
            .compressed()
            .iter()
            .map(|&j| j != NO_MATCH)
            .collect();
        let own_cols: Vec<bool> = own_mapping
            .compressed()
            .iter()
            .map(|&j| j != NO_MATCH)
            .collect();
        let mut blocks = Vec::new();
        for (ind, map) in earlier {
            if ind.target_rows() != rows || map.target_cols() != cols {
                return Err(IntegrationError::InvalidMetadata(
                    "metadata of earlier source disagrees on target shape".into(),
                ));
            }
            let shared_rows: Vec<usize> = ind
                .compressed()
                .iter()
                .enumerate()
                .filter(|&(i, &j)| j != NO_MATCH && own_rows[i])
                .map(|(i, _)| i)
                .collect();
            let shared_cols: Vec<usize> = map
                .compressed()
                .iter()
                .enumerate()
                .filter(|&(c, &j)| j != NO_MATCH && own_cols[c])
                .map(|(c, _)| c)
                .collect();
            if !shared_rows.is_empty() && !shared_cols.is_empty() {
                blocks.push(DupBlock {
                    rows: shared_rows,
                    cols: shared_cols,
                });
            }
        }
        let zero_by_row = index_zero_cells(&blocks);
        Ok(Self {
            rows,
            cols,
            blocks,
            zero_by_row,
        })
    }

    /// Matrix shape (`r_T × c_T`).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when no cell is redundant (all-ones matrix).
    pub fn is_all_ones(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The duplicate blocks.
    pub fn blocks(&self) -> &[DupBlock] {
        &self.blocks
    }

    /// Value of `Rₖ[i, j]` (0.0 or 1.0).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.zero_by_row.binary_search_by_key(&i, |(r, _)| *r) {
            Ok(pos) if self.zero_by_row[pos].1.binary_search(&j).is_ok() => 0.0,
            _ => 1.0,
        }
    }

    /// Number of zero (redundant) cells, counting overlapping blocks once.
    pub fn zero_count(&self) -> usize {
        self.zero_by_row.iter().map(|(_, cols)| cols.len()).sum()
    }

    /// Per-row deduplicated zero columns (sorted by row, columns sorted)
    /// — the index the factorized redundancy corrections iterate.
    pub fn zero_cells_by_row(&self) -> &[(usize, Vec<usize>)] {
        &self.zero_by_row
    }

    /// Expands to the dense binary matrix of Definition III.4. Intended
    /// for tests and small illustrative outputs (Figure 4), not for the
    /// large benchmark shapes.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::ones(self.rows, self.cols);
        for (r, cols) in self.zero_cells_by_row() {
            for &c in cols {
                out.set(*r, c, 0.0);
            }
        }
        out
    }
}

/// Complete DI metadata for one source table.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceMetadata {
    /// Source table name.
    pub name: String,
    /// Mapped source column names, in source order — the columns of `Dₖ`.
    pub mapped_columns: Vec<String>,
    /// Mapping matrix `Mₖ` / `CMₖ`.
    pub mapping: MappingMatrix,
    /// Indicator matrix `Iₖ` / `CIₖ`.
    pub indicator: IndicatorMatrix,
    /// Redundancy matrix `Rₖ`.
    pub redundancy: RedundancyMatrix,
}

/// DI metadata for an integration task: the target schema plus one
/// [`SourceMetadata`] per source (source 0 is the base table).
#[derive(Debug, Clone, PartialEq)]
pub struct DiMetadata {
    /// Target (mediated) schema column names — `T(m, a, hr, o)` in the
    /// running example.
    pub target_columns: Vec<String>,
    /// Number of target rows `r_T`.
    pub target_rows: usize,
    /// Per-source metadata, base table first.
    pub sources: Vec<SourceMetadata>,
}

impl DiMetadata {
    /// Number of target columns `c_T`.
    pub fn target_cols(&self) -> usize {
        self.target_columns.len()
    }

    /// Validates cross-source consistency of the metadata shapes.
    ///
    /// # Errors
    /// [`IntegrationError::InvalidMetadata`] when a source's matrices
    /// disagree with the target shape.
    pub fn validate(&self) -> Result<()> {
        for s in &self.sources {
            if s.mapping.target_cols() != self.target_cols() {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "source {}: mapping has {} target cols, expected {}",
                    s.name,
                    s.mapping.target_cols(),
                    self.target_cols()
                )));
            }
            if s.indicator.target_rows() != self.target_rows {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "source {}: indicator has {} target rows, expected {}",
                    s.name,
                    s.indicator.target_rows(),
                    self.target_rows
                )));
            }
            if s.redundancy.shape() != (self.target_rows, self.target_cols()) {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "source {}: redundancy shape {:?} does not match target {:?}",
                    s.name,
                    s.redundancy.shape(),
                    (self.target_rows, self.target_cols())
                )));
            }
            if s.mapping.source_cols() != s.mapped_columns.len() {
                return Err(IntegrationError::InvalidMetadata(format!(
                    "source {}: mapping declares {} source cols but {} column names",
                    s.name,
                    s.mapping.source_cols(),
                    s.mapped_columns.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CM₁/CM₂ and CI₁/CI₂ of Figure 4 (running example).
    fn figure4_metadata() -> (
        MappingMatrix,
        MappingMatrix,
        IndicatorMatrix,
        IndicatorMatrix,
    ) {
        // Target T(m, a, hr, o); S1 maps (m,a,hr) = cols 0,1,2; S2 maps (m,a,o).
        let cm1 = MappingMatrix::new(vec![0, 1, 2, NO_MATCH], 3).unwrap();
        let cm2 = MappingMatrix::new(vec![0, 1, NO_MATCH, 2], 3).unwrap();
        // Target rows: Jack, Sam, Ruby, Jane, Rose, Castiel (6 rows).
        // S1 rows 0..4 are Jack, Sam, Ruby, Jane; S2 rows 0..3 are Rose,
        // Castiel, Jane.
        let ci1 = IndicatorMatrix::new(vec![0, 1, 2, 3, NO_MATCH, NO_MATCH], 4).unwrap();
        let ci2 = IndicatorMatrix::new(vec![NO_MATCH, NO_MATCH, NO_MATCH, 2, 0, 1], 3).unwrap();
        (cm1, cm2, ci1, ci2)
    }

    #[test]
    fn mapping_matrix_figure4a() {
        let (cm1, cm2, _, _) = figure4_metadata();
        let m1 = cm1.to_dense();
        // Figure 4a: M1 rows (T.m, T.a, T.hr, T.o) × cols (S1.m, S1.a, S1.hr)
        assert_eq!(m1.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m1.row(1), &[0.0, 1.0, 0.0]);
        assert_eq!(m1.row(2), &[0.0, 0.0, 1.0]);
        assert_eq!(m1.row(3), &[0.0, 0.0, 0.0]);
        let m2 = cm2.to_dense();
        assert_eq!(m2.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m2.row(1), &[0.0, 1.0, 0.0]);
        assert_eq!(m2.row(2), &[0.0, 0.0, 0.0]);
        assert_eq!(m2.row(3), &[0.0, 0.0, 1.0]);
        assert_eq!(cm1.mapped_target_cols(), vec![0, 1, 2]);
        assert_eq!(cm2.mapped_target_cols(), vec![0, 1, 3]);
    }

    #[test]
    fn mapping_matrix_validation() {
        assert!(MappingMatrix::new(vec![0, 2], 3).is_ok());
        assert!(MappingMatrix::new(vec![0, NO_MATCH], 3).is_ok());
        assert!(MappingMatrix::new(vec![0, 5], 3).is_err()); // out of range
        assert!(MappingMatrix::new(vec![0, 0], 3).is_err()); // duplicate source col
        assert!(MappingMatrix::new(vec![-7], 3).is_err()); // invalid negative
    }

    #[test]
    fn indicator_matrix_allows_duplicates() {
        // PK–FK join: dimension row 0 feeds two target rows.
        let i = IndicatorMatrix::new(vec![0, 0, 1], 2).unwrap();
        assert_eq!(i.mapped_target_rows(), vec![0, 1, 2]);
        assert!(IndicatorMatrix::new(vec![5], 2).is_err());
    }

    #[test]
    fn indicator_to_dense() {
        let (_, _, _, ci2) = figure4_metadata();
        let i2 = ci2.to_dense();
        assert_eq!(i2.shape(), (6, 3));
        assert_eq!(i2.get(3, 2), 1.0); // Jane: target row 3 ← S2 row 2
        assert_eq!(i2.get(4, 0), 1.0); // Rose
        assert_eq!(i2.get(0, 0), 0.0);
    }

    #[test]
    fn redundancy_matrix_figure4c() {
        let (cm1, cm2, ci1, ci2) = figure4_metadata();
        let r2 = RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &ci2, &cm2).unwrap();
        // Only Jane's row (target row 3) is shared; shared mapped columns
        // are m (0) and a (1). T2's hr column is unmapped, o is S2-only.
        assert_eq!(r2.get(3, 0), 0.0);
        assert_eq!(r2.get(3, 1), 0.0);
        assert_eq!(r2.get(3, 2), 1.0);
        assert_eq!(r2.get(3, 3), 1.0);
        assert_eq!(r2.get(4, 0), 1.0); // Rose's row is not redundant
        assert_eq!(r2.zero_count(), 2);
        let dense = r2.to_dense();
        assert_eq!(dense.sum(), 24.0 - 2.0);
    }

    #[test]
    fn base_table_redundancy_is_all_ones() {
        let r = RedundancyMatrix::all_ones(6, 4);
        assert!(r.is_all_ones());
        assert_eq!(r.zero_count(), 0);
        assert_eq!(r.to_dense(), DenseMatrix::ones(6, 4));
    }

    #[test]
    fn redundancy_from_blocks_validates() {
        assert!(RedundancyMatrix::from_blocks(
            3,
            3,
            vec![DupBlock {
                rows: vec![5],
                cols: vec![0]
            }]
        )
        .is_err());
        assert!(RedundancyMatrix::from_blocks(
            3,
            3,
            vec![DupBlock {
                rows: vec![0],
                cols: vec![7]
            }]
        )
        .is_err());
    }

    #[test]
    fn overlapping_blocks_count_once() {
        let r = RedundancyMatrix::from_blocks(
            4,
            4,
            vec![
                DupBlock {
                    rows: vec![0, 1],
                    cols: vec![0, 1],
                },
                DupBlock {
                    rows: vec![1, 2],
                    cols: vec![1, 2],
                },
            ],
        )
        .unwrap();
        // Cells: {0,1}×{0,1} ∪ {1,2}×{1,2} = {(0,0),(0,1),(1,0),(1,1),(1,2),(2,1),(2,2)}
        assert_eq!(r.zero_count(), 7);
        assert_eq!(r.get(1, 1), 0.0);
        assert_eq!(r.get(0, 2), 1.0);
        let cells = r.zero_cells_by_row();
        assert_eq!(cells[1], (1, vec![0, 1, 2]));
    }

    #[test]
    fn against_earlier_shape_mismatch() {
        let (cm1, cm2, ci1, _) = figure4_metadata();
        let short_ci = IndicatorMatrix::new(vec![0], 3).unwrap();
        assert!(RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &short_ci, &cm2).is_err());
    }

    #[test]
    fn no_shared_rows_means_all_ones() {
        // Union scenario: disjoint rows.
        let cm1 = MappingMatrix::new(vec![0, 1], 2).unwrap();
        let cm2 = MappingMatrix::new(vec![0, 1], 2).unwrap();
        let ci1 = IndicatorMatrix::new(vec![0, 1, NO_MATCH, NO_MATCH], 2).unwrap();
        let ci2 = IndicatorMatrix::new(vec![NO_MATCH, NO_MATCH, 0, 1], 2).unwrap();
        let r2 = RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &ci2, &cm2).unwrap();
        assert!(r2.is_all_ones());
    }

    #[test]
    fn di_metadata_validate() {
        let (cm1, cm2, ci1, ci2) = figure4_metadata();
        let r1 = RedundancyMatrix::all_ones(6, 4);
        let r2 = RedundancyMatrix::against_earlier(&[(&ci1, &cm1)], &ci2, &cm2).unwrap();
        let md = DiMetadata {
            target_columns: vec!["m".into(), "a".into(), "hr".into(), "o".into()],
            target_rows: 6,
            sources: vec![
                SourceMetadata {
                    name: "S1".into(),
                    mapped_columns: vec!["m".into(), "a".into(), "hr".into()],
                    mapping: cm1,
                    indicator: ci1,
                    redundancy: r1,
                },
                SourceMetadata {
                    name: "S2".into(),
                    mapped_columns: vec!["m".into(), "a".into(), "o".into()],
                    mapping: cm2,
                    indicator: ci2,
                    redundancy: r2,
                },
            ],
        };
        assert!(md.validate().is_ok());
        assert_eq!(md.target_cols(), 4);

        let mut bad = md.clone();
        bad.target_rows = 5;
        assert!(bad.validate().is_err());

        let mut bad2 = md;
        bad2.sources[0].mapped_columns.pop();
        assert!(bad2.validate().is_err());
    }
}
