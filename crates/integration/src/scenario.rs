//! The four dataset relationships of Table I as integration planners.
//!
//! Given two source tables, a scenario kind and an entity key, these
//! planners run schema matching and entity resolution, decide the target
//! (mediated) schema, and emit everything the downstream ML layers need:
//! the source data matrices `Dₖ`, the complete [`DiMetadata`] (mapping,
//! indicator and redundancy matrices) and the defining tgds.
//!
//! | Scenario | Paper example | Target rows |
//! |---|---|---|
//! | [`ScenarioKind::FullOuterJoin`] | Example 1 | left ∪ matched ∪ right-only |
//! | [`ScenarioKind::InnerJoin`]     | Example 2 | matched only |
//! | [`ScenarioKind::LeftJoin`]      | Example 3 | all left |
//! | [`ScenarioKind::Union`]         | Example 4 | left ++ right |

use crate::er::{match_rows, ErConfig, RowMatch};
use crate::matching::{match_schemas, ColumnMatch, MatchingConfig};
use crate::metadata::{
    DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
};
use crate::tgd::{Atom, Tgd};
use crate::{IntegrationError, Result};
use amalur_matrix::{DenseMatrix, NO_MATCH};
use amalur_relational::{hash_join, union_all, JoinType, Table};

/// The dataset relationship between sources and target (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Example 1: all rows from both sources, matched entities merged.
    FullOuterJoin,
    /// Example 2: only entities present in both sources.
    InnerJoin,
    /// Example 3: all left rows, augmented where the right matches.
    LeftJoin,
    /// Example 4: disjoint row sets over a shared feature schema.
    Union,
}

impl ScenarioKind {
    /// The relational join type that materializes this scenario
    /// (union has none).
    pub fn join_type(&self) -> Option<JoinType> {
        match self {
            ScenarioKind::FullOuterJoin => Some(JoinType::FullOuter),
            ScenarioKind::InnerJoin => Some(JoinType::Inner),
            ScenarioKind::LeftJoin => Some(JoinType::Left),
            ScenarioKind::Union => None,
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScenarioKind::FullOuterJoin => "full outer join",
            ScenarioKind::InnerJoin => "inner join",
            ScenarioKind::LeftJoin => "left join",
            ScenarioKind::Union => "union",
        };
        f.write_str(s)
    }
}

/// Options for [`integrate_pair`].
#[derive(Debug, Clone)]
pub struct IntegrationOptions {
    /// Entity-key columns `(left, right)` used by entity resolution; the
    /// key is identification metadata, not a feature, so it is excluded
    /// from the target schema (like `n` in the running example).
    pub key: (String, String),
    /// Explicit column correspondences; when `None`, schema matching
    /// discovers them.
    pub column_matches: Option<Vec<(String, String)>>,
    /// Entity-resolution configuration.
    pub er: ErConfig,
    /// Schema-matching configuration.
    pub matching: MatchingConfig,
    /// Value used to encode NULLs when converting tables to matrices.
    pub null_value: f64,
}

impl IntegrationOptions {
    /// Options with the given entity key and defaults elsewhere
    /// (fuzzy entity resolution — the paper's approximate-ER setting).
    pub fn with_key(left: impl Into<String>, right: impl Into<String>) -> Self {
        Self {
            key: (left.into(), right.into()),
            column_matches: None,
            er: ErConfig::default(),
            matching: MatchingConfig::default(),
            null_value: 0.0,
        }
    }

    /// Options for clean identifier keys: entity resolution by exact
    /// equality only (ids, surrogate keys).
    pub fn with_exact_key(left: impl Into<String>, right: impl Into<String>) -> Self {
        let mut opts = Self::with_key(left, right);
        opts.er.exact_only = true;
        opts
    }
}

/// Everything an integration planner produces.
#[derive(Debug, Clone)]
pub struct IntegrationResult {
    /// Scenario that was planned.
    pub kind: ScenarioKind,
    /// The three matrices per source, plus the target schema.
    pub metadata: DiMetadata,
    /// Source data matrices `Dₖ` (mapped numeric columns only).
    pub source_data: Vec<DenseMatrix>,
    /// The schema mappings defining the scenario.
    pub tgds: Vec<Tgd>,
    /// Entity-resolution output (left/right row pairs).
    pub row_matches: Vec<RowMatch>,
    /// Schema-matching output (left/right column pairs).
    pub column_matches: Vec<ColumnMatch>,
}

/// Numeric feature columns of a table, excluding the entity key.
fn feature_columns<'t>(t: &'t Table, key: &str) -> Vec<&'t str> {
    t.numeric_column_names()
        .into_iter()
        .filter(|c| *c != key)
        .collect()
}

/// Plans the integration of two source tables under the given scenario.
///
/// Source 0 (the left table) is the base table for redundancy purposes:
/// overlapping values in the right table are marked redundant (§III-C).
///
/// Empty source tables are *not* an error here: a silo that contributed
/// no rows yet is still a valid integration partner, and the outer-join
/// kinds flow it through as a (possibly zero-row) target. Only when both
/// sources carry rows and entity resolution still leaves the target
/// empty — an inner join over disjoint or all-NULL keys — is the empty
/// result a matching failure worth surfacing.
///
/// # Errors
/// * [`IntegrationError::UnknownColumn`] for missing key columns.
/// * [`IntegrationError::NoMatches`] when a union scenario finds no shared
///   feature columns, or when entity resolution over two *non-empty*
///   sources leaves the target empty (e.g. an inner join over disjoint
///   or all-NULL keys).
pub fn integrate_pair(
    left: &Table,
    right: &Table,
    kind: ScenarioKind,
    opts: &IntegrationOptions,
) -> Result<IntegrationResult> {
    let (lkey, rkey) = (&opts.key.0, &opts.key.1);
    left.schema()
        .index_of(lkey)
        .map_err(|_| IntegrationError::UnknownColumn(lkey.clone()))?;
    right
        .schema()
        .index_of(rkey)
        .map_err(|_| IntegrationError::UnknownColumn(rkey.clone()))?;

    // --- Column correspondences (schema matching) -----------------------
    let column_matches: Vec<ColumnMatch> = match &opts.column_matches {
        Some(given) => given
            .iter()
            .map(|(l, r)| ColumnMatch {
                left: l.clone(),
                right: r.clone(),
                score: 1.0,
            })
            .collect(),
        None => match_schemas(left, right, &opts.matching),
    };
    // Keep only numeric feature correspondences (key columns are handled
    // by ER, not by the mapping matrices).
    let left_features = feature_columns(left, lkey);
    let right_features = feature_columns(right, rkey);
    let feature_matches: Vec<&ColumnMatch> = column_matches
        .iter()
        .filter(|m| {
            left_features.contains(&m.left.as_str()) && right_features.contains(&m.right.as_str())
        })
        .collect();

    // --- Target (mediated) schema ---------------------------------------
    // Join scenarios: all left features, then unmatched right features.
    // Union: only the shared features.
    let right_match_of_left = |l: &str| -> Option<&str> {
        feature_matches
            .iter()
            .find(|m| m.left == l)
            .map(|m| m.right.as_str())
    };
    let left_match_of_right = |r: &str| -> Option<&str> {
        feature_matches
            .iter()
            .find(|m| m.right == r)
            .map(|m| m.left.as_str())
    };
    let target_columns: Vec<String> = match kind {
        ScenarioKind::Union => left_features
            .iter()
            .filter(|l| right_match_of_left(l).is_some())
            .map(|l| (*l).to_owned())
            .collect(),
        _ => {
            let mut cols: Vec<String> = left_features.iter().map(|l| (*l).to_owned()).collect();
            cols.extend(
                right_features
                    .iter()
                    .filter(|r| left_match_of_right(r).is_none())
                    .map(|r| (*r).to_owned()),
            );
            cols
        }
    };
    if target_columns.is_empty() {
        return Err(IntegrationError::NoMatches(format!(
            "no target columns for {kind} of {} and {}",
            left.name(),
            right.name()
        )));
    }

    // --- Mapped source columns and mapping matrices ---------------------
    // Left source: every left feature present in the target.
    let left_mapped: Vec<String> = left_features
        .iter()
        .filter(|l| target_columns.iter().any(|t| t == *l))
        .map(|l| (*l).to_owned())
        .collect();
    // Right source: the right-hand side of each surviving match, plus the
    // right-only columns present in the target — in right-schema order.
    let right_mapped: Vec<String> = right_features
        .iter()
        .filter(|r| match left_match_of_right(r) {
            Some(l) => target_columns.iter().any(|t| t == l),
            None => target_columns.iter().any(|t| t == *r),
        })
        .map(|r| (*r).to_owned())
        .collect();

    let cm1: Vec<i64> = target_columns
        .iter()
        .map(|t| {
            left_mapped
                .iter()
                .position(|c| c == t)
                .map_or(NO_MATCH, |p| p as i64)
        })
        .collect();
    let cm2: Vec<i64> = target_columns
        .iter()
        .map(|t| {
            // A target column maps into the right source either through a
            // column match (shared column named after the left side) or
            // directly (right-only column).
            let right_name = right_match_of_left(t).unwrap_or(t.as_str());
            right_mapped
                .iter()
                .position(|c| c == right_name)
                .map_or(NO_MATCH, |p| p as i64)
        })
        .collect();
    let mapping1 = MappingMatrix::new(cm1, left_mapped.len())?;
    let mapping2 = MappingMatrix::new(cm2, right_mapped.len())?;

    // --- Row alignment (entity resolution) ------------------------------
    let row_matches = if kind == ScenarioKind::Union {
        Vec::new() // Example 4 presumes disjoint row sets.
    } else {
        match_rows(left, right, lkey, rkey, &opts.er)?
    };
    let (ci1, ci2) = row_alignment(kind, left.num_rows(), right.num_rows(), &row_matches);
    let target_rows = ci1.len();
    if target_rows == 0 && left.num_rows() > 0 && right.num_rows() > 0 {
        // With rows on both sides, only the inner join can shrink to
        // nothing: disjoint key sets, or a key column that is entirely
        // NULL (NULL matches nothing). An empty *source*, by contrast,
        // legitimately yields an empty target under every kind.
        return Err(IntegrationError::NoMatches(format!(
            "{kind} of {} and {} produced no target rows (no entity matches on key ({lkey}, {rkey}))",
            left.name(),
            right.name()
        )));
    }
    let indicator1 = IndicatorMatrix::new(ci1, left.num_rows())?;
    let indicator2 = IndicatorMatrix::new(ci2, right.num_rows())?;

    // --- Redundancy matrices ---------------------------------------------
    let redundancy1 = RedundancyMatrix::all_ones(target_rows, target_columns.len());
    let redundancy2 =
        RedundancyMatrix::against_earlier(&[(&indicator1, &mapping1)], &indicator2, &mapping2)?;

    // --- Source data matrices Dₖ -----------------------------------------
    let left_refs: Vec<&str> = left_mapped.iter().map(String::as_str).collect();
    let right_refs: Vec<&str> = right_mapped.iter().map(String::as_str).collect();
    let d1 = left.to_matrix(&left_refs, opts.null_value)?;
    let d2 = right.to_matrix(&right_refs, opts.null_value)?;

    let tgds = scenario_tgds(kind, left, right, &target_columns, opts, &column_matches);

    let metadata = DiMetadata {
        target_columns,
        target_rows,
        sources: vec![
            SourceMetadata {
                name: left.name().to_owned(),
                mapped_columns: left_mapped,
                mapping: mapping1,
                indicator: indicator1,
                redundancy: redundancy1,
            },
            SourceMetadata {
                name: right.name().to_owned(),
                mapped_columns: right_mapped,
                mapping: mapping2,
                indicator: indicator2,
                redundancy: redundancy2,
            },
        ],
    };
    metadata.validate()?;

    Ok(IntegrationResult {
        kind,
        metadata,
        source_data: vec![d1, d2],
        tgds,
        row_matches,
        column_matches,
    })
}

/// Computes `CI₁`/`CI₂` for the scenario. Target row order: left rows in
/// order, then (for full outer / union) the unmatched right rows in order.
fn row_alignment(
    kind: ScenarioKind,
    left_rows: usize,
    right_rows: usize,
    matches: &[RowMatch],
) -> (Vec<i64>, Vec<i64>) {
    let mut right_of_left: Vec<i64> = vec![NO_MATCH; left_rows];
    let mut right_matched = vec![false; right_rows];
    for m in matches {
        right_of_left[m.left] = m.right as i64;
        right_matched[m.right] = true;
    }
    match kind {
        ScenarioKind::LeftJoin => {
            let ci1 = (0..left_rows as i64).collect();
            (ci1, right_of_left)
        }
        ScenarioKind::InnerJoin => {
            let mut ci1 = Vec::new();
            let mut ci2 = Vec::new();
            for (l, &r) in right_of_left.iter().enumerate() {
                if r != NO_MATCH {
                    ci1.push(l as i64);
                    ci2.push(r);
                }
            }
            (ci1, ci2)
        }
        ScenarioKind::FullOuterJoin => {
            let mut ci1: Vec<i64> = (0..left_rows as i64).collect();
            let mut ci2 = right_of_left;
            for (r, matched) in right_matched.iter().enumerate() {
                if !matched {
                    ci1.push(NO_MATCH);
                    ci2.push(r as i64);
                }
            }
            (ci1, ci2)
        }
        ScenarioKind::Union => {
            let mut ci1: Vec<i64> = (0..left_rows as i64).collect();
            ci1.extend(std::iter::repeat_n(NO_MATCH, right_rows));
            let mut ci2: Vec<i64> = vec![NO_MATCH; left_rows];
            ci2.extend(0..right_rows as i64);
            (ci1, ci2)
        }
    }
}

/// Generates the Table I tgd set for a scenario, using real column names
/// as variables (mapped columns share the variable of their target
/// column; source-only columns keep their own names).
fn scenario_tgds(
    kind: ScenarioKind,
    left: &Table,
    right: &Table,
    target_columns: &[String],
    opts: &IntegrationOptions,
    column_matches: &[ColumnMatch],
) -> Vec<Tgd> {
    let key_var = opts.key.0.clone();
    let left_vars: Vec<String> = left
        .schema()
        .names()
        .iter()
        .map(|c| {
            if *c == opts.key.0 {
                key_var.clone()
            } else {
                (*c).to_owned()
            }
        })
        .collect();
    let right_vars: Vec<String> = right
        .schema()
        .names()
        .iter()
        .map(|c| {
            if *c == opts.key.1 {
                key_var.clone()
            } else {
                // A matched right column shares its left counterpart's var.
                column_matches
                    .iter()
                    .find(|m| m.right == **c)
                    .map_or_else(|| (*c).to_owned(), |m| m.left.clone())
            }
        })
        .collect();
    let s1 = Atom {
        relation: left.name().to_owned(),
        vars: left_vars,
    };
    let s2 = Atom {
        relation: right.name().to_owned(),
        vars: right_vars,
    };
    let t = Atom {
        relation: "T".to_owned(),
        vars: target_columns.to_vec(),
    };
    let join = Tgd::new(Some("m1"), vec![s1.clone(), s2.clone()], vec![t.clone()]);
    let proj1 = Tgd::new(Some("m2"), vec![s1], vec![t.clone()]);
    let proj2 = Tgd::new(Some("m3"), vec![s2], vec![t]);
    match kind {
        ScenarioKind::FullOuterJoin => vec![join, proj1, proj2],
        ScenarioKind::InnerJoin => vec![join],
        ScenarioKind::LeftJoin => vec![join, proj1],
        ScenarioKind::Union => vec![proj1, proj2],
    }
}

/// Materializes the scenario relationally (the traditional DI path of
/// Fig. 2), returning the target table projected to the mediated schema.
/// Used to cross-check the matrix-level assembly.
///
/// # Errors
/// Propagates relational errors (missing columns, schema mismatches).
pub fn materialize_relationally(
    left: &Table,
    right: &Table,
    kind: ScenarioKind,
    opts: &IntegrationOptions,
    target_columns: &[String],
) -> Result<Table> {
    let refs: Vec<&str> = target_columns.iter().map(String::as_str).collect();
    match kind.join_type() {
        Some(jt) => {
            let joined = hash_join(left, right, &[(&opts.key.0, &opts.key.1)], jt)?;
            Ok(joined.project(&refs)?)
        }
        None => {
            // Union: project each source to the mediated schema first
            // (sources need not share their *other* columns).
            let l = left.project(&refs)?;
            let r = right.project(&refs)?;
            Ok(union_all(&[&l, &r])?)
        }
    }
}

/// Plans an n-ary union (the HFL scenario with many silos): every table
/// contributes all of its rows; the target schema is the set of features
/// (by name) common to all tables.
///
/// # Errors
/// * [`IntegrationError::EmptyTable`] when any table has no rows.
/// * [`IntegrationError::NoMatches`] when the tables share no numeric
///   feature columns.
pub fn integrate_union(tables: &[&Table], key: &str, null_value: f64) -> Result<IntegrationResult> {
    let first = tables
        .first()
        .ok_or_else(|| IntegrationError::NoMatches("union of zero tables".into()))?;
    for t in tables {
        if t.num_rows() == 0 {
            return Err(IntegrationError::EmptyTable(t.name().to_owned()));
        }
    }
    let mut target_columns: Vec<String> = feature_columns(first, key)
        .into_iter()
        .map(str::to_owned)
        .collect();
    for t in &tables[1..] {
        let feats = feature_columns(t, key);
        target_columns.retain(|c| feats.contains(&c.as_str()));
    }
    if target_columns.is_empty() {
        return Err(IntegrationError::NoMatches(
            "union sources share no numeric feature columns".into(),
        ));
    }
    let target_rows: usize = tables.iter().map(|t| t.num_rows()).sum();
    let mut sources = Vec::with_capacity(tables.len());
    let mut source_data = Vec::with_capacity(tables.len());
    let mut offset = 0usize;
    for t in tables {
        let mapped: Vec<String> = t
            .schema()
            .names()
            .iter()
            .filter(|c| target_columns.iter().any(|tc| tc == **c))
            .map(|c| (*c).to_owned())
            .collect();
        let cm: Vec<i64> = target_columns
            .iter()
            .map(|tc| {
                mapped
                    .iter()
                    .position(|c| c == tc)
                    .map_or(NO_MATCH, |p| p as i64)
            })
            .collect();
        let mut ci: Vec<i64> = vec![NO_MATCH; target_rows];
        for r in 0..t.num_rows() {
            ci[offset + r] = r as i64;
        }
        offset += t.num_rows();
        let refs: Vec<&str> = mapped.iter().map(String::as_str).collect();
        let d = t.to_matrix(&refs, null_value)?;
        sources.push(SourceMetadata {
            name: t.name().to_owned(),
            mapping: MappingMatrix::new(cm, mapped.len())?,
            indicator: IndicatorMatrix::new(ci, t.num_rows())?,
            redundancy: RedundancyMatrix::all_ones(target_rows, target_columns.len()),
            mapped_columns: mapped,
        });
        source_data.push(d);
    }
    let metadata = DiMetadata {
        target_columns,
        target_rows,
        sources,
    };
    metadata.validate()?;
    Ok(IntegrationResult {
        kind: ScenarioKind::Union,
        metadata,
        source_data,
        tgds: Vec::new(),
        row_matches: Vec::new(),
        column_matches: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_relational::{DataType, TableBuilder};

    /// S1(m, n, a, hr) of Figure 2a.
    pub(crate) fn s1() -> Table {
        TableBuilder::new(
            "S1",
            &[
                ("m", DataType::Int64),
                ("n", DataType::Utf8),
                ("a", DataType::Float64),
                ("hr", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![0.into(), "Jack".into(), 20.0.into(), 60.0.into()])
        .unwrap()
        .row(vec![1.into(), "Sam".into(), 35.0.into(), 58.0.into()])
        .unwrap()
        .row(vec![0.into(), "Ruby".into(), 22.0.into(), 65.0.into()])
        .unwrap()
        .row(vec![1.into(), "Jane".into(), 37.0.into(), 70.0.into()])
        .unwrap()
        .build()
    }

    /// S2(m, n, a, o, dd) of Figure 2b.
    pub(crate) fn s2() -> Table {
        TableBuilder::new(
            "S2",
            &[
                ("m", DataType::Int64),
                ("n", DataType::Utf8),
                ("a", DataType::Float64),
                ("o", DataType::Float64),
                ("dd", DataType::Utf8),
            ],
        )
        .unwrap()
        .row(vec![
            1.into(),
            "Rose".into(),
            45.0.into(),
            95.0.into(),
            "1/4/21".into(),
        ])
        .unwrap()
        .row(vec![
            0.into(),
            "Castiel".into(),
            20.0.into(),
            97.0.into(),
            "3/8/22".into(),
        ])
        .unwrap()
        .row(vec![
            1.into(),
            "Jane".into(),
            37.0.into(),
            92.0.into(),
            "11/5/21".into(),
        ])
        .unwrap()
        .build()
    }

    fn opts() -> IntegrationOptions {
        IntegrationOptions::with_key("n", "n")
    }

    #[test]
    fn full_outer_join_reproduces_figure4_metadata() {
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::FullOuterJoin, &opts()).unwrap();
        assert_eq!(r.metadata.target_columns, vec!["m", "a", "hr", "o"]);
        assert_eq!(r.metadata.target_rows, 6);
        let s1m = &r.metadata.sources[0];
        let s2m = &r.metadata.sources[1];
        // CM₁ = [0, 1, 2, -1]; CM₂ = [0, 1, -1, 2] (Figure 4a).
        assert_eq!(s1m.mapping.compressed(), &[0, 1, 2, NO_MATCH]);
        assert_eq!(s2m.mapping.compressed(), &[0, 1, NO_MATCH, 2]);
        // CI₁ = [0,1,2,3,-1,-1]; CI₂ = [-1,-1,-1,2,0,1] (Figure 4b).
        assert_eq!(
            s1m.indicator.compressed(),
            &[0, 1, 2, 3, NO_MATCH, NO_MATCH]
        );
        assert_eq!(
            s2m.indicator.compressed(),
            &[NO_MATCH, NO_MATCH, NO_MATCH, 2, 0, 1]
        );
        // R₂ zero exactly at Jane's shared (m, a) cells (Figure 4c).
        assert_eq!(s2m.redundancy.get(3, 0), 0.0);
        assert_eq!(s2m.redundancy.get(3, 1), 0.0);
        assert_eq!(s2m.redundancy.get(3, 3), 1.0);
        assert_eq!(s2m.redundancy.zero_count(), 2);
        assert!(s1m.redundancy.is_all_ones());
        // D₁ is 4×3 (m,a,hr), D₂ is 3×3 (m,a,o).
        assert_eq!(r.source_data[0].shape(), (4, 3));
        assert_eq!(r.source_data[1].shape(), (3, 3));
        assert_eq!(r.source_data[0].row(0), &[0.0, 20.0, 60.0]);
        assert_eq!(r.source_data[1].row(2), &[1.0, 37.0, 92.0]);
    }

    #[test]
    fn full_outer_tgds_match_table1() {
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::FullOuterJoin, &opts()).unwrap();
        assert_eq!(r.tgds.len(), 3);
        assert!(r.tgds[0].is_full()); // m1
        assert!(!r.tgds[1].is_full()); // m2: ∃o
        assert!(!r.tgds[2].is_full()); // m3: ∃hr
        assert_eq!(r.tgds[1].existential_vars(), ["o"].into_iter().collect());
        assert_eq!(r.tgds[2].existential_vars(), ["hr"].into_iter().collect());
    }

    #[test]
    fn inner_join_keeps_only_jane() {
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::InnerJoin, &opts()).unwrap();
        assert_eq!(r.metadata.target_rows, 1);
        assert_eq!(r.metadata.sources[0].indicator.compressed(), &[3]);
        assert_eq!(r.metadata.sources[1].indicator.compressed(), &[2]);
        // Jane's shared columns in S2 are still redundant w.r.t. S1.
        assert_eq!(r.metadata.sources[1].redundancy.zero_count(), 2);
        assert_eq!(r.tgds.len(), 1);
        assert!(r.tgds[0].is_full());
    }

    #[test]
    fn left_join_keeps_all_left_rows() {
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::LeftJoin, &opts()).unwrap();
        assert_eq!(r.metadata.target_rows, 4);
        assert_eq!(r.metadata.sources[0].indicator.compressed(), &[0, 1, 2, 3]);
        assert_eq!(
            r.metadata.sources[1].indicator.compressed(),
            &[NO_MATCH, NO_MATCH, NO_MATCH, 2]
        );
        assert_eq!(r.tgds.len(), 2);
    }

    #[test]
    fn union_stacks_rows_over_shared_columns() {
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::Union, &opts()).unwrap();
        // Shared numeric features of S1 and S2: m, a.
        assert_eq!(r.metadata.target_columns, vec!["m", "a"]);
        assert_eq!(r.metadata.target_rows, 7);
        assert!(r.metadata.sources[1].redundancy.is_all_ones());
        assert_eq!(r.tgds.len(), 2);
        assert_eq!(r.tgds[0].body.len(), 1);
    }

    #[test]
    fn explicit_column_matches_override_matching() {
        let mut o = opts();
        o.column_matches = Some(vec![("m".into(), "m".into()), ("a".into(), "a".into())]);
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::FullOuterJoin, &o).unwrap();
        assert_eq!(r.metadata.target_columns, vec!["m", "a", "hr", "o"]);
    }

    #[test]
    fn missing_key_column_errors() {
        let o = IntegrationOptions::with_key("nope", "n");
        assert!(integrate_pair(&s1(), &s2(), ScenarioKind::InnerJoin, &o).is_err());
        let o = IntegrationOptions::with_key("n", "nope");
        assert!(integrate_pair(&s1(), &s2(), ScenarioKind::InnerJoin, &o).is_err());
    }

    #[test]
    fn materialize_relationally_matches_target_schema() {
        let r = integrate_pair(&s1(), &s2(), ScenarioKind::FullOuterJoin, &opts()).unwrap();
        let t = materialize_relationally(
            &s1(),
            &s2(),
            ScenarioKind::FullOuterJoin,
            &opts(),
            &r.metadata.target_columns,
        )
        .unwrap();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.schema().names(), vec!["m", "a", "hr", "o"]);
    }

    #[test]
    fn integrate_union_many() {
        let t1 = TableBuilder::new(
            "A",
            &[
                ("id", DataType::Int64),
                ("x", DataType::Float64),
                ("y", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![1.into(), 1.0.into(), 2.0.into()])
        .unwrap()
        .build();
        let t2 = TableBuilder::new(
            "B",
            &[
                ("id", DataType::Int64),
                ("x", DataType::Float64),
                ("y", DataType::Float64),
                ("z", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![2.into(), 3.0.into(), 4.0.into(), 9.0.into()])
        .unwrap()
        .row(vec![3.into(), 5.0.into(), 6.0.into(), 9.0.into()])
        .unwrap()
        .build();
        let r = integrate_union(&[&t1, &t2], "id", 0.0).unwrap();
        assert_eq!(r.metadata.target_columns, vec!["x", "y"]);
        assert_eq!(r.metadata.target_rows, 3);
        assert_eq!(r.metadata.sources.len(), 2);
        assert_eq!(
            r.metadata.sources[1].indicator.compressed(),
            &[NO_MATCH, 0, 1]
        );
        assert_eq!(r.source_data[1].shape(), (2, 2));
    }

    #[test]
    fn integrate_union_no_shared_columns_errors() {
        let t1 = TableBuilder::new("A", &[("id", DataType::Int64), ("x", DataType::Float64)])
            .unwrap()
            .build();
        let t2 = TableBuilder::new("B", &[("id", DataType::Int64), ("z", DataType::Float64)])
            .unwrap()
            .build();
        assert!(integrate_union(&[&t1, &t2], "id", 0.0).is_err());
        assert!(integrate_union(&[], "id", 0.0).is_err());
    }

    #[test]
    fn scenario_kind_display_and_join_type() {
        assert_eq!(ScenarioKind::FullOuterJoin.to_string(), "full outer join");
        assert_eq!(ScenarioKind::Union.join_type(), None);
        assert_eq!(ScenarioKind::InnerJoin.join_type(), Some(JoinType::Inner));
    }
}
