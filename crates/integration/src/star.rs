//! N-ary star integration: one base table joined with many augmenting
//! silos on a shared entity key.
//!
//! The drug-risk scenario of §I — features spread over clinics,
//! hospitals, pharmacies and laboratories — is not a two-table join but
//! a *star*: every silo aligns to the same patient population. This
//! planner generalizes [`integrate_pair`](crate::integrate_pair) to `n`
//! sources:
//!
//! * **Left star** (supervised training: the base holds the labels):
//!   target rows = base rows; each satellite contributes columns where
//!   its entities match.
//! * **Inner star** (VFL: only fully-shared entities): target rows =
//!   base rows matched in *every* satellite.
//!
//! Column correspondences between satellites and base are discovered per
//! pair (schema matching); the first contributor of a shared target
//! column wins, later duplicates are masked by redundancy matrices —
//! the same base-table precedence as §III-C.

use crate::er::match_rows;
use crate::matching::match_schemas;
use crate::metadata::{
    DiMetadata, IndicatorMatrix, MappingMatrix, RedundancyMatrix, SourceMetadata,
};
use crate::scenario::{IntegrationOptions, IntegrationResult, ScenarioKind};
use crate::{IntegrationError, Result};
use amalur_matrix::{DenseMatrix, NO_MATCH};
use amalur_relational::Table;

/// The star variant: how satellite coverage restricts the target rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StarKind {
    /// All base rows survive (satellites contribute where matched).
    Left,
    /// Only base rows matched in every satellite survive.
    Inner,
}

/// Plans a star integration of `base` with `satellites` on the shared
/// key named in `opts` (the same key column name is used on every
/// satellite).
///
/// # Errors
/// * [`IntegrationError::UnknownColumn`] when the key is missing.
/// * [`IntegrationError::NoMatches`] when an inner star matches nothing.
pub fn integrate_star(
    base: &Table,
    satellites: &[&Table],
    kind: StarKind,
    opts: &IntegrationOptions,
) -> Result<IntegrationResult> {
    let key = &opts.key.0;
    base.schema()
        .index_of(key)
        .map_err(|_| IntegrationError::UnknownColumn(key.clone()))?;
    for s in satellites {
        s.schema()
            .index_of(&opts.key.1)
            .map_err(|_| IntegrationError::UnknownColumn(opts.key.1.clone()))?;
    }

    // --- ER per satellite: base row → satellite row -----------------------
    let mut sat_of_base: Vec<Vec<i64>> = Vec::with_capacity(satellites.len());
    for s in satellites {
        let matches = match_rows(base, s, key, &opts.key.1, &opts.er)?;
        let mut map = vec![NO_MATCH; base.num_rows()];
        for m in &matches {
            map[m.left] = m.right as i64;
        }
        sat_of_base.push(map);
    }

    // --- surviving base rows -----------------------------------------------
    let base_rows: Vec<usize> = match kind {
        StarKind::Left => (0..base.num_rows()).collect(),
        StarKind::Inner => (0..base.num_rows())
            .filter(|&i| sat_of_base.iter().all(|m| m[i] != NO_MATCH))
            .collect(),
    };
    if base_rows.is_empty() {
        return Err(IntegrationError::NoMatches(
            "inner star: no entity appears in every silo".into(),
        ));
    }
    let target_rows = base_rows.len();

    // --- target schema -------------------------------------------------------
    // Base features first, then each satellite's unmatched features.
    let feature_cols = |t: &Table, k: &str| -> Vec<String> {
        t.numeric_column_names()
            .into_iter()
            .filter(|c| *c != k)
            .map(str::to_owned)
            .collect()
    };
    let base_features = feature_cols(base, key);
    let mut target_columns: Vec<String> = base_features.clone();
    // For each satellite: columns matched to an existing target column
    // (shared) vs new ones.
    let mut sat_shared: Vec<Vec<(String, String)>> = Vec::new(); // (sat col, target col)
    let mut sat_new: Vec<Vec<String>> = Vec::new();
    for s in satellites {
        let matches = match_schemas(base, s, &opts.matching);
        let feats = feature_cols(s, &opts.key.1);
        let mut shared = Vec::new();
        let mut fresh = Vec::new();
        for f in feats {
            let matched_target = matches
                .iter()
                .find(|m| m.right == f && target_columns.contains(&m.left))
                .map(|m| m.left.clone());
            match matched_target {
                Some(t) => shared.push((f, t)),
                None => {
                    if target_columns.contains(&f) {
                        // Same name as an existing target column: shared.
                        shared.push((f.clone(), f));
                    } else {
                        fresh.push(f);
                    }
                }
            }
        }
        target_columns.extend(fresh.iter().cloned());
        sat_shared.push(shared);
        sat_new.push(fresh);
    }

    // --- per-source metadata ---------------------------------------------
    let mut sources: Vec<SourceMetadata> = Vec::with_capacity(1 + satellites.len());
    let mut source_data: Vec<DenseMatrix> = Vec::with_capacity(1 + satellites.len());

    // Base source.
    let base_refs: Vec<&str> = base_features.iter().map(String::as_str).collect();
    let cm_base: Vec<i64> = target_columns
        .iter()
        .map(|t| {
            base_features
                .iter()
                .position(|c| c == t)
                .map_or(NO_MATCH, |p| p as i64)
        })
        .collect();
    let ci_base: Vec<i64> = base_rows.iter().map(|&r| r as i64).collect();
    let mapping = MappingMatrix::new(cm_base, base_features.len())?;
    let indicator = IndicatorMatrix::new(ci_base, base.num_rows())?;
    sources.push(SourceMetadata {
        name: base.name().to_owned(),
        mapped_columns: base_features.clone(),
        redundancy: RedundancyMatrix::all_ones(target_rows, target_columns.len()),
        mapping,
        indicator,
    });
    source_data.push(base.to_matrix(&base_refs, opts.null_value)?);

    // Satellites, in order; redundancy computed against all earlier.
    for (idx, s) in satellites.iter().enumerate() {
        let shared = &sat_shared[idx];
        let fresh = &sat_new[idx];
        // Mapped satellite columns in satellite-schema order.
        let mapped: Vec<String> = s
            .schema()
            .names()
            .iter()
            .filter(|c| shared.iter().any(|(sc, _)| sc == *c) || fresh.iter().any(|f| f == *c))
            .map(|c| (*c).to_owned())
            .collect();
        let cm: Vec<i64> = target_columns
            .iter()
            .map(|t| {
                // Either a shared column mapped onto target `t`, or a new
                // column named `t` itself.
                let sat_name = shared
                    .iter()
                    .find(|(_, tc)| tc == t)
                    .map(|(sc, _)| sc.as_str())
                    .or_else(|| fresh.iter().find(|f| *f == t).map(String::as_str));
                sat_name
                    .and_then(|n| mapped.iter().position(|c| c == n))
                    .map_or(NO_MATCH, |p| p as i64)
            })
            .collect();
        let ci: Vec<i64> = base_rows.iter().map(|&r| sat_of_base[idx][r]).collect();
        let mapping = MappingMatrix::new(cm, mapped.len())?;
        let indicator = IndicatorMatrix::new(ci, s.num_rows())?;
        let earlier: Vec<(&IndicatorMatrix, &MappingMatrix)> = sources
            .iter()
            .map(|src| (&src.indicator, &src.mapping))
            .collect();
        let redundancy = RedundancyMatrix::against_earlier(&earlier, &indicator, &mapping)?;
        let refs: Vec<&str> = mapped.iter().map(String::as_str).collect();
        source_data.push(s.to_matrix(&refs, opts.null_value)?);
        sources.push(SourceMetadata {
            name: s.name().to_owned(),
            mapped_columns: mapped,
            mapping,
            indicator,
            redundancy,
        });
    }

    let metadata = DiMetadata {
        target_columns,
        target_rows,
        sources,
    };
    metadata.validate()?;
    Ok(IntegrationResult {
        kind: match kind {
            StarKind::Left => ScenarioKind::LeftJoin,
            StarKind::Inner => ScenarioKind::InnerJoin,
        },
        metadata,
        source_data,
        tgds: Vec::new(),
        row_matches: Vec::new(),
        column_matches: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalur_matrix::DenseMatrix;
    use amalur_relational::{DataType, TableBuilder};

    fn base() -> Table {
        TableBuilder::new(
            "clinic",
            &[
                ("pid", DataType::Int64),
                ("label", DataType::Int64),
                ("age", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![1.into(), 0.into(), 30.0.into()])
        .unwrap()
        .row(vec![2.into(), 1.into(), 40.0.into()])
        .unwrap()
        .row(vec![3.into(), 0.into(), 50.0.into()])
        .unwrap()
        .build()
    }

    fn sat_a() -> Table {
        TableBuilder::new(
            "lab",
            &[("pid", DataType::Int64), ("creat", DataType::Float64)],
        )
        .unwrap()
        .row(vec![2.into(), 1.2.into()])
        .unwrap()
        .row(vec![3.into(), 0.9.into()])
        .unwrap()
        .build()
    }

    fn sat_b() -> Table {
        TableBuilder::new(
            "pharmacy",
            &[
                ("pid", DataType::Int64),
                ("dose", DataType::Float64),
                ("age", DataType::Float64), // shared with the base
            ],
        )
        .unwrap()
        .row(vec![1.into(), 5.0.into(), 30.0.into()])
        .unwrap()
        .row(vec![3.into(), 7.0.into(), 50.0.into()])
        .unwrap()
        .build()
    }

    fn opts() -> IntegrationOptions {
        IntegrationOptions::with_exact_key("pid", "pid")
    }

    #[test]
    fn left_star_keeps_all_base_rows() {
        let (b, a, c) = (base(), sat_a(), sat_b());
        let r = integrate_star(&b, &[&a, &c], StarKind::Left, &opts()).unwrap();
        assert_eq!(r.metadata.target_rows, 3);
        assert_eq!(
            r.metadata.target_columns,
            vec!["label", "age", "creat", "dose"]
        );
        assert_eq!(r.metadata.sources.len(), 3);
        // Lab matched pids 2, 3 → base rows 1, 2.
        assert_eq!(
            r.metadata.sources[1].indicator.compressed(),
            &[NO_MATCH, 0, 1]
        );
        // Pharmacy matched pids 1, 3 → base rows 0, 2.
        assert_eq!(
            r.metadata.sources[2].indicator.compressed(),
            &[0, NO_MATCH, 1]
        );
        // Pharmacy's `age` is redundant with the base on its matched rows.
        assert!(r.metadata.sources[2].redundancy.zero_count() > 0);
    }

    #[test]
    fn inner_star_keeps_fully_matched_rows_only() {
        let (b, a, c) = (base(), sat_a(), sat_b());
        let r = integrate_star(&b, &[&a, &c], StarKind::Inner, &opts()).unwrap();
        // Only pid 3 appears in base, lab AND pharmacy.
        assert_eq!(r.metadata.target_rows, 1);
        assert_eq!(r.metadata.sources[0].indicator.compressed(), &[2]);
    }

    /// Hand-rolled `T = Σ Tₖ ∘ Rₖ` (the factorize crate owns the real
    /// implementation; integration cannot depend on it).
    fn assemble(r: &IntegrationResult) -> DenseMatrix {
        let md = &r.metadata;
        let mut t = DenseMatrix::zeros(md.target_rows, md.target_cols());
        for (s, d) in md.sources.iter().zip(&r.source_data) {
            for (i, &sr) in s.indicator.compressed().iter().enumerate() {
                if sr == NO_MATCH {
                    continue;
                }
                for (c, &sc) in s.mapping.compressed().iter().enumerate() {
                    if sc == NO_MATCH || s.redundancy.get(i, c) == 0.0 {
                        continue;
                    }
                    let v = t.get(i, c) + d.get(sr as usize, sc as usize);
                    t.set(i, c, v);
                }
            }
        }
        t
    }

    #[test]
    fn left_star_materializes_correctly() {
        let (b, a, c) = (base(), sat_a(), sat_b());
        let r = integrate_star(&b, &[&a, &c], StarKind::Left, &opts()).unwrap();
        let expected = DenseMatrix::from_rows(&[
            vec![0.0, 30.0, 0.0, 5.0], // pid 1: no lab
            vec![1.0, 40.0, 1.2, 0.0], // pid 2: no pharmacy
            vec![0.0, 50.0, 0.9, 7.0], // pid 3: everything
        ])
        .unwrap();
        assert!(assemble(&r).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn missing_keys_error() {
        let b = base();
        let a = sat_a();
        let bad = IntegrationOptions::with_exact_key("ghost", "pid");
        assert!(integrate_star(&b, &[&a], StarKind::Left, &bad).is_err());
        let bad = IntegrationOptions::with_exact_key("pid", "ghost");
        assert!(integrate_star(&b, &[&a], StarKind::Left, &bad).is_err());
    }

    #[test]
    fn inner_star_with_disjoint_satellites_errors() {
        let b = base();
        let empty_sat = TableBuilder::new(
            "empty",
            &[("pid", DataType::Int64), ("x", DataType::Float64)],
        )
        .unwrap()
        .row(vec![99.into(), 1.0.into()])
        .unwrap()
        .build();
        assert!(integrate_star(&b, &[&empty_sat], StarKind::Inner, &opts()).is_err());
    }

    #[test]
    fn star_with_no_satellites_is_just_the_base() {
        let b = base();
        let r = integrate_star(&b, &[], StarKind::Left, &opts()).unwrap();
        assert_eq!(r.metadata.sources.len(), 1);
        assert_eq!(r.metadata.target_columns, vec!["label", "age"]);
    }
}
