//! Source-to-target tuple-generating dependencies (s-t tgds).
//!
//! Schema mappings "lay at the heart of data integration" (§III-A). An
//! s-t tgd is a first-order sentence `∀x (ϕ(x) → ∃y ψ(x, y))` where
//! `ϕ` is a conjunction of source atoms and `ψ` of target atoms. The
//! paper writes them like
//!
//! ```text
//! m1: S1(m,n,a,hr) & S2(m,n,a,o,dd) -> T(m,a,hr,o)
//! m2: S1(m,n,a,hr) -> T(m,a,hr,o)
//! ```
//!
//! Mapped attributes share variable names; head variables that do not
//! occur in the body are existentially quantified (`o` in `m2`). A tgd
//! with no existential variables is *full* — the property Example IV.1
//! uses as a materialization pruning rule.

use crate::{IntegrationError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// A relational atom `R(x₁, …, xₙ)` with variable arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation (table) name.
    pub relation: String,
    /// Variable names, positionally bound to the relation's columns.
    pub vars: Vec<String>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, vars: &[&str]) -> Self {
        Self {
            relation: relation.into(),
            vars: vars.iter().map(|v| (*v).to_owned()).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.vars.join(","))
    }
}

/// A source-to-target tuple-generating dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Optional label (`m1`, `m2`, …).
    pub name: Option<String>,
    /// Conjunction of source atoms (the premise ϕ).
    pub body: Vec<Atom>,
    /// Conjunction of target atoms (the conclusion ψ).
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Creates a tgd from parts.
    pub fn new(name: Option<&str>, body: Vec<Atom>, head: Vec<Atom>) -> Self {
        Self {
            name: name.map(str::to_owned),
            body,
            head,
        }
    }

    /// Parses the paper's textual notation, e.g.
    /// `m1: S1(m,n,a,hr) & S2(m,n,a,o,dd) -> T(m,a,hr,o)`.
    ///
    /// `&`, `∧` and the keyword `AND` (any case) separate body atoms;
    /// `->` or `→` separates body from head. A leading `label:` is
    /// optional.
    ///
    /// # Errors
    /// [`IntegrationError::TgdParse`] on malformed input.
    pub fn parse(text: &str) -> Result<Tgd> {
        let text = text.trim();
        // Split off an optional "name:" prefix — but only if the colon
        // appears before any parenthesis (to not confuse atoms).
        let (name, rest) = match text.find(':') {
            Some(pos) if !text[..pos].contains('(') => {
                (Some(text[..pos].trim().to_owned()), &text[pos + 1..])
            }
            _ => (None, text),
        };
        let (body_txt, head_txt) = rest
            .split_once("->")
            .or_else(|| rest.split_once('→'))
            .ok_or_else(|| IntegrationError::TgdParse(format!("missing '->' in tgd: {text}")))?;
        let body = parse_atoms(body_txt)?;
        let head = parse_atoms(head_txt)?;
        if body.is_empty() || head.is_empty() {
            return Err(IntegrationError::TgdParse(
                "tgd needs at least one body and one head atom".into(),
            ));
        }
        Ok(Tgd { name, body, head })
    }

    /// Variables universally quantified: all body variables.
    pub fn universal_vars(&self) -> BTreeSet<&str> {
        self.body
            .iter()
            .flat_map(|a| a.vars.iter().map(String::as_str))
            .collect()
    }

    /// Variables existentially quantified: head variables that never occur
    /// in the body.
    pub fn existential_vars(&self) -> BTreeSet<&str> {
        let universal = self.universal_vars();
        self.head
            .iter()
            .flat_map(|a| a.vars.iter().map(String::as_str))
            .filter(|v| !universal.contains(v))
            .collect()
    }

    /// A *full* tgd has no existentially quantified variables
    /// (Example IV.1): every target attribute comes from some source.
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Shared variables across body atoms — the (natural-)join attributes.
    pub fn join_vars(&self) -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut shared: BTreeSet<&str> = BTreeSet::new();
        for atom in &self.body {
            for v in &atom.vars {
                if !seen.insert(v.as_str()) {
                    shared.insert(v.as_str());
                }
            }
        }
        shared
    }

    /// Source relations referenced in the body.
    pub fn source_relations(&self) -> Vec<&str> {
        self.body.iter().map(|a| a.relation.as_str()).collect()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}: ")?;
        }
        for (i, atom) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{atom}")?;
        }
        write!(f, " → ")?;
        for (i, atom) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

fn parse_atoms(text: &str) -> Result<Vec<Atom>> {
    // Normalize conjunction separators to '&'.
    let normalized = text
        .replace('∧', "&")
        .replace(" AND ", " & ")
        .replace(" and ", " & ");
    normalized
        .split('&')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_atom)
        .collect()
}

fn parse_atom(text: &str) -> Result<Atom> {
    let open = text
        .find('(')
        .ok_or_else(|| IntegrationError::TgdParse(format!("atom missing '(': {text}")))?;
    if !text.ends_with(')') {
        return Err(IntegrationError::TgdParse(format!(
            "atom missing ')': {text}"
        )));
    }
    let relation = text[..open].trim();
    if relation.is_empty() {
        return Err(IntegrationError::TgdParse(format!(
            "atom missing relation name: {text}"
        )));
    }
    let args = &text[open + 1..text.len() - 1];
    let vars: Vec<String> = args
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if vars.is_empty() {
        return Err(IntegrationError::TgdParse(format!(
            "atom has no variables: {text}"
        )));
    }
    Ok(Atom {
        relation: relation.to_owned(),
        vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const M1: &str = "m1: S1(m,n,a,hr) & S2(m,n,a,o,dd) -> T(m,a,hr,o)";
    const M2: &str = "m2: S1(m,n,a,hr) -> T(m,a,hr,o)";
    const M3: &str = "m3: S2(m,n,a,o,dd) -> T(m,a,hr,o)";

    #[test]
    fn parse_join_tgd() {
        let tgd = Tgd::parse(M1).unwrap();
        assert_eq!(tgd.name.as_deref(), Some("m1"));
        assert_eq!(tgd.body.len(), 2);
        assert_eq!(tgd.body[0].relation, "S1");
        assert_eq!(tgd.body[1].vars, vec!["m", "n", "a", "o", "dd"]);
        assert_eq!(tgd.head.len(), 1);
        assert_eq!(tgd.head[0].relation, "T");
    }

    #[test]
    fn m1_is_full_m2_m3_are_not() {
        // Example IV.1: m1 has no existential variables.
        assert!(Tgd::parse(M1).unwrap().is_full());
        let m2 = Tgd::parse(M2).unwrap();
        assert!(!m2.is_full());
        assert_eq!(m2.existential_vars(), ["o"].into_iter().collect());
        let m3 = Tgd::parse(M3).unwrap();
        assert_eq!(m3.existential_vars(), ["hr"].into_iter().collect());
    }

    #[test]
    fn join_vars_of_m1() {
        let tgd = Tgd::parse(M1).unwrap();
        assert_eq!(tgd.join_vars(), ["m", "n", "a"].into_iter().collect());
    }

    #[test]
    fn unnamed_tgd() {
        let tgd = Tgd::parse("S1(x) -> T(x)").unwrap();
        assert!(tgd.name.is_none());
        assert!(tgd.is_full());
    }

    #[test]
    fn unicode_connectives() {
        let tgd = Tgd::parse("S1(a) ∧ S2(a,b) → T(a,b)").unwrap();
        assert_eq!(tgd.body.len(), 2);
        assert!(tgd.is_full());
    }

    #[test]
    fn keyword_and_connective() {
        let tgd = Tgd::parse("S1(a) AND S2(a) -> T(a)").unwrap();
        assert_eq!(tgd.body.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(Tgd::parse("S1(a) T(a)").is_err()); // missing ->
        assert!(Tgd::parse("S1 a -> T(a)").is_err()); // missing parens
        assert!(Tgd::parse("S1(a) -> T(a").is_err()); // missing close paren
        assert!(Tgd::parse("S1() -> T(a)").is_err()); // no vars
        assert!(Tgd::parse("(a) -> T(a)").is_err()); // no relation
        assert!(Tgd::parse("-> T(a)").is_err()); // empty body
    }

    #[test]
    fn display_roundtrip() {
        let tgd = Tgd::parse(M1).unwrap();
        let shown = tgd.to_string();
        let reparsed = Tgd::parse(&shown).unwrap();
        assert_eq!(tgd, reparsed);
    }

    #[test]
    fn source_relations() {
        let tgd = Tgd::parse(M1).unwrap();
        assert_eq!(tgd.source_relations(), vec!["S1", "S2"]);
    }

    #[test]
    fn universal_vars() {
        let tgd = Tgd::parse(M2).unwrap();
        assert_eq!(
            tgd.universal_vars(),
            ["m", "n", "a", "hr"].into_iter().collect()
        );
    }
}
