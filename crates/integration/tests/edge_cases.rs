//! Degenerate-input behavior of the integration planners — never panics.
//! Empty tables are valid silos for `integrate_pair` (they flow through
//! as possibly-zero-row scenarios, matching the failure-injection suite),
//! while genuine matching failures — missing join keys, all-NULL join
//! columns under an inner join, an empty member in a federated union —
//! come back as typed [`IntegrationError`]s.

use amalur_integration::{
    integrate_pair, integrate_union, IntegrationError, IntegrationOptions, ScenarioKind,
};
use amalur_relational::{DataType, Table, TableBuilder, Value};

fn empty(name: &str) -> Table {
    TableBuilder::new(name, &[("id", DataType::Int64), ("x", DataType::Float64)])
        .unwrap()
        .build()
}

fn small(name: &str, col: &str) -> Table {
    TableBuilder::new(name, &[("id", DataType::Int64), (col, DataType::Float64)])
        .unwrap()
        .row(vec![1.into(), 2.0.into()])
        .unwrap()
        .row(vec![2.into(), 3.0.into()])
        .unwrap()
        .build()
}

/// Two rows whose join key is entirely NULL.
fn null_keyed(name: &str) -> Table {
    TableBuilder::new(name, &[("id", DataType::Int64), ("x", DataType::Float64)])
        .unwrap()
        .row(vec![Value::Null, 1.0.into()])
        .unwrap()
        .row(vec![Value::Null, 2.0.into()])
        .unwrap()
        .build()
}

fn opts() -> IntegrationOptions {
    IntegrationOptions::with_exact_key("id", "id")
}

const ALL_KINDS: [ScenarioKind; 4] = [
    ScenarioKind::FullOuterJoin,
    ScenarioKind::InnerJoin,
    ScenarioKind::LeftJoin,
    ScenarioKind::Union,
];

#[test]
fn empty_left_table_flows_through_every_kind() {
    // Rows surviving an empty left source: full outer keeps the right
    // side, inner and left join shrink to a valid zero-row target, and
    // union stacks the (zero) left rows on the right ones.
    let expected = [2, 0, 0, 2];
    for (kind, rows) in ALL_KINDS.into_iter().zip(expected) {
        let result = integrate_pair(&empty("E"), &small("R", "x"), kind, &opts())
            .unwrap_or_else(|e| panic!("{kind}: empty left must integrate, got {e}"));
        assert_eq!(result.metadata.target_rows, rows, "{kind}");
        assert!(result.row_matches.is_empty(), "{kind}");
    }
}

#[test]
fn empty_right_table_flows_through_every_kind() {
    let expected = [2, 0, 2, 2];
    for (kind, rows) in ALL_KINDS.into_iter().zip(expected) {
        let result = integrate_pair(&small("L", "x"), &empty("E"), kind, &opts())
            .unwrap_or_else(|e| panic!("{kind}: empty right must integrate, got {e}"));
        assert_eq!(result.metadata.target_rows, rows, "{kind}");
    }
}

#[test]
fn two_empty_tables_yield_a_zero_row_scenario_not_an_error() {
    // Pinned by the failure-injection suite: silos that have not
    // contributed data yet are still valid integration partners.
    for kind in ALL_KINDS {
        let result = integrate_pair(&empty("E1"), &empty("E2"), kind, &opts())
            .unwrap_or_else(|e| panic!("{kind}: empty silos are valid, got {e}"));
        assert_eq!(result.metadata.target_rows, 0, "{kind}");
    }
}

#[test]
fn missing_join_key_is_unknown_column_on_the_right_side_too() {
    let l = small("L", "x");
    let r = small("R", "y");
    let bad_left = IntegrationOptions::with_exact_key("nope", "id");
    assert_eq!(
        integrate_pair(&l, &r, ScenarioKind::InnerJoin, &bad_left).unwrap_err(),
        IntegrationError::UnknownColumn("nope".to_owned())
    );
    let bad_right = IntegrationOptions::with_exact_key("id", "absent");
    assert_eq!(
        integrate_pair(&l, &r, ScenarioKind::InnerJoin, &bad_right).unwrap_err(),
        IntegrationError::UnknownColumn("absent".to_owned())
    );
}

#[test]
fn all_null_join_column_inner_join_is_no_matches_not_a_zero_row_scenario() {
    let err = integrate_pair(
        &null_keyed("L"),
        &small("R", "y"),
        ScenarioKind::InnerJoin,
        &opts(),
    )
    .unwrap_err();
    match err {
        IntegrationError::NoMatches(msg) => {
            assert!(msg.contains("no target rows"), "{msg}");
        }
        other => panic!("expected NoMatches, got {other:?}"),
    }
}

#[test]
fn all_null_join_column_outer_kinds_still_integrate() {
    // NULL matches nothing, so the outer joins degrade gracefully to
    // disjoint row sets — still a valid scenario, not an error.
    let l = null_keyed("L");
    let r = small("R", "y");
    let full = integrate_pair(&l, &r, ScenarioKind::FullOuterJoin, &opts()).unwrap();
    assert_eq!(full.metadata.target_rows, 4);
    assert!(full.row_matches.is_empty());
    let left = integrate_pair(&l, &r, ScenarioKind::LeftJoin, &opts()).unwrap();
    assert_eq!(left.metadata.target_rows, 2);
}

#[test]
fn disjoint_keys_inner_join_is_no_matches() {
    let l = TableBuilder::new("L", &[("id", DataType::Int64), ("x", DataType::Float64)])
        .unwrap()
        .row(vec![100.into(), 1.0.into()])
        .unwrap()
        .build();
    let err = integrate_pair(&l, &small("R", "y"), ScenarioKind::InnerJoin, &opts()).unwrap_err();
    assert!(matches!(err, IntegrationError::NoMatches(_)), "{err:?}");
}

#[test]
fn union_rejects_empty_member_with_typed_error() {
    let a = small("A", "x");
    let e = empty("E");
    assert_eq!(
        integrate_union(&[&a, &e], "id", 0.0).unwrap_err(),
        IntegrationError::EmptyTable("E".to_owned())
    );
    // Zero tables stays NoMatches (there is no table to name).
    assert!(matches!(
        integrate_union(&[], "id", 0.0).unwrap_err(),
        IntegrationError::NoMatches(_)
    ));
}

#[test]
fn union_without_shared_features_is_no_matches() {
    let a = small("A", "x");
    let b = small("B", "z");
    // Shared feature set is {x} ∩ {z} = ∅ (the key is not a feature).
    assert!(matches!(
        integrate_union(&[&a, &b], "id", 0.0).unwrap_err(),
        IntegrationError::NoMatches(_)
    ));
}

#[test]
fn errors_render_human_readable_messages() {
    assert_eq!(
        IntegrationError::EmptyTable("S1".to_owned()).to_string(),
        "empty table: S1 has no rows"
    );
}
