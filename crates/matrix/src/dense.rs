//! Row-major dense `f64` matrix.

use crate::{approx_eq, MatrixError, Result};
use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the workspace: source tables in matrix
/// form (`Dₖ` in the paper), model parameters, gradients and intermediate
/// results are all `DenseMatrix` values.
///
/// The storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(i, j)` lives at offset `i * cols + j`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a matrix of the given shape where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidBuffer`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidBuffer {
                shape: (rows, cols),
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(MatrixError::InvalidBuffer {
                    shape: (r, c),
                    len: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds a single-column matrix from a vector.
    pub fn column_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a single-row matrix from a vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a matrix whose entries are sampled uniformly from `[lo, hi)`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        let dist = rand::distributions::Uniform::new(lo, hi);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at `(i, j)`; panics on out-of-bounds (use [`Self::try_get`]
    /// for a checked variant).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Checked element access.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Sets the element at `(i, j)`; panics on out-of-bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        self.transpose_into_unchecked(&mut out);
        out
    }

    /// Writes the transpose into the caller-owned `out`
    /// (`cols × rows`, fully overwritten).
    ///
    /// # Errors
    /// Shape mismatch of `out`.
    pub fn transpose_into(&self, out: &mut DenseMatrix) -> Result<()> {
        if out.shape() != (self.cols, self.rows) {
            return Err(MatrixError::DimensionMismatch {
                op: "transpose_into",
                lhs: (self.cols, self.rows),
                rhs: out.shape(),
            });
        }
        self.transpose_into_unchecked(out);
        Ok(())
    }

    /// [`Self::transpose_into`] without the output-shape validation — for
    /// internal callers that just allocated `out` with the right shape.
    fn transpose_into_unchecked(&self, out: &mut DenseMatrix) {
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Extracts the sub-matrix of `row_range` × `col_range`.
    pub fn slice(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> Result<DenseMatrix> {
        if row_range.end > self.rows || col_range.end > self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (row_range.end, col_range.end),
                shape: self.shape(),
            });
        }
        let r = row_range.len();
        let c = col_range.len();
        let mut data = Vec::with_capacity(r * c);
        for i in row_range {
            let start = i * self.cols + col_range.start;
            data.extend_from_slice(&self.data[start..start + c]);
        }
        DenseMatrix::from_vec(r, c, data)
    }

    /// Vertically stacks `self` on top of `other`.
    pub fn vstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        DenseMatrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally stacks `self` to the left of `other`.
    pub fn hstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        DenseMatrix::from_vec(self.rows, cols, data)
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| approx_eq(a, b, tol))
    }

    /// Largest absolute element-wise difference to `other`; `None` when the
    /// shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Option<f64> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(10);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let o = DenseMatrix::ones(3, 2);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));

        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = DenseMatrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, MatrixError::InvalidBuffer { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::InvalidBuffer { .. }));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(3, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.try_get(1, 2).unwrap(), 7.5);
        assert!(m.try_get(3, 0).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
        let rows: Vec<_> = m.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }

    #[test]
    fn transpose_small() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn transpose_into_overwrites_dirty_buffer() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let mut out = DenseMatrix::filled(3, 2, -1.0);
        m.transpose_into(&mut out).unwrap();
        assert_eq!(out, m.transpose());
        let mut wrong = DenseMatrix::zeros(2, 3);
        assert!(m.transpose_into(&mut wrong).is_err());
    }

    #[test]
    fn transpose_large_is_involution() {
        let mut rng = rand::thread_rng();
        let m = DenseMatrix::random_uniform(67, 41, -1.0, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn slice_extracts_block() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let s = m.slice(1..3, 0..2).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(1, 1), 8.0);
        assert!(m.slice(0..4, 0..1).is_err());
    }

    #[test]
    fn stacking() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.get(1, 0), 3.0);

        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);

        let tall = DenseMatrix::zeros(2, 2);
        assert!(a.hstack(&tall).is_err());
        let wide = DenseMatrix::zeros(1, 3);
        assert!(a.vstack(&wide).is_err());
    }

    #[test]
    fn map_and_map_inplace() {
        let m = DenseMatrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        let abs = m.map(f64::abs);
        assert_eq!(abs.row(0), &[1.0, 2.0]);
        let mut n = m.clone();
        n.map_inplace(|x| x * 2.0);
        assert_eq!(n.row(0), &[2.0, -4.0]);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let mut b = a.clone();
        b.set(0, 1, 2.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(a.max_abs_diff(&b).unwrap() < 1e-9);
        let c = DenseMatrix::zeros(2, 2);
        assert!(!a.approx_eq(&c, 1e-9));
        assert!(a.max_abs_diff(&c).is_none());
    }

    #[test]
    fn random_uniform_in_range() {
        let mut rng = rand::thread_rng();
        let m = DenseMatrix::random_uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn empty_matrix() {
        let m = DenseMatrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.transpose().shape(), (5, 0));
    }

    #[test]
    fn column_and_row_vector() {
        let c = DenseMatrix::column_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        let r = DenseMatrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(c.transpose(), r);
    }
}
