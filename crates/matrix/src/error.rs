//! Error type for matrix operations.

use std::fmt;

/// Convenience alias for matrix operation results.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The shapes of two operands are incompatible for the requested
    /// operation, e.g. multiplying a `2×3` by a `2×3`.
    DimensionMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// The offending index (row, col).
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// The supplied buffer length does not match `rows * cols`.
    InvalidBuffer {
        /// Declared shape.
        shape: (usize, usize),
        /// Actual buffer length.
        len: usize,
    },
    /// Sparse matrix construction data was inconsistent (e.g. unsorted or
    /// out-of-range column indices).
    InvalidSparseStructure(String),
    /// A numerically singular system was encountered (e.g. in `solve`).
    Singular,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::InvalidBuffer { shape, len } => write!(
                f,
                "buffer of length {len} cannot back a {}x{} matrix",
                shape.0, shape.1
            ),
            MatrixError::InvalidSparseStructure(msg) => {
                write!(f, "invalid sparse structure: {msg}")
            }
            MatrixError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = MatrixError::IndexOutOfBounds {
            index: (9, 0),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 0)"));
        assert!(e.to_string().contains("3x3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&MatrixError::Singular);
    }
}
