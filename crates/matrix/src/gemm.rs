//! Matrix multiplication kernels.
//!
//! The factorized-learning rewrites of §IV replace one big multiplication
//! over the target table `T` with several smaller multiplications over the
//! source tables `Dₖ`, so multiplication dominates every benchmark in this
//! workspace. The kernel below is a cache-blocked `i-k-j` loop ordering
//! (the inner loop runs over contiguous memory of both `B` and `C`), with
//! optional row-parallelism over `std::thread::scope` for large problems.

use crate::{DenseMatrix, MatrixError, Result};

/// Minimum FLOP count (2·m·n·k) before the parallel path is considered.
const PAR_FLOP_THRESHOLD: usize = 8_000_000;

/// Block size for the k-dimension panel.
const KC: usize = 256;

impl DenseMatrix {
    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        // Matrix–vector fast path: one dot product per row (the blocked
        // kernel degenerates to length-1 axpy calls when n == 1).
        if n == 1 {
            let v = rhs.as_slice();
            let mut out = DenseMatrix::zeros(m, 1);
            for (o, row) in out.as_mut_slice().iter_mut().zip(self.row_iter()) {
                *o = dot(row, v);
            }
            return Ok(out);
        }
        let mut out = DenseMatrix::zeros(m, n);
        let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
        let threads = available_threads();
        if flops >= PAR_FLOP_THRESHOLD && threads > 1 && m >= threads {
            matmul_parallel(self, rhs, &mut out, threads);
        } else {
            matmul_block(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        }
        Ok(out)
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// Used heavily by the Gram-matrix rewrite (`TᵀT`) and gradient
    /// computations (`Xᵀr`).
    pub fn transpose_matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows() != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (k, m) = self.shape(); // output is m×n
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(m, n);
        // Vector fast path: out += x[l] · row(l) streamed over the rows.
        if n == 1 {
            let a = self.as_slice();
            let x = rhs.as_slice();
            let o = out.as_mut_slice();
            for (l, &xl) in x.iter().enumerate() {
                if xl == 0.0 {
                    continue;
                }
                axpy(xl, &a[l * m..(l + 1) * m], o);
            }
            return Ok(out);
        }
        // out[i][j] = Σ_l self[l][i] * rhs[l][j] — accumulate row panels.
        let a = self.as_slice();
        let b = rhs.as_slice();
        let o = out.as_mut_slice();
        for l in 0..k {
            let arow = &a[l * m..(l + 1) * m];
            let brow = &b[l * n..(l + 1) * n];
            for (i, &aval) in arow.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let orow = &mut o[i * n..(i + 1) * n];
                axpy(aval, brow, orow);
            }
        }
        Ok(out)
    }

    /// `self * rhsᵀ` without materializing the transpose.
    pub fn matmul_transpose(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols() != rhs.cols() {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let m = self.rows();
        let n = rhs.rows();
        let k = self.cols();
        let mut out = DenseMatrix::zeros(m, n);
        let a = self.as_slice();
        let b = rhs.as_slice();
        let o = out.as_mut_slice();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for (j, oval) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                *oval = dot(arow, brow);
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols() != v.len() {
            return Err(MatrixError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self.row_iter().map(|row| dot(row, v)).collect())
    }

    /// Gram matrix `selfᵀ * self`, exploiting symmetry.
    pub fn gram(&self) -> DenseMatrix {
        let (r, c) = self.shape();
        let mut out = DenseMatrix::zeros(c, c);
        let a = self.as_slice();
        let o = out.as_mut_slice();
        for l in 0..r {
            let row = &a[l * c..(l + 1) * c];
            for i in 0..c {
                let v = row[i];
                if v == 0.0 {
                    continue;
                }
                let orow = &mut o[i * c + i..(i + 1) * c];
                for (off, &rj) in row[i..].iter().enumerate() {
                    orow[off] += v * rj;
                }
            }
        }
        // Mirror the upper triangle into the lower one.
        for i in 0..c {
            for j in 0..i {
                o[i * c + j] = o[j * c + i];
            }
        }
        out
    }
}

/// `y += a * x` over equal-length slices.
#[inline]
pub(crate) fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    // Four-way unrolled accumulation: keeps independent dependency chains
    // so the compiler can vectorize.
    let chunks = x.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc).take(chunks) {
        s0 += a[0] * b[0];
        s1 += a[1] * b[1];
        s2 += a[2] * b[2];
        s3 += a[3] * b[3];
    }
    let mut tail = 0.0;
    for (a, b) in xr.iter().zip(yr) {
        tail += a * b;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Sequential blocked GEMM: `c += a * b` where `a` is `m×k`, `b` is `k×n`.
fn matmul_block(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    if n == 0 || k == 0 {
        return;
    }
    for kb in (0..k).step_by(KC) {
        let kmax = (kb + KC).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for l in kb..kmax {
                let aval = arow[l];
                if aval == 0.0 {
                    continue;
                }
                axpy(aval, &b[l * n..(l + 1) * n], crow);
            }
        }
    }
}

/// Parallel GEMM: splits the rows of `a` (and `c`) across threads.
fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix, threads: usize) {
    let (m, k) = a.shape();
    let n = b.cols();
    let rows_per = m.div_ceil(threads);
    let a_slice = a.as_slice();
    let b_slice = b.as_slice();
    let chunks: Vec<(usize, &mut [f64])> = out
        .as_mut_slice()
        .chunks_mut(rows_per * n)
        .enumerate()
        .collect();
    std::thread::scope(|scope| {
        for (idx, chunk) in chunks {
            let row_start = idx * rows_per;
            let rows_here = chunk.len() / n;
            let a_part = &a_slice[row_start * k..(row_start + rows_here) * k];
            scope.spawn(move || {
                matmul_block(a_part, b_slice, chunk, rows_here, k, n);
            });
        }
    });
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference implementation used to validate the optimized kernels.
    fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.get(i, l) * b.get(l, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(13, 13, -2.0, 2.0, &mut rng);
        let i = DenseMatrix::identity(13);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            MatrixError::DimensionMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matmul_matches_naive_medium() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(37, 53, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(53, 29, -1.0, 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = matmul_naive(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Big enough to cross PAR_FLOP_THRESHOLD: 2*200*200*120 = 9.6e6.
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(200, 120, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(120, 200, -1.0, 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = matmul_naive(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(23, 11, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(23, 7, -1.0, 1.0, &mut rng);
        let fused = a.transpose_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-10));
        assert!(a.transpose_matmul(&DenseMatrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(9, 14, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(6, 14, -1.0, 1.0, &mut rng);
        let fused = a.matmul_transpose(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-10));
        assert!(a.matmul_transpose(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(31, 17, -1.0, 1.0, &mut rng);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-10));
        // Gram matrices are symmetric.
        assert!(g.approx_eq(&g.transpose(), 1e-12));
    }

    #[test]
    fn zero_sized_products() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 4));
        let c = DenseMatrix::zeros(4, 0);
        assert_eq!(b.matmul(&c).unwrap().shape(), (3, 0));
    }

    #[test]
    fn dot_handles_remainders() {
        assert_eq!(dot(&[1.0; 7], &[2.0; 7]), 14.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[3.0], &[4.0]), 12.0);
    }

    proptest! {
        #[test]
        fn prop_matmul_matches_naive(
            m in 1usize..12, k in 1usize..12, n in 1usize..12,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -3.0, 3.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -3.0, 3.0, &mut rng);
            let fast = a.matmul(&b).unwrap();
            let slow = matmul_naive(&a, &b);
            prop_assert!(fast.approx_eq(&slow, 1e-9));
        }

        #[test]
        fn prop_matmul_distributes_over_addition(
            m in 1usize..8, k in 1usize..8, n in 1usize..8,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            let c = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }

        #[test]
        fn prop_transpose_of_product(
            m in 1usize..8, k in 1usize..8, n in 1usize..8,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            // (AB)ᵀ = BᵀAᵀ
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }
    }
}
