//! Matrix multiplication kernels.
//!
//! The factorized-learning rewrites of §IV replace one big multiplication
//! over the target table `T` with several smaller multiplications over the
//! source tables `Dₖ`, so multiplication dominates every benchmark in this
//! workspace.
//!
//! # Kernel architecture
//!
//! Large products run through a packed, register-blocked micro-kernel in
//! the BLIS style:
//!
//! * the innermost unit is an `MR × NR` register tile accumulated over a
//!   `KC`-long panel (`acc[r][c] += a[r] · b[c]`, fully unrolled over
//!   fixed-size arrays so LLVM keeps the tile in vector registers);
//! * operands are **packed** first — `A` into column-major `MR`-row
//!   panels, `B` into row-major `NR`-column panels — so the micro-kernel
//!   streams both operands contiguously regardless of the logical layout;
//! * macro loops walk `MC × KC` blocks of `A` and `KC × NC` panels of `B`
//!   (`jc → kb → ib` order), keeping the packed `A` block L2-resident and
//!   each packed `B` panel hot across all row blocks.
//!
//! Packing is *strided*: element `(i, j)` of a logical operand lives at
//! `buf[i · rs + j · cs]`, which lets the same kernel compute `A·B`
//! (`rs = k, cs = 1`), `Aᵀ·B` (`rs = 1, cs = m`) and `A·Bᵀ`
//! (`rs = 1, cs = k`) without ever materializing a transpose.
//!
//! All four operators (`matmul`, `transpose_matmul`, `matmul_transpose`,
//! `gram`) parallelize over disjoint output-row chunks via
//! [`crate::par::par_row_chunks`]. Pack buffers are thread-local: on the
//! serial path (everything below the parallel threshold — including the
//! per-epoch products of the GD training loops) repeated calls reuse
//! them and the steady-state hot path performs no heap allocation (see
//! [`crate::Workspace`] for the scratch-buffer contract). Parallel
//! workers are freshly spawned scoped threads, so each packs into its
//! own buffers for the duration of the call (~1.2 MB per worker) —
//! bounded, per-call scratch that is part of the spawn cost, outside
//! the workspace contract. Small problems skip packing entirely and use
//! the cache-blocked axpy/dot loops that also serve as the reference
//! path.

use crate::par::{available_threads, par_row_chunks, PAR_WORK_THRESHOLD};
use crate::workspace::check_out_shape;
use crate::{DenseMatrix, MatrixError, Result};
use std::cell::RefCell;

/// Micro-tile rows (register blocking).
const MR: usize = 4;
/// Micro-tile columns (register blocking; two 4-lane AVX2 vectors).
const NR: usize = 8;
/// Rows of `A` packed per macro block (L2 blocking).
const MC: usize = 64;
/// Depth of one packed panel (L1/L2 blocking).
const KC: usize = 256;
/// Columns of `B` packed per macro panel (L3 blocking).
const NC: usize = 512;

/// Minimum FLOP count (2·m·n·k) before the packed path is considered;
/// below this the plain blocked loops win because packing is O(m·k + k·n).
const PACK_FLOP_THRESHOLD: usize = 65_536;

/// Element `(i, j)` of a logical operand lives at `buf[i·rs + j·cs]`.
#[derive(Debug, Clone, Copy)]
struct Layout {
    rs: usize,
    cs: usize,
}

impl Layout {
    #[inline]
    fn at(self, i: usize, j: usize) -> usize {
        i * self.rs + j * self.cs
    }
}

thread_local! {
    /// Per-thread packing scratch (`A` panels, `B` panels). Thread-local
    /// so parallel workers never contend; repeated *serial* calls reuse
    /// the buffers without allocating, while each scoped parallel worker
    /// packs into its own per-call buffers (see the module docs).
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

impl DenseMatrix {
    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows(), rhs.cols());
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs` written into the caller-owned `out`
    /// (`m × n`, fully overwritten). Never allocates for the output;
    /// see [`crate::Workspace`] for obtaining reusable buffers.
    ///
    /// # Errors
    /// Dimension mismatch of the operands or of `out`.
    pub fn matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        check_out_shape("matmul_into", out, m, n)?;
        // Matrix–vector fast path: one dot product per row.
        if n == 1 {
            let v = rhs.as_slice();
            for (o, row) in out.as_mut_slice().iter_mut().zip(self.row_iter()) {
                *o = dot(row, v);
            }
            return Ok(());
        }
        let a = Operand {
            buf: self.as_slice(),
            layout: Layout { rs: k, cs: 1 },
        };
        let b = Operand {
            buf: rhs.as_slice(),
            layout: Layout { rs: n, cs: 1 },
        };
        gemm_driver(a, b, out.as_mut_slice(), m, k, n);
        Ok(())
    }

    /// Matrix product `self * rhs` with a **column-stable** summation
    /// order: column `j` of the result is produced by exactly the same
    /// floating-point operations as `self.matmul_into(col_j, …)` — the
    /// matrix–vector `dot` fast path — no matter how many other columns
    /// share the call. Request batching in `amalur-serve` relies on
    /// this: predictions coalesced column-wise into one GEMM are
    /// bit-identical to the same predictions served one at a time.
    ///
    /// The price is a transposed scratch copy of `rhs` (checked out of
    /// `ws` and returned before the call comes back) and forgoing the
    /// packed micro-kernel; row chunks still parallelize. Use the plain
    /// [`DenseMatrix::matmul_into`] when cross-batch bit-stability is
    /// not required.
    ///
    /// # Errors
    /// Dimension mismatch of the operands or of `out`.
    pub fn matmul_colstable_into(
        &self,
        rhs: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut crate::Workspace,
    ) -> Result<()> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul_colstable",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        check_out_shape("matmul_colstable_into", out, m, n)?;
        crate::metrics::GEMM_COLSTABLE_DISPATCHES.inc();
        if n == 1 {
            // Already the dot fast path — no scratch needed.
            return self.matmul_into(rhs, out);
        }
        // Gather each rhs column contiguously: rhs_t[j·k + l] = rhs[l, j].
        // With n == 1 the operand `v` handed to `dot` *is* rhs's single
        // column; this scratch reproduces that operand exactly for every
        // column of a wider batch.
        let mut rhs_t = ws.take(n * k);
        let b = rhs.as_slice();
        for (l, brow) in b.chunks_exact(n).enumerate() {
            for (j, &v) in brow.iter().enumerate() {
                rhs_t[j * k + l] = v;
            }
        }
        let a_slice = self.as_slice();
        let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
        let rhs_t_ref = &rhs_t;
        par_row_chunks(out.as_mut_slice(), n, flops, |i0, chunk| {
            for (r, orow) in chunk.chunks_exact_mut(n).enumerate() {
                let arow = &a_slice[(i0 + r) * k..(i0 + r + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot(arow, &rhs_t_ref[j * k..(j + 1) * k]);
                }
            }
        });
        ws.give(rhs_t);
        Ok(())
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// Used heavily by the Gram-matrix rewrite (`TᵀT`) and gradient
    /// computations (`Xᵀr`).
    pub fn transpose_matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.cols(), rhs.cols());
        self.transpose_matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ * rhs` written into the caller-owned `out`
    /// (`self.cols() × rhs.cols()`, fully overwritten).
    ///
    /// # Errors
    /// Dimension mismatch of the operands or of `out`.
    pub fn transpose_matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.rows() != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (k, m) = self.shape(); // output is m×n
        let n = rhs.cols();
        check_out_shape("transpose_matmul_into", out, m, n)?;
        let a_slice = self.as_slice();
        let o = out.as_mut_slice();
        // Vector fast path: out[i] = Σ_l A[l,i]·x[l], streamed over rows of
        // A so the access pattern stays contiguous.
        if n == 1 {
            let x = rhs.as_slice();
            o.fill(0.0);
            for (l, &xl) in x.iter().enumerate() {
                if xl == 0.0 {
                    continue;
                }
                axpy(xl, &a_slice[l * m..(l + 1) * m], o);
            }
            return Ok(());
        }
        let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
        if n >= NR && flops >= PACK_FLOP_THRESHOLD {
            let a = Operand {
                buf: a_slice,
                layout: Layout { rs: 1, cs: m },
            };
            let b = Operand {
                buf: rhs.as_slice(),
                layout: Layout { rs: n, cs: 1 },
            };
            gemm_driver(a, b, o, m, k, n);
            return Ok(());
        }
        // Small-problem path: row-panel accumulation over chunks of the
        // output rows (parallel when worthwhile).
        let b_slice = rhs.as_slice();
        par_row_chunks(o, n, flops, |i0, chunk| {
            chunk.fill(0.0);
            let rows_here = chunk.len() / n;
            for l in 0..k {
                let arow = &a_slice[l * m + i0..l * m + i0 + rows_here];
                let brow = &b_slice[l * n..(l + 1) * n];
                for (i, &aval) in arow.iter().enumerate() {
                    if aval == 0.0 {
                        continue;
                    }
                    axpy(aval, brow, &mut chunk[i * n..(i + 1) * n]);
                }
            }
        });
        Ok(())
    }

    /// `self * rhsᵀ` without materializing the transpose.
    pub fn matmul_transpose(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows(), rhs.rows());
        self.matmul_transpose_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `self * rhsᵀ` written into the caller-owned `out`
    /// (`self.rows() × rhs.rows()`, fully overwritten).
    ///
    /// # Errors
    /// Dimension mismatch of the operands or of `out`.
    pub fn matmul_transpose_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.cols() != rhs.cols() {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let m = self.rows();
        let n = rhs.rows();
        let k = self.cols();
        check_out_shape("matmul_transpose_into", out, m, n)?;
        let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
        let a_slice = self.as_slice();
        let b_slice = rhs.as_slice();
        let o = out.as_mut_slice();
        if n >= NR && flops >= PACK_FLOP_THRESHOLD {
            let a = Operand {
                buf: a_slice,
                layout: Layout { rs: k, cs: 1 },
            };
            let b = Operand {
                buf: b_slice,
                layout: Layout { rs: 1, cs: k },
            };
            gemm_driver(a, b, o, m, k, n);
            return Ok(());
        }
        // Small-problem path: both operands are row-major over `k`, so
        // each output cell is one contiguous dot product.
        par_row_chunks(o, n.max(1), flops, |i0, chunk| {
            for (i, orow) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
                let arow = &a_slice[(i0 + i) * k..(i0 + i + 1) * k];
                for (j, oval) in orow.iter_mut().enumerate() {
                    *oval = dot(arow, &b_slice[j * k..(j + 1) * k]);
                }
            }
        });
        Ok(())
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols() != v.len() {
            return Err(MatrixError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self.row_iter().map(|row| dot(row, v)).collect())
    }

    /// Gram matrix `selfᵀ * self`, exploiting symmetry: only the upper
    /// triangle is accumulated (row-parallel over output rows), then
    /// mirrored.
    pub fn gram(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols(), self.cols());
        self.gram_into_unchecked(&mut out);
        out
    }

    /// [`Self::gram`] written into the caller-owned `out`
    /// (`cols × cols`, fully overwritten).
    ///
    /// # Errors
    /// Shape mismatch of `out`.
    pub fn gram_into(&self, out: &mut DenseMatrix) -> Result<()> {
        let c = self.cols();
        check_out_shape("gram_into", out, c, c)?;
        self.gram_into_unchecked(out);
        Ok(())
    }

    /// [`Self::gram_into`] without the output-shape validation — for
    /// internal callers that just allocated `out` with the right shape.
    fn gram_into_unchecked(&self, out: &mut DenseMatrix) {
        let (r, c) = self.shape();
        let a = self.as_slice();
        let o = out.as_mut_slice();
        // Work estimate: half the full product thanks to symmetry.
        let flops = r.saturating_mul(c).saturating_mul(c);
        par_row_chunks(o, c.max(1), flops, |c0, chunk| {
            chunk.fill(0.0);
            let cols_here = chunk.len() / c.max(1);
            for l in 0..r {
                let row = &a[l * c..(l + 1) * c];
                for i in c0..c0 + cols_here {
                    let v = row[i];
                    if v == 0.0 {
                        continue;
                    }
                    let orow = &mut chunk[(i - c0) * c + i..(i - c0 + 1) * c];
                    axpy(v, &row[i..], orow);
                }
            }
        });
        // Mirror the upper triangle into the lower one.
        for i in 0..c {
            for j in 0..i {
                o[i * c + j] = o[j * c + i];
            }
        }
    }
}

/// A logical GEMM operand: a flat buffer plus the strides mapping
/// logical `(i, j)` coordinates into it.
#[derive(Clone, Copy)]
struct Operand<'a> {
    buf: &'a [f64],
    layout: Layout,
}

/// Computes `out = A·B` (`out` fully overwritten), choosing between the
/// packed micro-kernel and the blocked axpy loops, and splitting output
/// rows across threads when the problem is large enough.
fn gemm_driver(a: Operand<'_>, b: Operand<'_>, out: &mut [f64], m: usize, k: usize, n: usize) {
    if n == 0 || m == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    let use_packed = n >= NR && flops >= PACK_FLOP_THRESHOLD;
    if use_packed {
        crate::metrics::GEMM_PACKED_DISPATCHES.inc();
    } else {
        crate::metrics::GEMM_FALLBACK_DISPATCHES.inc();
    }
    par_row_chunks(out, n, flops, |row0, chunk| {
        chunk.fill(0.0);
        let rows_here = chunk.len() / n;
        if use_packed {
            packed_gemm(a, b, chunk, row0, rows_here, k, n);
        } else {
            axpy_gemm(a, b, chunk, row0, rows_here, k, n);
        }
    });
}

/// Reference path for small problems: cache-blocked `i-k-j` loops,
/// accumulating `B` rows into `C` rows (no packing).
fn axpy_gemm(
    a: Operand<'_>,
    b: Operand<'_>,
    out: &mut [f64],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    let b_contiguous = b.layout.cs == 1;
    for kb in (0..k).step_by(KC) {
        let kmax = (kb + KC).min(k);
        for i in 0..rows {
            let crow = &mut out[i * n..(i + 1) * n];
            for l in kb..kmax {
                let aval = a.buf[a.layout.at(row0 + i, l)];
                if aval == 0.0 {
                    continue;
                }
                if b_contiguous {
                    let brow = &b.buf[b.layout.at(l, 0)..b.layout.at(l, 0) + n];
                    axpy(aval, brow, crow);
                } else {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        *cv += aval * b.buf[b.layout.at(l, j)];
                    }
                }
            }
        }
    }
}

/// Packed macro-kernel: `jc → kb → ib` blocking with `MR × NR`
/// register tiles (see the module docs).
fn packed_gemm(
    a: Operand<'_>,
    b: Operand<'_>,
    out: &mut [f64],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    PACK_BUFS.with(|bufs| {
        let (pack_a, pack_b) = &mut *bufs.borrow_mut();
        pack_a.resize(MC.div_ceil(MR) * MR * KC, 0.0);
        pack_b.resize(NC.div_ceil(NR) * NR * KC, 0.0);
        for jc in (0..n).step_by(NC) {
            let ncb = (jc + NC).min(n) - jc;
            let n_panels = ncb.div_ceil(NR);
            for kb in (0..k).step_by(KC) {
                let kcb = (kb + KC).min(k) - kb;
                pack_b_panels(b, kb, kcb, jc, ncb, pack_b);
                for ib in (0..rows).step_by(MC) {
                    let mcb = (ib + MC).min(rows) - ib;
                    let m_panels = mcb.div_ceil(MR);
                    pack_a_panels(a, row0 + ib, mcb, kb, kcb, pack_a);
                    for p in 0..m_panels {
                        let pa = &pack_a[p * MR * kcb..(p + 1) * MR * kcb];
                        for q in 0..n_panels {
                            let pb = &pack_b[q * NR * kcb..(q + 1) * NR * kcb];
                            let mut acc = [[0.0f64; NR]; MR];
                            micro_kernel(pa, pb, &mut acc);
                            // Write the valid part of the tile back.
                            let tile_rows = MR.min(mcb - p * MR);
                            let tile_cols = NR.min(ncb - q * NR);
                            for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                                let orow_start = (ib + p * MR + r) * n + jc + q * NR;
                                let orow = &mut out[orow_start..orow_start + tile_cols];
                                for (o, &v) in orow.iter_mut().zip(acc_row.iter()) {
                                    *o += v;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Packs `mc` logical rows × `kc` depth of `A` into column-major
/// `MR`-row panels (`buf[p·MR·kc + kk·MR + r]`), zero-padding the tail
/// panel so the micro-kernel never branches on edges.
fn pack_a_panels(a: Operand<'_>, i0: usize, mc: usize, k0: usize, kc: usize, buf: &mut [f64]) {
    for p in 0..mc.div_ceil(MR) {
        let panel = &mut buf[p * MR * kc..(p + 1) * MR * kc];
        let rows_here = MR.min(mc - p * MR);
        for (kk, chunk) in panel.chunks_exact_mut(MR).enumerate() {
            for (r, slot) in chunk.iter_mut().enumerate() {
                *slot = if r < rows_here {
                    a.buf[a.layout.at(i0 + p * MR + r, k0 + kk)]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `kc` depth × `nc` logical columns of `B` into row-major
/// `NR`-column panels (`buf[q·NR·kc + kk·NR + c]`), zero-padded.
fn pack_b_panels(b: Operand<'_>, k0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f64]) {
    for q in 0..nc.div_ceil(NR) {
        let panel = &mut buf[q * NR * kc..(q + 1) * NR * kc];
        let cols_here = NR.min(nc - q * NR);
        for (kk, chunk) in panel.chunks_exact_mut(NR).enumerate() {
            for (c, slot) in chunk.iter_mut().enumerate() {
                *slot = if c < cols_here {
                    b.buf[b.layout.at(k0 + kk, j0 + q * NR + c)]
                } else {
                    0.0
                };
            }
        }
    }
}

/// The register tile: `acc[r][c] += Σ_kk pa[kk·MR + r] · pb[kk·NR + c]`.
///
/// `pa`/`pb` are packed panels of equal depth; the fixed-size loops
/// vectorize to fused multiply-adds over the whole tile.
#[inline(always)]
fn micro_kernel(pa: &[f64], pb: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (ak, bk) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = ak[r];
            for (c, slot) in acc_row.iter_mut().enumerate() {
                *slot += ar * bk[c];
            }
        }
    }
}

/// `y += a * x` over equal-length slices.
#[inline]
pub(crate) fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    // Four-way unrolled accumulation: keeps independent dependency chains
    // so the compiler can vectorize.
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc) {
        s0 += a[0] * b[0];
        s1 += a[1] * b[1];
        s2 += a[2] * b[2];
        s3 += a[3] * b[3];
    }
    let mut tail = 0.0;
    for (a, b) in xr.iter().zip(yr) {
        tail += a * b;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Re-exported so benchmarks can report the configured thread count.
pub fn kernel_threads() -> usize {
    available_threads()
}

/// Blocking parameters of the packed kernel, for diagnostics and
/// benchmark metadata: `(MR, NR, MC, KC, NC)`.
pub const fn kernel_blocking() -> (usize, usize, usize, usize, usize) {
    (MR, NR, MC, KC, NC)
}

/// FLOP threshold above which kernels may go parallel (re-exported for
/// benchmark sizing).
pub const fn parallel_flop_threshold() -> usize {
    PAR_WORK_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference implementation used to validate the optimized kernels.
    fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.get(i, l) * b.get(l, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(13, 13, -2.0, 2.0, &mut rng);
        let i = DenseMatrix::identity(13);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            MatrixError::DimensionMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matmul_matches_naive_medium() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(37, 53, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(53, 29, -1.0, 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = matmul_naive(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn matmul_packed_path_matches_naive() {
        // Big enough to cross PACK_FLOP_THRESHOLD, with awkward edge
        // sizes in every dimension (not multiples of MR/NR/KC).
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(67, 130, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(130, 41, -1.0, 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = matmul_naive(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Big enough to cross the parallel threshold: 2*200*200*120 = 9.6e6.
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(200, 120, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(120, 200, -1.0, 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = matmul_naive(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn matmul_into_reuses_buffer_and_overwrites() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(9, 7, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(7, 5, -1.0, 1.0, &mut rng);
        // Dirty output buffer: matmul_into must fully overwrite it.
        let mut out = DenseMatrix::filled(9, 5, 123.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert!(out.approx_eq(&matmul_naive(&a, &b), 1e-10));
        // Shape-checked.
        let mut wrong = DenseMatrix::zeros(9, 4);
        assert!(a.matmul_into(&b, &mut wrong).is_err());
    }

    #[test]
    fn matmul_colstable_matches_naive() {
        let mut rng = rand::thread_rng();
        let mut ws = crate::Workspace::new();
        for (m, k, n) in [(9, 7, 5), (40, 33, 12), (1, 4, 3), (6, 1, 2)] {
            let a = DenseMatrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
            let mut out = DenseMatrix::filled(m, n, 77.0); // dirty buffer
            a.matmul_colstable_into(&b, &mut out, &mut ws).unwrap();
            assert!(out.approx_eq(&matmul_naive(&a, &b), 1e-10));
        }
        let a = DenseMatrix::zeros(3, 2);
        let b = DenseMatrix::zeros(4, 2);
        let mut out = DenseMatrix::zeros(3, 2);
        assert!(a.matmul_colstable_into(&b, &mut out, &mut ws).is_err());
        let b = DenseMatrix::zeros(2, 5);
        assert!(a.matmul_colstable_into(&b, &mut out, &mut ws).is_err());
    }

    #[test]
    fn matmul_colstable_columns_bit_identical_to_matvec() {
        // The serving-batch contract: column j of a batched product is
        // bit-for-bit the n == 1 fast-path result for that column alone,
        // at any batch width (including widths that would normally take
        // the packed kernel).
        let mut rng = rand::thread_rng();
        let mut ws = crate::Workspace::new();
        let a = DenseMatrix::random_uniform(70, 50, -1.0, 1.0, &mut rng);
        for n in [2usize, 8, 17] {
            let b = DenseMatrix::random_uniform(50, n, -1.0, 1.0, &mut rng);
            let mut batched = DenseMatrix::zeros(70, n);
            a.matmul_colstable_into(&b, &mut batched, &mut ws).unwrap();
            for j in 0..n {
                let col = DenseMatrix::column_vector(&b.col(j));
                let single = a.matmul(&col).unwrap();
                for i in 0..70 {
                    assert!(
                        batched.get(i, j).to_bits() == single.get(i, 0).to_bits(),
                        "batch width {n}, cell ({i},{j}) differs"
                    );
                }
            }
        }
        // Steady state: repeated calls reuse the pooled scratch.
        let warm = ws.fresh_allocations();
        let b = DenseMatrix::random_uniform(50, 8, -1.0, 1.0, &mut rng);
        let mut out = DenseMatrix::zeros(70, 8);
        a.matmul_colstable_into(&b, &mut out, &mut ws).unwrap();
        assert_eq!(ws.fresh_allocations(), warm);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(23, 11, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(23, 7, -1.0, 1.0, &mut rng);
        let fused = a.transpose_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-10));
        assert!(a.transpose_matmul(&DenseMatrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn transpose_matmul_packed_path_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(150, 90, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(150, 33, -1.0, 1.0, &mut rng);
        let fused = a.transpose_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn transpose_matmul_into_overwrites_dirty_buffer() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(12, 6, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(12, 3, -1.0, 1.0, &mut rng);
        let mut out = DenseMatrix::filled(6, 3, -7.0);
        a.transpose_matmul_into(&b, &mut out).unwrap();
        assert!(out.approx_eq(&a.transpose().matmul(&b).unwrap(), 1e-10));
        let mut y = DenseMatrix::filled(6, 1, 9.0);
        let x = DenseMatrix::random_uniform(12, 1, -1.0, 1.0, &mut rng);
        a.transpose_matmul_into(&x, &mut y).unwrap();
        assert!(y.approx_eq(&a.transpose().matmul(&x).unwrap(), 1e-10));
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(9, 14, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(6, 14, -1.0, 1.0, &mut rng);
        let fused = a.matmul_transpose(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-10));
        assert!(a.matmul_transpose(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_transpose_packed_path_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(70, 110, -1.0, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(45, 110, -1.0, 1.0, &mut rng);
        let fused = a.matmul_transpose(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit() {
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(31, 17, -1.0, 1.0, &mut rng);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-10));
        // Gram matrices are symmetric.
        assert!(g.approx_eq(&g.transpose(), 1e-12));
    }

    #[test]
    fn gram_parallel_path_matches_explicit() {
        // c large enough that r·c² crosses the parallel threshold.
        let mut rng = rand::thread_rng();
        let a = DenseMatrix::random_uniform(120, 200, -1.0, 1.0, &mut rng);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn zero_sized_products() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 4));
        let c = DenseMatrix::zeros(4, 0);
        assert_eq!(b.matmul(&c).unwrap().shape(), (3, 0));
        // k == 0: the product is all zeros, and `_into` must clear dirty
        // output buffers rather than leave stale values behind.
        let e = DenseMatrix::zeros(3, 0);
        let f = DenseMatrix::zeros(0, 4);
        let mut out = DenseMatrix::filled(3, 4, 5.0);
        e.matmul_into(&f, &mut out).unwrap();
        assert!(out.approx_eq(&DenseMatrix::zeros(3, 4), 1e-12));
    }

    #[test]
    fn dot_handles_remainders() {
        assert_eq!(dot(&[1.0; 7], &[2.0; 7]), 14.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[3.0], &[4.0]), 12.0);
    }

    proptest! {
        #[test]
        fn prop_matmul_matches_naive(
            m in 1usize..12, k in 1usize..12, n in 1usize..12,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -3.0, 3.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -3.0, 3.0, &mut rng);
            let fast = a.matmul(&b).unwrap();
            let slow = matmul_naive(&a, &b);
            prop_assert!(fast.approx_eq(&slow, 1e-9));
        }

        #[test]
        fn prop_packed_kernel_matches_naive_at_edges(
            // Sizes straddling the micro/macro tile boundaries.
            dm in 0usize..6, dk in 0usize..6, dn in 0usize..6,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (m, k, n) = (MC + dm - 3, KC + dk - 3, NR * 4 + dn - 3);
            let a = DenseMatrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
            let fast = a.matmul(&b).unwrap();
            let slow = matmul_naive(&a, &b);
            prop_assert!(fast.approx_eq(&slow, 1e-9));
        }

        #[test]
        fn prop_matmul_distributes_over_addition(
            m in 1usize..8, k in 1usize..8, n in 1usize..8,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            let c = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }

        #[test]
        fn prop_transpose_of_product(
            m in 1usize..8, k in 1usize..8, n in 1usize..8,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            // (AB)ᵀ = BᵀAᵀ
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }

        #[test]
        fn prop_fused_transposes_match_explicit(
            m in 1usize..40, k in 1usize..40, n in 1usize..40,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = DenseMatrix::random_uniform(m, n, -2.0, 2.0, &mut rng);
            prop_assert!(a
                .transpose_matmul(&b)
                .unwrap()
                .approx_eq(&a.transpose().matmul(&b).unwrap(), 1e-9));
            let c = DenseMatrix::random_uniform(n, k, -2.0, 2.0, &mut rng);
            prop_assert!(a
                .matmul_transpose(&c)
                .unwrap()
                .approx_eq(&a.matmul(&c.transpose()).unwrap(), 1e-9));
        }
    }
}
