//! Dense and sparse linear algebra substrate for Amalur.
//!
//! The paper represents data-integration metadata as matrices and rewrites
//! ML computations into linear-algebra expressions over source tables
//! (§III–IV of *Amalur: Data Integration Meets Machine Learning*, ICDE'23).
//! This crate provides the matrix machinery those rewrites run on:
//!
//! * [`DenseMatrix`] — row-major `f64` matrices with blocked, multi-threaded
//!   matrix multiplication and the usual element-wise operations.
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed sparse row / coordinate
//!   matrices, used for the (very sparse) full mapping and indicator
//!   matrices `Mₖ` and `Iₖ`.
//! * Gather/scatter kernels ([`DenseMatrix::gather_rows`],
//!   [`DenseMatrix::scatter_rows_add`], …) that apply the *compressed*
//!   metadata vectors `CMₖ`/`CIₖ` without ever building the sparse
//!   matrices — the physical-level implementation suggested in §III-D.
//! * A [`Workspace`] scratch-buffer pool plus `_into` kernel variants,
//!   so iterative training loops run allocation-free in steady state.
//!
//! Everything is implemented from scratch; no external BLAS is required.
//!
//! # Kernel architecture
//!
//! Dense multiplication runs through a packed, register-blocked
//! micro-kernel (`MR×NR = 4×8` register tiles over `MC/KC/NC =
//! 64/256/512` cache blocks; see `gemm.rs` for the full description).
//! Packing is stride-parameterized, so `A·B`, `Aᵀ·B` and `A·Bᵀ` all
//! share one kernel and none of them materializes a transpose. All
//! multiplication kernels — including [`DenseMatrix::gram`] — split
//! their *output rows* into disjoint chunks across threads once the
//! problem exceeds a FLOP threshold; inputs are shared read-only, so no
//! synchronization is needed beyond the scoped join.
//!
//! # `Workspace` / `_into` conventions
//!
//! Every allocation in a hot loop is a bug. The conventions:
//!
//! 1. For any producing kernel `op(&self, …) -> Result<DenseMatrix>`
//!    there is an `op_into(&self, …, out: &mut DenseMatrix)` variant
//!    that **fully overwrites** a caller-owned, correctly-shaped `out`
//!    (shape-checked, dirty buffers are fine) and never allocates for
//!    the output.
//! 2. Scratch space comes from a [`Workspace`]: `take`/`take_matrix`
//!    check zeroed buffers out of a capacity-tracked pool,
//!    `give`/`give_matrix` return them. A loop that takes and gives the
//!    same shapes every iteration allocates only on its first pass —
//!    [`Workspace::fresh_allocations`] makes that assertable in tests.
//! 3. Kernels that receive a workspace return every buffer they took
//!    before returning, even on error paths that occur after checkout.
//! 4. In-place updates (`add_assign`, [`DenseMatrix::axpy_assign`],
//!    [`DenseMatrix::sub_assign`], `scale_inplace`) are preferred over
//!    `_into` when the destination is also an operand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
mod gemm;
pub mod metrics;
mod ops;
mod par;
mod select;
mod solve;
mod sparse;
mod workspace;

pub use dense::DenseMatrix;
pub use error::{MatrixError, Result};
pub use gemm::{kernel_blocking, kernel_threads, parallel_flop_threshold};
pub use metrics::mount_metrics;
pub use par::{
    par_row_chunks, par_row_chunks_with, set_thread_budget, thread_budget, with_thread_budget,
};
pub use select::{selection_matrix, NO_MATCH};
pub use sparse::{CooMatrix, CsrMatrix};
pub use workspace::{Workspace, WorkspaceArena, WorkspaceLease};

/// Tolerance used throughout the workspace when comparing floating point
/// results of algebraically-equivalent computation strategies.
pub const EQ_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal within `tol` absolutely or
/// relatively (whichever is more permissive).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= scale * tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(0.0, 1e-10, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-9));
    }
}
