//! Dense and sparse linear algebra substrate for Amalur.
//!
//! The paper represents data-integration metadata as matrices and rewrites
//! ML computations into linear-algebra expressions over source tables
//! (§III–IV of *Amalur: Data Integration Meets Machine Learning*, ICDE'23).
//! This crate provides the matrix machinery those rewrites run on:
//!
//! * [`DenseMatrix`] — row-major `f64` matrices with blocked, multi-threaded
//!   matrix multiplication and the usual element-wise operations.
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed sparse row / coordinate
//!   matrices, used for the (very sparse) full mapping and indicator
//!   matrices `Mₖ` and `Iₖ`.
//! * Gather/scatter kernels ([`DenseMatrix::gather_rows`],
//!   [`DenseMatrix::scatter_rows_add`], …) that apply the *compressed*
//!   metadata vectors `CMₖ`/`CIₖ` without ever building the sparse
//!   matrices — the physical-level implementation suggested in §III-D.
//!
//! Everything is implemented from scratch; no external BLAS is required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
mod gemm;
mod ops;
mod select;
mod solve;
mod sparse;

pub use dense::DenseMatrix;
pub use error::{MatrixError, Result};
pub use select::{selection_matrix, NO_MATCH};
pub use sparse::{CooMatrix, CsrMatrix};

/// Tolerance used throughout the workspace when comparing floating point
/// results of algebraically-equivalent computation strategies.
pub const EQ_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal within `tol` absolutely or
/// relatively (whichever is more permissive).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= scale * tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(0.0, 1e-10, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-9));
    }
}
