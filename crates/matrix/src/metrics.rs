//! Kernel-layer observability: `static` metrics and their mount point.
//!
//! The GEMM driver has no registry plumbing — and must not grow any,
//! since dispatch runs inside `_into` kernels where the record path has
//! to stay allocation-free. The metrics therefore live here as
//! `static`s (recording is a relaxed atomic add) and hosts that want
//! them in a dump call [`mount_metrics`] on their
//! [`amalur_obs::MetricsRegistry`].

use amalur_obs::{Counter, Gauge, MetricsRegistry};

/// GEMM calls routed to the packed register-blocked micro-kernel.
pub(crate) static GEMM_PACKED_DISPATCHES: Counter = Counter::new();

/// GEMM calls routed to the blocked-axpy fallback (small problems).
pub(crate) static GEMM_FALLBACK_DISPATCHES: Counter = Counter::new();

/// Column-stable GEMM calls (the serving batching contract path).
pub(crate) static GEMM_COLSTABLE_DISPATCHES: Counter = Counter::new();

/// Largest number of `f64` elements any single [`crate::Workspace`]
/// had checked out at once, process-wide.
pub(crate) static WORKSPACE_HIGH_WATER_ELEMS: Gauge = Gauge::new();

/// Mounts the kernel-layer metrics into `reg` under the
/// `matrix.gemm.*` / `matrix.workspace.*` names.
pub fn mount_metrics(reg: &MetricsRegistry) {
    reg.mount_counter("matrix.gemm.packed_dispatches", &GEMM_PACKED_DISPATCHES);
    reg.mount_counter("matrix.gemm.fallback_dispatches", &GEMM_FALLBACK_DISPATCHES);
    reg.mount_counter(
        "matrix.gemm.colstable_dispatches",
        &GEMM_COLSTABLE_DISPATCHES,
    );
    reg.mount_gauge(
        "matrix.workspace.high_water_elems",
        &WORKSPACE_HIGH_WATER_ELEMS,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMatrix;

    #[test]
    fn gemm_dispatch_is_counted() {
        let reg = MetricsRegistry::new();
        mount_metrics(&reg);
        let before = reg.snapshot();
        let small = DenseMatrix::filled(4, 4, 1.0);
        small.matmul(&small).expect("square matmul");
        let big = DenseMatrix::filled(192, 192, 1.0);
        big.matmul(&big).expect("square matmul");
        let after = reg.snapshot();
        let packed = after.counter("matrix.gemm.packed_dispatches").unwrap_or(0)
            - before.counter("matrix.gemm.packed_dispatches").unwrap_or(0);
        let fallback = after
            .counter("matrix.gemm.fallback_dispatches")
            .unwrap_or(0)
            - before
                .counter("matrix.gemm.fallback_dispatches")
                .unwrap_or(0);
        assert!(packed >= 1, "192³ routes to the packed kernel");
        assert!(fallback >= 1, "4³ routes to the axpy fallback");
    }

    #[test]
    fn workspace_high_water_reaches_the_gauge() {
        let mut ws = crate::Workspace::new();
        let m = ws.take_matrix(32, 32);
        ws.give_matrix(m);
        assert!(ws.high_water_elems() >= 32 * 32);
        assert!(WORKSPACE_HIGH_WATER_ELEMS.get() >= 32 * 32);
    }
}
