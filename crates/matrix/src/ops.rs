//! Element-wise operations and reductions.

use crate::{DenseMatrix, MatrixError, Result};

impl DenseMatrix {
    fn zip_with(
        &self,
        other: &DenseMatrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        DenseMatrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Hadamard (element-wise) product `self ∘ other`.
    ///
    /// This is the operator the Amalur rewrite uses to knock out redundant
    /// contributions: `(Tₖ ∘ Rₖ)` in Equation (2) of the paper.
    pub fn hadamard(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Element-wise division `self / other` (no zero-checking; IEEE
    /// semantics apply).
    pub fn div_elem(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "div_elem", |a, b| a / b)
    }

    /// Element-wise difference written into the caller-owned `out`
    /// (fully overwritten; see the crate docs for `_into` conventions).
    ///
    /// # Errors
    /// Shape mismatch of either operand or `out`.
    pub fn sub_into(&self, other: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() || self.shape() != out.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "sub_into",
                lhs: self.shape(),
                rhs: if self.shape() != other.shape() {
                    other.shape()
                } else {
                    out.shape()
                },
            });
        }
        for ((o, &a), &b) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.as_slice())
            .zip(other.as_slice())
        {
            *o = a - b;
        }
        Ok(())
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "sub_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (matrix AXPY).
    pub fn axpy_assign(&mut self, alpha: f64, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "axpy_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * alpha` for a scalar `alpha`.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        self.map(|x| x * alpha)
    }

    /// In-place scalar multiplication.
    pub fn scale_inplace(&mut self, alpha: f64) {
        self.map_inplace(|x| x * alpha);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().sum()
    }

    /// Per-row sums, as a column vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f64> {
        self.row_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums, as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols()];
        for row in self.row_iter() {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Mean of all elements; `NaN` for empty matrices.
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Frobenius norm `sqrt(Σ xᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice().iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm (avoids the square root).
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.as_slice().iter().map(|&x| x * x).sum()
    }

    /// Index of the maximum element in row `i`.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        let mut best_val = f64::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best = j;
            }
        }
        best
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.as_slice().iter().filter(|&&x| x != 0.0).count()
    }

    /// Fraction of elements that are zero (1.0 for empty matrices).
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        1.0 - self.nnz() as f64 / self.len() as f64
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.as_slice().iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, -2.0, 3.0], vec![0.0, 4.0, -1.0]]).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = a.scale(2.0);
        let sum = a.add(&b).unwrap();
        assert!(sum.approx_eq(&a.scale(3.0), 1e-12));
        let diff = sum.sub(&b).unwrap();
        assert!(diff.approx_eq(&a, 1e-12));
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = sample();
        let b = DenseMatrix::zeros(3, 2);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.hadamard(&b).is_err());
        assert!(a.div_elem(&b).is_err());
        let mut c = a.clone();
        assert!(c.add_assign(&b).is_err());
        assert!(c.axpy_assign(0.5, &b).is_err());
    }

    #[test]
    fn hadamard_with_binary_mask_zeros_entries() {
        let a = sample();
        let mask = DenseMatrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 0.0]]).unwrap();
        let masked = a.hadamard(&mask).unwrap();
        assert_eq!(masked.row(0), &[1.0, 0.0, 3.0]);
        assert_eq!(masked.row(1), &[0.0, 4.0, 0.0]);
    }

    #[test]
    fn div_elem_ieee() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let d = a.div_elem(&b).unwrap();
        assert!(d.get(0, 0).is_infinite());
        assert!(d.get(0, 1).is_nan());
        assert!(d.has_non_finite());
    }

    #[test]
    fn sub_into_and_sub_assign_match_sub() {
        let a = sample();
        let b = a.scale(0.25);
        let expected = a.sub(&b).unwrap();
        let mut out = DenseMatrix::filled(2, 3, 99.0); // dirty buffer
        a.sub_into(&b, &mut out).unwrap();
        assert!(out.approx_eq(&expected, 1e-12));
        let mut c = a.clone();
        c.sub_assign(&b).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
        // Shape checks.
        let wrong = DenseMatrix::zeros(3, 2);
        assert!(a.sub_into(&wrong, &mut out).is_err());
        let mut small = DenseMatrix::zeros(1, 1);
        assert!(a.sub_into(&b, &mut small).is_err());
        assert!(c.sub_assign(&wrong).is_err());
    }

    #[test]
    fn axpy_assign_accumulates() {
        let mut acc = DenseMatrix::zeros(2, 3);
        acc.axpy_assign(2.0, &sample()).unwrap();
        acc.axpy_assign(-1.0, &sample()).unwrap();
        assert!(acc.approx_eq(&sample(), 1e-12));
    }

    #[test]
    fn reductions() {
        let a = sample();
        assert_eq!(a.sum(), 5.0);
        assert_eq!(a.row_sums(), vec![2.0, 3.0]);
        assert_eq!(a.col_sums(), vec![1.0, 2.0, 2.0]);
        assert!((a.mean() - 5.0 / 6.0).abs() < 1e-12);
        assert!((a.frobenius_norm_sq() - 31.0).abs() < 1e-12);
        assert!((a.frobenius_norm() - 31.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn argmax_and_nnz() {
        let a = sample();
        assert_eq!(a.row_argmax(0), 2);
        assert_eq!(a.row_argmax(1), 1);
        assert_eq!(a.nnz(), 5);
        assert!((a.sparsity() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sparsity_of_empty_matrix() {
        assert_eq!(DenseMatrix::zeros(0, 0).sparsity(), 1.0);
    }

    #[test]
    fn scale_inplace_matches_scale() {
        let a = sample();
        let mut b = a.clone();
        b.scale_inplace(-0.5);
        assert!(b.approx_eq(&a.scale(-0.5), 1e-12));
    }

    proptest! {
        #[test]
        fn prop_row_plus_col_sums_equal_total(
            m in 1usize..10, n in 1usize..10, seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, n, -5.0, 5.0, &mut rng);
            let by_rows: f64 = a.row_sums().iter().sum();
            let by_cols: f64 = a.col_sums().iter().sum();
            prop_assert!((by_rows - a.sum()).abs() < 1e-9);
            prop_assert!((by_cols - a.sum()).abs() < 1e-9);
        }

        #[test]
        fn prop_hadamard_commutes(
            m in 1usize..8, n in 1usize..8, seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = DenseMatrix::random_uniform(m, n, -2.0, 2.0, &mut rng);
            let b = DenseMatrix::random_uniform(m, n, -2.0, 2.0, &mut rng);
            prop_assert!(a.hadamard(&b).unwrap().approx_eq(&b.hadamard(&a).unwrap(), 1e-12));
        }
    }
}
