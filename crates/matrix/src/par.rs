//! Row-parallel execution helper shared by the matrix kernels.
//!
//! Every parallel kernel in this workspace has the same shape: an
//! output buffer split into disjoint row chunks, one worker per chunk,
//! workers reading shared inputs. [`par_row_chunks`] centralizes the
//! chunking, the spawn-threshold policy and the `thread::scope` plumbing
//! so each kernel only supplies the per-chunk closure.
//!
//! # Thread budget
//!
//! Long-lived hosts (the `amalur-serve` worker pool) run N request
//! workers concurrently; if each kernel call then fanned out to all
//! cores, the machine would run N × cores threads. The thread-local
//! budget set by [`set_thread_budget`] / [`with_thread_budget`] caps how
//! many workers *any* kernel invoked from the current thread may spawn,
//! so a serving worker pinned to `cores / N` threads keeps the whole
//! pool at ≤ cores kernel threads. The budget applies to both the
//! automatic ([`par_row_chunks`]) and explicit
//! ([`par_row_chunks_with`]) entry points; a budget of 1 forces fully
//! serial kernels.

use std::cell::Cell;

/// Minimum amount of work (in FLOPs or touched cells) before threads
/// are spawned; below this the scheduling overhead dominates.
pub(crate) const PAR_WORK_THRESHOLD: usize = 4_000_000;

thread_local! {
    /// Per-thread cap on kernel worker threads; `usize::MAX` = uncapped.
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Caps the number of worker threads kernels called from this thread
/// may spawn. A budget of 0 or 1 forces serial execution;
/// `usize::MAX` restores the default (hardware parallelism).
///
/// The budget is thread-local: a serving worker sets it once at startup
/// and every kernel it invokes afterwards respects it, without the cap
/// leaking into other threads' kernels.
pub fn set_thread_budget(threads: usize) {
    THREAD_BUDGET.with(|b| b.set(threads.max(1)));
}

/// The current thread's kernel-thread budget (`usize::MAX` = uncapped).
pub fn thread_budget() -> usize {
    THREAD_BUDGET.with(Cell::get)
}

/// Runs `f` with the thread budget temporarily set to `threads`,
/// restoring the previous budget afterwards (panic-safe only in the
/// no-unwind sense: kernels here don't catch unwinds).
pub fn with_thread_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = thread_budget();
    set_thread_budget(threads);
    let out = f();
    set_thread_budget(prev);
    out
}

/// Number of worker threads the kernels may use: hardware parallelism
/// capped by the current thread's budget.
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(thread_budget())
}

/// Runs `work(first_row, chunk)` over disjoint row chunks of `out`.
///
/// * `out` — output buffer of `rows * row_len` elements, split on row
///   boundaries;
/// * `row_len` — elements per row (chunks never split a row);
/// * `total_work` — FLOP estimate for the whole call; below
///   [`PAR_WORK_THRESHOLD`] (or with one core, or fewer rows than
///   workers) the closure runs once, serially, on the full buffer.
///
/// The closure receives the index of its chunk's first row and the
/// mutable chunk itself.
///
/// Public so downstream crates (the factorized operators in
/// `amalur-factorize`) reuse the same chunking and threshold policy.
pub fn par_row_chunks<F>(out: &mut [f64], row_len: usize, total_work: usize, work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    par_row_chunks_with(out, row_len, total_work, available_threads(), work);
}

/// [`par_row_chunks`] with an explicit worker count (factored out so the
/// spawning path is testable on single-core machines). The count is
/// still capped by the calling thread's budget (see module docs) so
/// serving workers cannot oversubscribe even through this entry point.
pub fn par_row_chunks_with<F>(
    out: &mut [f64],
    row_len: usize,
    total_work: usize,
    threads: usize,
    work: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let threads = threads.min(thread_budget());
    let rows = out.len().checked_div(row_len).unwrap_or(0);
    if total_work < PAR_WORK_THRESHOLD || threads < 2 || rows < threads {
        work(0, out);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(rows_per * row_len).enumerate() {
            let work = &work;
            scope.spawn(move || work(idx * rows_per, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn small_work_runs_serially_on_full_buffer() {
        let mut out = vec![0.0; 12];
        par_row_chunks(&mut out, 3, 0, |first_row, chunk| {
            assert_eq!(first_row, 0);
            assert_eq!(chunk.len(), 12);
            chunk.iter_mut().for_each(|v| *v += 1.0);
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn parallel_chunks_cover_every_row_exactly_once() {
        // Explicit worker count: exercises the actual spawning path even
        // on single-core machines where `available_parallelism` is 1.
        for threads in [2, 3, 7] {
            let rows = 1000;
            let row_len = 8;
            let mut out = vec![0.0; rows * row_len];
            par_row_chunks_with(
                &mut out,
                row_len,
                usize::MAX,
                threads,
                |first_row, chunk| {
                    for (r, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                        for v in row {
                            *v += (first_row + r) as f64;
                        }
                    }
                },
            );
            for (r, row) in out.chunks_exact(row_len).enumerate() {
                assert!(row.iter().all(|&v| v == r as f64), "row {r} wrong");
            }
        }
    }

    #[test]
    fn uneven_row_counts_split_on_row_boundaries() {
        // 11 rows across 4 workers: 3+3+3+2.
        let rows = 11;
        let row_len = 5;
        let mut out = vec![0.0; rows * row_len];
        par_row_chunks_with(&mut out, row_len, usize::MAX, 4, |first_row, chunk| {
            assert_eq!(chunk.len() % row_len, 0, "chunk split a row");
            chunk.iter_mut().for_each(|v| *v += 1.0 + first_row as f64);
        });
        for (r, row) in out.chunks_exact(row_len).enumerate() {
            let expected = 1.0 + (r / 3 * 3) as f64;
            assert!(row.iter().all(|&v| v == expected), "row {r} wrong");
        }
    }

    #[test]
    fn zero_row_len_is_a_noop() {
        let mut out: Vec<f64> = Vec::new();
        par_row_chunks(&mut out, 0, usize::MAX, |_, chunk| {
            assert!(chunk.is_empty());
        });
    }

    /// Distinct `first_row` values observed = number of chunks spawned.
    fn count_chunks(rows: usize, row_len: usize, threads: usize) -> usize {
        let mut out = vec![0.0; rows * row_len];
        let seen = Mutex::new(BTreeSet::new());
        par_row_chunks_with(&mut out, row_len, usize::MAX, threads, |first_row, _| {
            seen.lock().unwrap().insert(first_row);
        });
        let seen = seen.into_inner().unwrap();
        seen.len()
    }

    #[test]
    fn budget_of_one_forces_serial_even_with_explicit_threads() {
        with_thread_budget(1, || {
            assert_eq!(count_chunks(1000, 8, 8), 1);
        });
    }

    #[test]
    fn budget_caps_explicit_worker_counts() {
        with_thread_budget(2, || {
            // Asked for 8 workers, budget allows 2 → at most 2 chunks.
            assert!(count_chunks(1000, 8, 8) <= 2);
        });
        // Budget restored: 8 workers spawn again.
        assert_eq!(count_chunks(1000, 8, 8), 8);
    }

    #[test]
    fn budget_is_thread_local() {
        set_thread_budget(1);
        let other = std::thread::spawn(|| count_chunks(1000, 8, 4))
            .join()
            .unwrap();
        assert_eq!(other, 4, "budget leaked into a fresh thread");
        assert_eq!(count_chunks(1000, 8, 4), 1);
        set_thread_budget(usize::MAX);
    }

    #[test]
    fn with_thread_budget_restores_previous_budget() {
        set_thread_budget(3);
        with_thread_budget(1, || assert_eq!(thread_budget(), 1));
        assert_eq!(thread_budget(), 3);
        set_thread_budget(usize::MAX);
    }
}
