//! Gather / scatter kernels for compressed metadata vectors.
//!
//! §III of the paper defines *compressed* mapping and indicator matrices
//! `CMₖ` and `CIₖ`: integer vectors whose entry `i` holds the source
//! column/row mapped to target column/row `i`, or `-1` when there is none.
//! Because every full matrix `Mₖ`/`Iₖ` built from them is a (partial)
//! selection matrix, multiplying by it is equivalent to a gather or a
//! scatter — these kernels implement exactly that, turning `O(n²)` sparse
//! multiplications into `O(n)` copies:
//!
//! * `Iₖ · D`      → [`DenseMatrix::gather_rows`]  (rows of `D` picked by `CIₖ`)
//! * `Iₖᵀ · X`     → [`DenseMatrix::scatter_rows_add`]
//! * `D · Mₖᵀ`     → [`DenseMatrix::gather_cols`]  (columns picked by `CMₖ`)
//! * `Mₖᵀ · X`     → [`DenseMatrix::scatter_rows_add`] with `CMₖ`
//! * `Mₖ · Y`      → [`DenseMatrix::gather_rows`] with `CMₖ`

use crate::{DenseMatrix, MatrixError, Result};

/// The sentinel value in compressed metadata vectors meaning "no match".
pub const NO_MATCH: i64 = -1;

impl DenseMatrix {
    /// Builds a new matrix whose row `i` is `self`'s row `idx[i]`, or a
    /// zero row when `idx[i] < 0`.
    ///
    /// Implements `S · self` where `S` is the selection matrix with
    /// `S[i, idx[i]] = 1`.
    ///
    /// # Errors
    /// Returns an error if any non-negative index is out of range.
    pub fn gather_rows(&self, idx: &[i64]) -> Result<DenseMatrix> {
        let cols = self.cols();
        let mut out = DenseMatrix::zeros(idx.len(), cols);
        for (i, &src) in idx.iter().enumerate() {
            if src < 0 {
                continue;
            }
            let src = src as usize;
            if src >= self.rows() {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (src, 0),
                    shape: self.shape(),
                });
            }
            out.row_mut(i)
                .copy_from_slice(&self.as_slice()[src * cols..(src + 1) * cols]);
        }
        Ok(out)
    }

    /// Accumulates `self`'s row `i` into output row `idx[i]` (skipping
    /// negatives). Implements `Sᵀ · self` for the same selection matrix as
    /// [`Self::gather_rows`].
    ///
    /// # Errors
    /// Returns an error if `idx.len() != self.rows()` or an index is out of
    /// range for `out_rows`.
    pub fn scatter_rows_add(&self, idx: &[i64], out_rows: usize) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(out_rows, self.cols());
        self.scatter_rows_add_into(idx, &mut out)?;
        Ok(out)
    }

    /// [`Self::scatter_rows_add`] into a caller-owned output matrix
    /// (fully overwritten; `out.rows()` plays the role of `out_rows`).
    ///
    /// # Errors
    /// As [`Self::scatter_rows_add`], plus a column-count mismatch
    /// between `self` and `out`.
    pub fn scatter_rows_add_into(&self, idx: &[i64], out: &mut DenseMatrix) -> Result<()> {
        if idx.len() != self.rows() || out.cols() != self.cols() {
            return Err(MatrixError::DimensionMismatch {
                op: "scatter_rows_add",
                lhs: self.shape(),
                rhs: if idx.len() != self.rows() {
                    (idx.len(), 1)
                } else {
                    out.shape()
                },
            });
        }
        let cols = self.cols();
        let out_rows = out.rows();
        out.as_mut_slice().fill(0.0);
        // Column fast path: one indexed add per row.
        if cols == 1 {
            let src = self.as_slice();
            let dst_col = out.as_mut_slice();
            for (&v, &dst) in src.iter().zip(idx) {
                if dst < 0 {
                    continue;
                }
                let dst = dst as usize;
                if dst >= out_rows {
                    return Err(MatrixError::IndexOutOfBounds {
                        index: (dst, 0),
                        shape: (out_rows, cols),
                    });
                }
                dst_col[dst] += v;
            }
            return Ok(());
        }
        for (i, &dst) in idx.iter().enumerate() {
            if dst < 0 {
                continue;
            }
            let dst = dst as usize;
            if dst >= out_rows {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (dst, 0),
                    shape: (out_rows, cols),
                });
            }
            let src_row = &self.as_slice()[i * cols..(i + 1) * cols];
            let dst_row = &mut out.as_mut_slice()[dst * cols..(dst + 1) * cols];
            for (d, &s) in dst_row.iter_mut().zip(src_row) {
                *d += s;
            }
        }
        Ok(())
    }

    /// Builds a new matrix whose column `j` is `self`'s column `idx[j]`,
    /// or a zero column when `idx[j] < 0`.
    ///
    /// Implements `self · Sᵀ` where `S[j, idx[j]] = 1`.
    pub fn gather_cols(&self, idx: &[i64]) -> Result<DenseMatrix> {
        let rows = self.rows();
        let in_cols = self.cols();
        let out_cols = idx.len();
        for &src in idx {
            if src >= 0 && src as usize >= in_cols {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (0, src as usize),
                    shape: self.shape(),
                });
            }
        }
        let mut out = DenseMatrix::zeros(rows, out_cols);
        for i in 0..rows {
            let src_row = &self.as_slice()[i * in_cols..(i + 1) * in_cols];
            let dst_row = &mut out.as_mut_slice()[i * out_cols..(i + 1) * out_cols];
            for (j, &src) in idx.iter().enumerate() {
                if src >= 0 {
                    dst_row[j] = src_row[src as usize];
                }
            }
        }
        Ok(out)
    }

    /// Accumulates `self`'s column `j` into output column `idx[j]`
    /// (skipping negatives). Implements `self · S` for the selection matrix
    /// of [`Self::gather_cols`].
    pub fn scatter_cols_add(&self, idx: &[i64], out_cols: usize) -> Result<DenseMatrix> {
        if idx.len() != self.cols() {
            return Err(MatrixError::DimensionMismatch {
                op: "scatter_cols_add",
                lhs: self.shape(),
                rhs: (1, idx.len()),
            });
        }
        let rows = self.rows();
        let in_cols = self.cols();
        for &dst in idx {
            if dst >= 0 && dst as usize >= out_cols {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (0, dst as usize),
                    shape: (rows, out_cols),
                });
            }
        }
        let mut out = DenseMatrix::zeros(rows, out_cols);
        for i in 0..rows {
            let src_row = &self.as_slice()[i * in_cols..(i + 1) * in_cols];
            let dst_row = &mut out.as_mut_slice()[i * out_cols..(i + 1) * out_cols];
            for (j, &dst) in idx.iter().enumerate() {
                if dst >= 0 {
                    dst_row[dst as usize] += src_row[j];
                }
            }
        }
        Ok(out)
    }
}

/// Builds the full binary selection matrix for a compressed vector:
/// `out[i, idx[i]] = 1` with shape `idx.len() × inner_dim`.
///
/// This is the expansion from `CMₖ` to `Mₖ` (Definition III.1) and from
/// `CIₖ` to `Iₖ` (Definition III.3).
pub fn selection_matrix(idx: &[i64], inner_dim: usize) -> Result<DenseMatrix> {
    let mut out = DenseMatrix::zeros(idx.len(), inner_dim);
    for (i, &j) in idx.iter().enumerate() {
        if j < 0 {
            continue;
        }
        let j = j as usize;
        if j >= inner_dim {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                shape: (idx.len(), inner_dim),
            });
        }
        out.set(i, j, 1.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn gather_rows_basic() {
        let g = sample().gather_rows(&[2, NO_MATCH, 0, 0]).unwrap();
        assert_eq!(g.shape(), (4, 3));
        assert_eq!(g.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(g.row(1), &[0.0, 0.0, 0.0]);
        assert_eq!(g.row(2), &[1.0, 2.0, 3.0]);
        assert_eq!(g.row(3), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gather_rows_out_of_range() {
        assert!(sample().gather_rows(&[3]).is_err());
    }

    #[test]
    fn scatter_rows_add_accumulates_duplicates() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let s = m.scatter_rows_add(&[0, 0, NO_MATCH], 2).unwrap();
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_rows_add_into_overwrites_dirty_buffer() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let mut out = DenseMatrix::filled(3, 2, 9.0);
        m.scatter_rows_add_into(&[2, 2], &mut out).unwrap();
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[3.0, 3.0]);
        let mut wrong_cols = DenseMatrix::zeros(3, 1);
        assert!(m.scatter_rows_add_into(&[2, 2], &mut wrong_cols).is_err());
    }

    #[test]
    fn scatter_rows_add_validates() {
        let m = DenseMatrix::zeros(2, 2);
        assert!(m.scatter_rows_add(&[0], 2).is_err()); // wrong idx length
        assert!(m.scatter_rows_add(&[0, 5], 2).is_err()); // out of range
    }

    #[test]
    fn gather_cols_basic() {
        let g = sample().gather_cols(&[1, NO_MATCH, 1, 0]).unwrap();
        assert_eq!(g.shape(), (3, 4));
        assert_eq!(g.row(0), &[2.0, 0.0, 2.0, 1.0]);
        assert_eq!(g.row(2), &[8.0, 0.0, 8.0, 7.0]);
        assert!(sample().gather_cols(&[9]).is_err());
    }

    #[test]
    fn scatter_cols_add_basic() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 4.0]]).unwrap();
        let s = m.scatter_cols_add(&[1, 1, NO_MATCH], 3).unwrap();
        assert_eq!(s.row(0), &[0.0, 3.0, 0.0]);
        assert!(m.scatter_cols_add(&[0, 1], 3).is_err());
        assert!(m.scatter_cols_add(&[0, 1, 7], 3).is_err());
    }

    #[test]
    fn selection_matrix_expansion() {
        // CM₁ from Figure 4a: target columns (m,a,hr,o) ← S1 columns (m,a,hr)
        let cm1 = [0, 1, 2, NO_MATCH];
        let m1 = selection_matrix(&cm1, 3).unwrap();
        assert_eq!(m1.shape(), (4, 3));
        assert_eq!(m1.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m1.row(1), &[0.0, 1.0, 0.0]);
        assert_eq!(m1.row(2), &[0.0, 0.0, 1.0]);
        assert_eq!(m1.row(3), &[0.0, 0.0, 0.0]);
        assert!(selection_matrix(&[5], 3).is_err());
    }

    #[test]
    fn gather_equals_selection_matmul() {
        // gather_rows(idx) == selection_matrix(idx) * self
        let m = sample();
        let idx = [1, NO_MATCH, 2, 1];
        let fast = m.gather_rows(&idx).unwrap();
        let sel = selection_matrix(&idx, 3).unwrap();
        let slow = sel.matmul(&m).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn scatter_equals_selection_transpose_matmul() {
        // scatter_rows_add(idx, n) == selection_matrix(idx, n)ᵀ * self
        let m = sample();
        let idx = [1, NO_MATCH, 1];
        let fast = m.scatter_rows_add(&idx, 2).unwrap();
        let sel = selection_matrix(&idx, 2).unwrap();
        let slow = sel.transpose().matmul(&m).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn gather_cols_equals_matmul_with_selection_transpose() {
        // gather_cols(idx) == self * selection_matrix(idx, cols)ᵀ
        let m = sample();
        let idx = [2, 0, NO_MATCH];
        let fast = m.gather_cols(&idx).unwrap();
        let sel = selection_matrix(&idx, 3).unwrap();
        let slow = m.matmul(&sel.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    proptest! {
        #[test]
        fn prop_gather_scatter_match_selection_algebra(
            rows in 1usize..8, cols in 1usize..8, out in 1usize..8,
            seed in 0u64..u64::MAX,
        ) {
            use rand::SeedableRng;
            use rand::Rng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = DenseMatrix::random_uniform(rows, cols, -2.0, 2.0, &mut rng);
            // Random index vector into rows, with ~25% no-match entries.
            let idx: Vec<i64> = (0..out)
                .map(|_| {
                    if rng.gen_bool(0.25) { NO_MATCH } else { rng.gen_range(0..rows) as i64 }
                })
                .collect();
            let sel = selection_matrix(&idx, rows).unwrap();
            let fast = m.gather_rows(&idx).unwrap();
            let slow = sel.matmul(&m).unwrap();
            prop_assert!(fast.approx_eq(&slow, 1e-12));

            // Scatter from the gathered result back.
            let fast2 = fast.scatter_rows_add(&idx, rows).unwrap();
            let slow2 = sel.transpose().matmul(&fast).unwrap();
            prop_assert!(fast2.approx_eq(&slow2, 1e-12));
        }
    }
}
