//! Dense linear-system solver (Gaussian elimination, partial pivoting).
//!
//! Used by the closed-form ridge regression path (normal equations
//! `(TᵀT + λI)θ = Tᵀy`) where the Gram matrix comes from the factorized
//! rewrites.

use crate::{DenseMatrix, MatrixError, Result};

impl DenseMatrix {
    /// Solves `self · X = B` for `X` via Gaussian elimination with
    /// partial pivoting. `self` must be square.
    ///
    /// # Errors
    /// * [`MatrixError::DimensionMismatch`] when `self` is not square or
    ///   `B` has the wrong row count.
    /// * [`MatrixError::Singular`] when a pivot vanishes (matrix not
    ///   invertible to working precision).
    pub fn solve(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let n = self.rows();
        if self.cols() != n || b.rows() != n {
            return Err(MatrixError::DimensionMismatch {
                op: "solve",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        let m = b.cols();
        // Augmented working copies.
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivot: largest |a[r][col]| for r >= col.
            // `col < n`, so the range is non-empty; an empty fold can only
            // mean a degenerate system.
            let Some((pivot_row, pivot_val)) = (col..n)
                .map(|r| (r, a.get(r, col).abs()))
                .max_by(|p, q| p.1.total_cmp(&q.1))
            else {
                return Err(MatrixError::Singular);
            };
            if pivot_val < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot_row != col {
                swap_rows(&mut a, col, pivot_row);
                swap_rows(&mut x, col, pivot_row);
            }
            let pivot = a.get(col, col);
            for r in col + 1..n {
                let factor = a.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a.get(col, c);
                    let cur = a.get(r, c);
                    a.set(r, c, cur - factor * v);
                }
                for c in 0..m {
                    let v = x.get(col, c);
                    let cur = x.get(r, c);
                    x.set(r, c, cur - factor * v);
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let pivot = a.get(col, col);
            for c in 0..m {
                let mut v = x.get(col, c);
                for k in col + 1..n {
                    v -= a.get(col, k) * x.get(k, c);
                }
                x.set(col, c, v / pivot);
            }
        }
        Ok(x)
    }

    /// Matrix inverse via [`Self::solve`] against the identity.
    ///
    /// # Errors
    /// Same as [`Self::solve`].
    pub fn inverse(&self) -> Result<DenseMatrix> {
        self.solve(&DenseMatrix::identity(self.rows()))
    }
}

fn swap_rows(m: &mut DenseMatrix, i: usize, j: usize) {
    if i == j {
        return;
    }
    let cols = m.cols();
    let (lo, hi) = (i.min(j), i.max(j));
    let data = m.as_mut_slice();
    let (left, right) = data.split_at_mut(hi * cols);
    left[lo * cols..(lo + 1) * cols].swap_with_slice(&mut right[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest};

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5]  →  x = [0.8, 1.4]
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = DenseMatrix::column_vector(&[3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        assert!((x.get(0, 0) - 0.8).abs() < 1e-12);
        assert!((x.get(1, 0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let b = DenseMatrix::column_vector(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!((x.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((x.get(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let b = DenseMatrix::column_vector(&[1.0, 2.0]);
        assert!(matches!(a.solve(&b).unwrap_err(), MatrixError::Singular));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 1);
        assert!(a.solve(&b).is_err());
        let sq = DenseMatrix::identity(3);
        assert!(sq.solve(&DenseMatrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn multiple_right_hand_sides() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![6.0, 9.0], vec![4.0, 8.0]]).unwrap();
        let x = a.solve(&b).unwrap();
        assert!(x.approx_eq(
            &DenseMatrix::from_rows(&[vec![2.0, 3.0], vec![2.0, 4.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&DenseMatrix::identity(2), 1e-10));
    }

    proptest! {
        #[test]
        fn prop_solve_recovers_solution(n in 1usize..8, seed in 0u64..u64::MAX) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Diagonally dominant matrices are well-conditioned & invertible.
            let mut a = DenseMatrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
            for i in 0..n {
                let v = a.get(i, i);
                a.set(i, i, v + n as f64 + 1.0);
            }
            let x_true = DenseMatrix::random_uniform(n, 2, -3.0, 3.0, &mut rng);
            let b = a.matmul(&x_true).unwrap();
            let x = a.solve(&b).unwrap();
            prop_assert!(x.approx_eq(&x_true, 1e-6));
        }
    }
}
