//! Compressed sparse row (CSR) and coordinate (COO) matrices.
//!
//! The full mapping and indicator matrices `Mₖ` and `Iₖ` of §III are
//! extremely sparse (at most one non-zero per row). When the physical
//! representation debate of §III-D calls for keeping them as matrices
//! (rather than compressed vectors), CSR is the natural layout; these
//! types also let source tables `Dₖ` with many zero features be stored
//! sparsely.

use crate::{DenseMatrix, MatrixError, Result};

/// Coordinate-format sparse matrix builder.
///
/// COO is append-friendly; convert to [`CsrMatrix`] for computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a `(row, col, value)` triplet.
    ///
    /// # Errors
    /// Returns an error when the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(entries.len());
        let mut data = Vec::with_capacity(entries.len());
        indptr.push(0);
        let mut row = 0usize;
        for &(r, c, v) in &entries {
            while row < r {
                indptr.push(indices.len());
                row += 1;
            }
            if let (Some(&last_c), true) = (indices.last(), indptr.len() == r + 1) {
                if last_c == c && indices.len() > indptr[r] {
                    // Duplicate coordinate within the same row: accumulate.
                    // `data` stays parallel to `indices`, so `last_mut` is
                    // always `Some` when `indices.last()` was.
                    if let Some(last) = data.last_mut() {
                        *last += v;
                    }
                    continue;
                }
            }
            indices.push(c);
            data.push(v);
        }
        while row < self.rows {
            indptr.push(indices.len());
            row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Errors
    /// Returns [`MatrixError::InvalidSparseStructure`] when the structure
    /// is inconsistent (wrong `indptr` length, non-monotonic `indptr`,
    /// out-of-range or unsorted column indices, `indices`/`data` length
    /// mismatch).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(MatrixError::InvalidSparseStructure(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indices.len() != data.len() {
            return Err(MatrixError::InvalidSparseStructure(format!(
                "indices length {} != data length {}",
                indices.len(),
                data.len()
            )));
        }
        if indptr.last().copied() != Some(indices.len()) {
            return Err(MatrixError::InvalidSparseStructure(
                "last indptr entry must equal nnz".into(),
            ));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::InvalidSparseStructure(
                    "indptr must be non-decreasing".into(),
                ));
            }
        }
        for r in 0..rows {
            let row_idx = &indices[indptr[r]..indptr[r + 1]];
            for w in row_idx.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidSparseStructure(format!(
                        "row {r} column indices must be strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row_idx.last() {
                if last >= cols {
                    return Err(MatrixError::InvalidSparseStructure(format!(
                        "row {r} has column index {last} >= cols {cols}"
                    )));
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            data,
        })
    }

    /// Converts a dense matrix to CSR, dropping zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut coo = CooMatrix::new(dense.rows(), dense.cols());
        for (i, row) in dense.row_iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    // Loop indices are bounded by the dense shape, which is
                    // exactly the COO shape — bypass the bounds check.
                    coo.entries.push((i, j, v));
                }
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Sparse row view: parallel slices of column indices and values.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let range = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[range.clone()], &self.data[range])
    }

    /// Element access (O(log nnz_row) via binary search).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (idx, vals) = self.row(i);
        match idx.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            let out_row = out.row_mut(i);
            for (&j, &v) in idx.iter().zip(vals) {
                out_row[j] = v;
            }
        }
        out
    }

    /// Sparse × dense multiplication: `self * rhs`.
    pub fn matmul_dense(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "csr_matmul_dense",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (&l, &v) in idx.iter().zip(vals) {
                let rhs_row = &rhs.as_slice()[l * n..(l + 1) * n];
                crate::gemm::axpy(v, rhs_row, out_row);
            }
        }
        Ok(out)
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    pub fn transpose_matmul_dense(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "csr_transpose_matmul_dense",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.cols, n);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            let rhs_row = &rhs.as_slice()[i * n..(i + 1) * n];
            for (&j, &v) in idx.iter().zip(vals) {
                let out_row = &mut out.as_mut_slice()[j * n..(j + 1) * n];
                crate::gemm::axpy(v, rhs_row, out_row);
            }
        }
        Ok(out)
    }

    /// Returns the transposed CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                // Column indices are validated CSR structure, so the
                // transposed coordinates are in bounds by construction.
                coo.entries.push((j, i, v));
            }
        }
        coo.to_csr()
    }

    /// Scales every stored value by `alpha`.
    pub fn scale(&self, alpha: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= alpha;
        }
        out
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_dense() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn coo_to_csr_roundtrip() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn coo_push_validates_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(0, 0, 1.0).is_ok());
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn to_csr_accumulates_duplicates_in_first_row() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().get(0, 1), 4.0);
    }

    #[test]
    fn to_csr_does_not_merge_same_column_across_rows() {
        // (0, 1) then (1, 1): same column index adjacent in the sorted
        // entry list, but in different rows — the `indices.len() >
        // indptr[r]` guard must keep them apart.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 5.0).unwrap();
        coo.push(1, 1, 7.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        let d = csr.to_dense();
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 1), 7.0);
    }

    #[test]
    fn to_csr_all_duplicate_input_collapses_to_one_entry() {
        let mut coo = CooMatrix::new(3, 3);
        for _ in 0..10 {
            coo.push(2, 0, 1.5).unwrap();
        }
        assert_eq!(coo.nnz(), 10);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().get(2, 0), 15.0);
    }

    #[test]
    fn to_csr_duplicates_straddling_empty_rows() {
        let mut coo = CooMatrix::new(4, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(3, 0, 2.0).unwrap();
        coo.push(3, 0, 2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        let d = csr.to_dense();
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(3, 0), 4.0);
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    fn coo_drops_explicit_zeros() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0).unwrap();
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn csr_get() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 1), 0.0);
        assert_eq!(csr.get(2, 1), 3.0);
    }

    #[test]
    fn from_parts_validation() {
        // Valid 2x2 with one entry.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        // Wrong indptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // indices/data mismatch.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![]).is_err());
        // Last indptr != nnz.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
        // Decreasing indptr.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Unsorted columns within a row.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn csr_matmul_matches_dense() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = rand::thread_rng();
        let x = DenseMatrix::random_uniform(3, 4, -1.0, 1.0, &mut rng);
        let sparse_result = csr.matmul_dense(&x).unwrap();
        let dense_result = dense.matmul(&x).unwrap();
        assert!(sparse_result.approx_eq(&dense_result, 1e-12));
        assert!(csr.matmul_dense(&DenseMatrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn csr_transpose_matmul_matches_dense() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let mut rng = rand::thread_rng();
        let x = DenseMatrix::random_uniform(3, 2, -1.0, 1.0, &mut rng);
        let sparse_result = csr.transpose_matmul_dense(&x).unwrap();
        let dense_result = dense.transpose().matmul(&x).unwrap();
        assert!(sparse_result.approx_eq(&dense_result, 1e-12));
        assert!(csr
            .transpose_matmul_dense(&DenseMatrix::zeros(2, 2))
            .is_err());
    }

    #[test]
    fn csr_transpose_roundtrip() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let t = csr.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose().to_dense(), sample_dense());
    }

    #[test]
    fn csr_scale_and_sum() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        assert_eq!(csr.sum(), 6.0);
        assert_eq!(csr.scale(2.0).sum(), 12.0);
    }

    #[test]
    fn empty_rows_handled() {
        let dense = DenseMatrix::zeros(4, 3);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.to_dense(), dense);
        let x = DenseMatrix::ones(3, 2);
        assert_eq!(csr.matmul_dense(&x).unwrap(), DenseMatrix::zeros(4, 2));
    }

    proptest! {
        #[test]
        fn prop_dense_csr_roundtrip(
            m in 1usize..10, n in 1usize..10, seed in 0u64..u64::MAX,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Sparse random matrix: ~70% zeros.
            let mut dense = DenseMatrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    if rng.gen_bool(0.3) {
                        dense.set(i, j, rng.gen_range(-5.0..5.0));
                    }
                }
            }
            let csr = CsrMatrix::from_dense(&dense);
            prop_assert_eq!(csr.to_dense(), dense.clone());
            prop_assert_eq!(csr.nnz(), dense.nnz());
        }

        #[test]
        fn prop_to_csr_accumulates_duplicates(
            rows in 1usize..6, cols in 1usize..6, entries in 1usize..24,
            seed in 0u64..u64::MAX,
        ) {
            // The duplicate-accumulation guard in `to_csr`
            // (`indptr.len() == r + 1 && indices.len() > indptr[r]`) is
            // subtle: duplicates in the first row, duplicates straddling
            // row boundaries and all-duplicate inputs must all collapse
            // into single CSR entries whose values are the sums. The
            // dense reference accumulates unconditionally, so comparing
            // against it covers every case the guard must handle.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut coo = CooMatrix::new(rows, cols);
            let mut reference = DenseMatrix::zeros(rows, cols);
            for _ in 0..entries {
                // Small coordinate space forces frequent duplicates.
                let r = rng.gen_range(0..rows);
                let c = rng.gen_range(0..cols);
                let v = rng.gen_range(-3.0..3.0);
                coo.push(r, c, v).unwrap();
                reference.set(r, c, reference.get(r, c) + v);
            }
            let csr = coo.to_csr();
            prop_assert!(csr.to_dense().approx_eq(&reference, 1e-12));
            // No coordinate may appear twice after accumulation.
            prop_assert!(csr.nnz() <= rows * cols);
        }

        #[test]
        fn prop_spmm_matches_gemm(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..u64::MAX,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut dense = DenseMatrix::zeros(m, k);
            for i in 0..m {
                for j in 0..k {
                    if rng.gen_bool(0.4) {
                        dense.set(i, j, rng.gen_range(-2.0..2.0));
                    }
                }
            }
            let x = DenseMatrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            let csr = CsrMatrix::from_dense(&dense);
            prop_assert!(csr.matmul_dense(&x).unwrap().approx_eq(&dense.matmul(&x).unwrap(), 1e-10));
        }
    }
}
